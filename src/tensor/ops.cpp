#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/kernels.h"
#include "tensor/simd.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tbd::tensor {

namespace {

constexpr std::int64_t kBlock = 64;      // GEMM row grain
constexpr std::int64_t kElemGrain = 1 << 14; // elementwise chunk

void
checkRank2(const Tensor &t, const char *name)
{
    TBD_CHECK(t.shape().rank() == 2, name, " must be rank 2, got ",
              t.shape().toString());
}

/**
 * One dispatch decision: pick the kernel tier for this op invocation
 * and note it on the engine.simd.{dispatch,fallback} counters.
 */
const kern::Ops &
dispatch()
{
    const bool vec = simd::active();
    simd::noteDispatch(vec);
    return kern::ops(vec);
}

} // namespace

void
matmulInto(float *c, const float *a, const float *b, std::int64_t M,
           std::int64_t K, std::int64_t N)
{
    const kern::Ops &kt = dispatch();
    // Row-partitioned: each chunk owns rows [i0, i1) of C, so the
    // per-element accumulation order (k ascending) is the same for any
    // thread count and results stay bitwise-identical to serial.
    util::parallelFor(0, M, kBlock, [&](std::int64_t i0, std::int64_t i1) {
        kt.gemmNN(c + i0 * N, a + i0 * K, b, i1 - i0, N, K);
    });
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    checkRank2(a, "matmul lhs");
    checkRank2(b, "matmul rhs");
    const auto M = a.shape().dim(0), K = a.shape().dim(1);
    const auto K2 = b.shape().dim(0), N = b.shape().dim(1);
    TBD_CHECK(K == K2, "matmul inner dims differ: ", K, " vs ", K2);

    Tensor c(Shape{M, N});
    matmulInto(c.data(), a.data(), b.data(), M, K, N);
    return c;
}

void
matmulTNInto(float *c, const float *a, const float *b, std::int64_t M,
             std::int64_t Ka, std::int64_t N)
{
    const kern::Ops &kt = dispatch();
    // Partition the rows of C (the k axis of A); the m reduction stays
    // in ascending order inside each chunk.
    util::parallelFor(0, Ka, kBlock, [&](std::int64_t kb, std::int64_t ke) {
        kt.gemmTN(c + kb * N, a, b, ke - kb, kb, Ka, M, N);
    });
}

Tensor
matmulTN(const Tensor &a, const Tensor &b)
{
    checkRank2(a, "matmulTN lhs");
    checkRank2(b, "matmulTN rhs");
    const auto M = a.shape().dim(0), Ka = a.shape().dim(1);
    const auto M2 = b.shape().dim(0), N = b.shape().dim(1);
    TBD_CHECK(M == M2, "matmulTN outer dims differ: ", M, " vs ", M2);

    Tensor c(Shape{Ka, N});
    matmulTNInto(c.data(), a.data(), b.data(), M, Ka, N);
    return c;
}

void
matmulNTInto(float *c, const float *a, const float *b, std::int64_t M,
             std::int64_t N, std::int64_t Kb)
{
    const kern::Ops &kt = dispatch();
    // Row-partitioned lane-striped dot products.
    util::parallelFor(0, M, kBlock, [&](std::int64_t ib, std::int64_t ie) {
        kt.gemmNT(c + ib * Kb, a + ib * N, b, ie - ib, N, Kb, Kb);
    });
}

Tensor
matmulNT(const Tensor &a, const Tensor &b)
{
    checkRank2(a, "matmulNT lhs");
    checkRank2(b, "matmulNT rhs");
    const auto M = a.shape().dim(0), N = a.shape().dim(1);
    const auto Kb = b.shape().dim(0), N2 = b.shape().dim(1);
    TBD_CHECK(N == N2, "matmulNT inner dims differ: ", N, " vs ", N2);

    Tensor c(Shape{M, Kb});
    matmulNTInto(c.data(), a.data(), b.data(), M, N, Kb);
    return c;
}

Tensor
map(const Tensor &x, const std::function<float(float)> &f)
{
    Tensor y(x.shape());
    const float *px = x.data();
    float *py = y.data();
    const std::int64_t n = x.numel();
    util::parallelFor(0, n, kElemGrain,
                      [&](std::int64_t b, std::int64_t e) {
                          for (std::int64_t i = b; i < e; ++i)
                              py[i] = f(px[i]);
                      });
    return y;
}

Tensor
zip(const Tensor &x, const Tensor &y,
    const std::function<float(float, float)> &f)
{
    TBD_CHECK(x.shape() == y.shape(), "zip shape mismatch: ",
              x.shape().toString(), " vs ", y.shape().toString());
    Tensor z(x.shape());
    const float *px = x.data();
    const float *py = y.data();
    float *pz = z.data();
    const std::int64_t n = x.numel();
    util::parallelFor(0, n, kElemGrain,
                      [&](std::int64_t b, std::int64_t e) {
                          for (std::int64_t i = b; i < e; ++i)
                              pz[i] = f(px[i], py[i]);
                      });
    return z;
}

void
addRowBias(Tensor &x, const Tensor &bias)
{
    checkRank2(x, "addRowBias input");
    const auto M = x.shape().dim(0), N = x.shape().dim(1);
    TBD_CHECK(bias.numel() == N, "bias length ", bias.numel(),
              " does not match row width ", N);
    float *px = x.data();
    const float *pb = bias.data();
    const kern::Ops &kt = dispatch();
    util::parallelFor(0, M, kBlock, [&](std::int64_t ib, std::int64_t ie) {
        kt.addRowBias(px + ib * N, pb, ie - ib, N);
    });
}

Tensor
sumRows(const Tensor &x)
{
    checkRank2(x, "sumRows input");
    const auto M = x.shape().dim(0), N = x.shape().dim(1);
    Tensor s(Shape{N});
    // Serial on purpose: the row order of the reduction is part of the
    // result; Tensor storage is zero-initialized.
    dispatch().sumRowsAcc(s.data(), x.data(), M, N);
    return s;
}

Tensor
softmaxRows(const Tensor &x)
{
    checkRank2(x, "softmaxRows input");
    const auto M = x.shape().dim(0), N = x.shape().dim(1);
    Tensor y(x.shape());
    const float *px = x.data();
    float *py = y.data();
    util::parallelFor(0, M, kBlock, [&](std::int64_t ib, std::int64_t ie) {
        for (std::int64_t i = ib; i < ie; ++i) {
            const float *row = px + i * N;
            float *out = py + i * N;
            float mx = row[0];
            for (std::int64_t j = 1; j < N; ++j)
                mx = std::max(mx, row[j]);
            float denom = 0.0f;
            for (std::int64_t j = 0; j < N; ++j) {
                out[j] = std::exp(row[j] - mx);
                denom += out[j];
            }
            for (std::int64_t j = 0; j < N; ++j)
                out[j] /= denom;
        }
    });
    return y;
}

Tensor
softmaxRowsBackward(const Tensor &y, const Tensor &dy)
{
    TBD_CHECK(y.shape() == dy.shape(), "softmax backward shape mismatch");
    const auto M = y.shape().dim(0), N = y.shape().dim(1);
    Tensor dx(y.shape());
    const float *py = y.data();
    const float *pdy = dy.data();
    float *pdx = dx.data();
    util::parallelFor(0, M, kBlock, [&](std::int64_t ib, std::int64_t ie) {
        for (std::int64_t i = ib; i < ie; ++i) {
            const float *yr = py + i * N;
            const float *dyr = pdy + i * N;
            float dot = 0.0f;
            for (std::int64_t j = 0; j < N; ++j)
                dot += yr[j] * dyr[j];
            float *dxr = pdx + i * N;
            for (std::int64_t j = 0; j < N; ++j)
                dxr[j] = yr[j] * (dyr[j] - dot);
        }
    });
    return dx;
}

std::int64_t
Conv2dGeom::outH() const
{
    return (inH + 2 * padH - kH) / strideH + 1;
}

std::int64_t
Conv2dGeom::outW() const
{
    return (inW + 2 * padW - kW) / strideW + 1;
}

Tensor
im2col(const Tensor &x, const Conv2dGeom &g)
{
    TBD_CHECK(x.shape().rank() == 4, "im2col input must be NCHW");
    const auto N = x.shape().dim(0);
    TBD_CHECK(x.shape().dim(1) == g.inC && x.shape().dim(2) == g.inH &&
                  x.shape().dim(3) == g.inW,
              "im2col geometry mismatch: input ", x.shape().toString());
    const auto oh = g.outH(), ow = g.outW();
    TBD_CHECK(oh > 0 && ow > 0, "conv output is empty for input ",
              x.shape().toString());
    const auto cols = g.inC * g.kH * g.kW;
    Tensor out(Shape{N * oh * ow, cols});
    im2colInto(out.data(), x.data(), N, g);
    return out;
}

void
im2colInto(float *po, const float *px, std::int64_t batch,
           const Conv2dGeom &g)
{
    const auto N = batch;
    const auto oh = g.outH(), ow = g.outW();
    const auto cols = g.inC * g.kH * g.kW;
    // Batch-parallel: each (n, y) pair fills a disjoint band of rows.
    util::parallelFor(0, N * oh, oh, [&](std::int64_t rb, std::int64_t re) {
        for (std::int64_t r = rb; r < re; ++r) {
            const std::int64_t n = r / oh, y = r % oh;
            for (std::int64_t xcol = 0; xcol < ow; ++xcol) {
                float *row = po + ((n * oh + y) * ow + xcol) * cols;
                const std::int64_t ix0 = xcol * g.strideW - g.padW;
                std::int64_t idx = 0;
                for (std::int64_t c = 0; c < g.inC; ++c) {
                    for (std::int64_t ky = 0; ky < g.kH; ++ky, idx += g.kW) {
                        const std::int64_t iy = y * g.strideH + ky - g.padH;
                        float *dst = row + idx;
                        if (iy < 0 || iy >= g.inH) {
                            std::fill(dst, dst + g.kW, 0.0f);
                            continue;
                        }
                        // The kx run reads consecutive input columns,
                        // so an in-bounds window is one memcpy.
                        const float *src =
                            px + ((n * g.inC + c) * g.inH + iy) * g.inW +
                            ix0;
                        if (ix0 >= 0 && ix0 + g.kW <= g.inW) {
                            std::memcpy(dst, src,
                                        std::size_t(g.kW) *
                                            sizeof(float));
                            continue;
                        }
                        for (std::int64_t kx = 0; kx < g.kW; ++kx) {
                            const std::int64_t ix = ix0 + kx;
                            dst[kx] = (ix < 0 || ix >= g.inW) ? 0.0f
                                                              : src[kx];
                        }
                    }
                }
            }
        }
    });
}

Tensor
col2im(const Tensor &cols, std::int64_t batch, const Conv2dGeom &g)
{
    const auto oh = g.outH(), ow = g.outW();
    const auto width = g.inC * g.kH * g.kW;
    TBD_CHECK(cols.shape().rank() == 2 &&
                  cols.shape().dim(0) == batch * oh * ow &&
                  cols.shape().dim(1) == width,
              "col2im input shape mismatch: ", cols.shape().toString());
    Tensor img(Shape{batch, g.inC, g.inH, g.inW});
    col2imInto(img.data(), cols.data(), batch, g);
    return img;
}

void
col2imInto(float *pi, const float *pc, std::int64_t batch,
           const Conv2dGeom &g)
{
    const auto oh = g.outH(), ow = g.outW();
    const auto width = g.inC * g.kH * g.kW;
    // The scatter-add overlaps between output positions of one image
    // but never across images, so partition by batch index.
    util::parallelFor(0, batch, 1, [&](std::int64_t nb, std::int64_t ne) {
        for (std::int64_t n = nb; n < ne; ++n) {
            for (std::int64_t y = 0; y < oh; ++y) {
                for (std::int64_t xcol = 0; xcol < ow; ++xcol) {
                    const float *row =
                        pc + ((n * oh + y) * ow + xcol) * width;
                    const std::int64_t ix0 = xcol * g.strideW - g.padW;
                    std::int64_t idx = 0;
                    for (std::int64_t c = 0; c < g.inC; ++c) {
                        for (std::int64_t ky = 0; ky < g.kH;
                             ++ky, idx += g.kW) {
                            const std::int64_t iy =
                                y * g.strideH + ky - g.padH;
                            if (iy < 0 || iy >= g.inH)
                                continue;
                            const float *src = row + idx;
                            float *dst =
                                pi +
                                ((n * g.inC + c) * g.inH + iy) * g.inW +
                                ix0;
                            if (ix0 >= 0 && ix0 + g.kW <= g.inW) {
                                for (std::int64_t kx = 0; kx < g.kW; ++kx)
                                    dst[kx] += src[kx];
                                continue;
                            }
                            for (std::int64_t kx = 0; kx < g.kW; ++kx) {
                                const std::int64_t ix = ix0 + kx;
                                if (ix >= 0 && ix < g.inW)
                                    dst[kx] += src[kx];
                            }
                        }
                    }
                }
            }
        }
    });
}

PoolResult
maxPool2d(const Tensor &x, const Conv2dGeom &g)
{
    TBD_CHECK(x.shape().rank() == 4, "maxPool2d input must be NCHW");
    const auto N = x.shape().dim(0), C = x.shape().dim(1);
    const auto oh = g.outH(), ow = g.outW();
    PoolResult res;
    res.output = Tensor(Shape{N, C, oh, ow});
    res.argmax.assign(static_cast<std::size_t>(N * C * oh * ow), -1);
    const float *px = x.data();
    float *py = res.output.data();
    const std::int64_t plane = g.inH * g.inW;
    // The row-kernel path needs every window in bounds (no padding)
    // and unit horizontal stride so 8 consecutive outputs read 8
    // consecutive inputs; indices must fit the kernel's int32 lanes.
    if (g.padH == 0 && g.padW == 0 && g.strideW == 1 &&
        plane < (std::int64_t(1) << 31) / 2) {
        const kern::Ops &kt = dispatch();
        std::int64_t *pam = res.argmax.data();
        util::parallelFor(
            0, N * C, 1, [&](std::int64_t pb, std::int64_t pe) {
                for (std::int64_t p = pb; p < pe; ++p) {
                    for (std::int64_t y = 0; y < oh; ++y) {
                        const std::int64_t in_off =
                            p * plane + y * g.strideH * g.inW;
                        const kern::PoolRow row{px + in_off, g.inW, ow,
                                                g.kH, g.kW, 1};
                        kt.maxPoolRow(py + (p * oh + y) * ow,
                                      pam + (p * oh + y) * ow, in_off,
                                      row);
                    }
                }
            });
        return res;
    }
    // General geometry: each (n, c) plane reads and writes a disjoint
    // slab.
    util::parallelFor(0, N * C, 1, [&](std::int64_t pb, std::int64_t pe) {
        for (std::int64_t p = pb; p < pe; ++p) {
            const std::int64_t n = p / C, c = p % C;
            std::int64_t out_idx = p * oh * ow;
            for (std::int64_t y = 0; y < oh; ++y) {
                for (std::int64_t xo = 0; xo < ow; ++xo, ++out_idx) {
                    float best = -3.4e38f;
                    std::int64_t best_idx = -1;
                    for (std::int64_t ky = 0; ky < g.kH; ++ky) {
                        const std::int64_t iy = y * g.strideH + ky - g.padH;
                        if (iy < 0 || iy >= g.inH)
                            continue;
                        for (std::int64_t kx = 0; kx < g.kW; ++kx) {
                            const std::int64_t ix =
                                xo * g.strideW + kx - g.padW;
                            if (ix < 0 || ix >= g.inW)
                                continue;
                            const std::int64_t in_idx =
                                ((n * C + c) * g.inH + iy) * g.inW + ix;
                            if (px[in_idx] > best) {
                                best = px[in_idx];
                                best_idx = in_idx;
                            }
                        }
                    }
                    py[out_idx] = best_idx < 0 ? 0.0f : best;
                    res.argmax[static_cast<std::size_t>(out_idx)] = best_idx;
                }
            }
        }
    });
    return res;
}

Tensor
maxPool2dBackward(const Tensor &dy, const PoolResult &fw,
                  const Shape &inputShape)
{
    TBD_CHECK(dy.numel() ==
                  static_cast<std::int64_t>(fw.argmax.size()),
              "maxPool2dBackward gradient size mismatch");
    Tensor dx(inputShape);
    const float *pdy = dy.data();
    float *pdx = dx.data();
    // An output plane's argmax entries point into the matching input
    // plane only, so plane-sized chunks scatter into disjoint slabs.
    const std::int64_t plane = std::max<std::int64_t>(
        1, inputShape.rank() == 4
               ? dy.numel() / (inputShape.dim(0) * inputShape.dim(1))
               : dy.numel());
    util::parallelFor(
        0, dy.numel(), plane, [&](std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i) {
                const std::int64_t src =
                    fw.argmax[static_cast<std::size_t>(i)];
                if (src >= 0)
                    pdx[src] += pdy[i];
            }
        });
    return dx;
}

Tensor
avgPool2d(const Tensor &x, const Conv2dGeom &g)
{
    TBD_CHECK(x.shape().rank() == 4, "avgPool2d input must be NCHW");
    const auto N = x.shape().dim(0), C = x.shape().dim(1);
    const auto oh = g.outH(), ow = g.outW();
    Tensor y(Shape{N, C, oh, ow});
    const float *px = x.data();
    float *py = y.data();
    const float inv = 1.0f / static_cast<float>(g.kH * g.kW);
    if (g.padH == 0 && g.padW == 0 && g.strideW == 1) {
        const std::int64_t plane = g.inH * g.inW;
        const kern::Ops &kt = dispatch();
        util::parallelFor(
            0, N * C, 1, [&](std::int64_t pb, std::int64_t pe) {
                for (std::int64_t p = pb; p < pe; ++p) {
                    for (std::int64_t yo = 0; yo < oh; ++yo) {
                        const kern::PoolRow row{
                            px + p * plane + yo * g.strideH * g.inW,
                            g.inW, ow, g.kH, g.kW, 1};
                        kt.avgPoolRow(py + (p * oh + yo) * ow, inv, row);
                    }
                }
            });
        return y;
    }
    util::parallelFor(0, N * C, 1, [&](std::int64_t pb, std::int64_t pe) {
        for (std::int64_t p = pb; p < pe; ++p) {
            const std::int64_t n = p / C, c = p % C;
            std::int64_t out_idx = p * oh * ow;
            for (std::int64_t yo = 0; yo < oh; ++yo) {
                for (std::int64_t xo = 0; xo < ow; ++xo, ++out_idx) {
                    float acc = 0.0f;
                    for (std::int64_t ky = 0; ky < g.kH; ++ky) {
                        const std::int64_t iy = yo * g.strideH + ky - g.padH;
                        if (iy < 0 || iy >= g.inH)
                            continue;
                        for (std::int64_t kx = 0; kx < g.kW; ++kx) {
                            const std::int64_t ix =
                                xo * g.strideW + kx - g.padW;
                            if (ix < 0 || ix >= g.inW)
                                continue;
                            acc += px[((n * C + c) * g.inH + iy) * g.inW +
                                      ix];
                        }
                    }
                    py[out_idx] = acc * inv;
                }
            }
        }
    });
    return y;
}

Tensor
avgPool2dBackward(const Tensor &dy, const Shape &inputShape,
                  const Conv2dGeom &g)
{
    const auto N = inputShape.dim(0), C = inputShape.dim(1);
    const auto oh = g.outH(), ow = g.outW();
    TBD_CHECK(dy.numel() == N * C * oh * ow,
              "avgPool2dBackward gradient size mismatch");
    Tensor dx(inputShape);
    const float *pdy = dy.data();
    float *pdx = dx.data();
    const float inv = 1.0f / static_cast<float>(g.kH * g.kW);
    util::parallelFor(0, N * C, 1, [&](std::int64_t pb, std::int64_t pe) {
        for (std::int64_t p = pb; p < pe; ++p) {
            const std::int64_t n = p / C, c = p % C;
            std::int64_t out_idx = p * oh * ow;
            for (std::int64_t yo = 0; yo < oh; ++yo) {
                for (std::int64_t xo = 0; xo < ow; ++xo, ++out_idx) {
                    const float grad = pdy[out_idx] * inv;
                    for (std::int64_t ky = 0; ky < g.kH; ++ky) {
                        const std::int64_t iy = yo * g.strideH + ky - g.padH;
                        if (iy < 0 || iy >= g.inH)
                            continue;
                        for (std::int64_t kx = 0; kx < g.kW; ++kx) {
                            const std::int64_t ix =
                                xo * g.strideW + kx - g.padW;
                            if (ix < 0 || ix >= g.inW)
                                continue;
                            pdx[((n * C + c) * g.inH + iy) * g.inW + ix] +=
                                grad;
                        }
                    }
                }
            }
        }
    });
    return dx;
}

Tensor
transpose2d(const Tensor &x)
{
    checkRank2(x, "transpose2d input");
    const auto M = x.shape().dim(0), N = x.shape().dim(1);
    Tensor y(Shape{N, M});
    const float *px = x.data();
    float *py = y.data();
    util::parallelFor(0, M, kBlock, [&](std::int64_t ib, std::int64_t ie) {
        for (std::int64_t i = ib; i < ie; ++i)
            for (std::int64_t j = 0; j < N; ++j)
                py[j * M + i] = px[i * N + j];
    });
    return y;
}

Tensor
concatAxis1(const std::vector<Tensor> &xs)
{
    TBD_CHECK(!xs.empty(), "concatAxis1 of empty list");
    const auto rank = xs[0].shape().rank();
    TBD_CHECK(rank >= 2, "concatAxis1 requires rank >= 2");
    std::int64_t axis1 = 0;
    for (const auto &t : xs) {
        TBD_CHECK(t.shape().rank() == rank, "concatAxis1 rank mismatch");
        for (std::size_t d = 0; d < rank; ++d) {
            if (d != 1) {
                TBD_CHECK(t.shape().dim(static_cast<std::int64_t>(d)) ==
                              xs[0].shape().dim(static_cast<std::int64_t>(d)),
                          "concatAxis1 non-axis dim mismatch");
            }
        }
        axis1 += t.shape().dim(1);
    }
    Shape out_shape = xs[0].shape().withDim(1, axis1);
    Tensor out(out_shape);

    const auto outer = xs[0].shape().dim(0);
    std::int64_t inner = 1;
    for (std::size_t d = 2; d < rank; ++d)
        inner *= xs[0].shape().dim(static_cast<std::int64_t>(d));

    float *po = out.data();
    for (std::int64_t n = 0; n < outer; ++n) {
        std::int64_t dst_c = 0;
        for (const auto &t : xs) {
            const auto c = t.shape().dim(1);
            const float *src = t.data() + n * c * inner;
            float *dst = po + (n * axis1 + dst_c) * inner;
            std::copy(src, src + c * inner, dst);
            dst_c += c;
        }
    }
    return out;
}

std::vector<Tensor>
splitAxis1(const Tensor &x, const std::vector<std::int64_t> &sizes)
{
    const auto rank = x.shape().rank();
    TBD_CHECK(rank >= 2, "splitAxis1 requires rank >= 2");
    std::int64_t total = 0;
    for (std::int64_t s : sizes)
        total += s;
    TBD_CHECK(total == x.shape().dim(1), "splitAxis1 sizes sum to ", total,
              ", axis is ", x.shape().dim(1));

    const auto outer = x.shape().dim(0);
    std::int64_t inner = 1;
    for (std::size_t d = 2; d < rank; ++d)
        inner *= x.shape().dim(static_cast<std::int64_t>(d));

    std::vector<Tensor> parts;
    parts.reserve(sizes.size());
    std::int64_t src_c = 0;
    for (std::int64_t c : sizes) {
        Tensor part(x.shape().withDim(1, c));
        float *dst = part.data();
        const float *po = x.data();
        for (std::int64_t n = 0; n < outer; ++n) {
            const float *src = po + (n * x.shape().dim(1) + src_c) * inner;
            std::copy(src, src + c * inner, dst + n * c * inner);
        }
        src_c += c;
        parts.push_back(std::move(part));
    }
    return parts;
}

} // namespace tbd::tensor
