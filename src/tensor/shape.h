/**
 * @file
 * Tensor shape type shared by the functional engine and the performance
 * model (the latter only ever needs shape arithmetic).
 */

#ifndef TBD_TENSOR_SHAPE_H
#define TBD_TENSOR_SHAPE_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace tbd::tensor {

/** Row-major tensor shape; dimension 0 is the outermost (batch) axis. */
class Shape
{
  public:
    Shape() = default;

    /** Construct from an explicit dimension list; all dims must be > 0. */
    Shape(std::initializer_list<std::int64_t> dims);

    /** Construct from a vector of dimensions; all dims must be > 0. */
    explicit Shape(std::vector<std::int64_t> dims);

    /** Number of dimensions. */
    std::size_t rank() const { return dims_.size(); }

    /** Size of dimension i; supports negative Python-style indices. */
    std::int64_t dim(std::int64_t i) const;

    /** Total element count (1 for a scalar/rank-0 shape). */
    std::int64_t numel() const;

    /** Underlying dimension vector. */
    const std::vector<std::int64_t> &dims() const { return dims_; }

    /** Shape with dimension i replaced (used for batch substitution). */
    Shape withDim(std::int64_t i, std::int64_t value) const;

    /** Render as "[N, C, H, W]". */
    std::string toString() const;

    bool operator==(const Shape &other) const = default;

  private:
    std::vector<std::int64_t> dims_;
};

} // namespace tbd::tensor

#endif // TBD_TENSOR_SHAPE_H
