#include "tensor/shape.h"

#include <sstream>

#include "util/logging.h"

namespace tbd::tensor {

namespace {

void
validate(const std::vector<std::int64_t> &dims)
{
    for (std::int64_t d : dims)
        TBD_CHECK(d > 0, "shape dimension must be positive, got ", d);
}

} // namespace

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims)
{
    validate(dims_);
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims))
{
    validate(dims_);
}

std::int64_t
Shape::dim(std::int64_t i) const
{
    const auto r = static_cast<std::int64_t>(dims_.size());
    if (i < 0)
        i += r;
    TBD_CHECK(i >= 0 && i < r, "shape dim index ", i, " out of rank ", r);
    return dims_[static_cast<std::size_t>(i)];
}

std::int64_t
Shape::numel() const
{
    std::int64_t n = 1;
    for (std::int64_t d : dims_)
        n *= d;
    return n;
}

Shape
Shape::withDim(std::int64_t i, std::int64_t value) const
{
    const auto r = static_cast<std::int64_t>(dims_.size());
    if (i < 0)
        i += r;
    TBD_CHECK(i >= 0 && i < r, "shape dim index ", i, " out of rank ", r);
    std::vector<std::int64_t> dims = dims_;
    dims[static_cast<std::size_t>(i)] = value;
    return Shape(std::move(dims));
}

std::string
Shape::toString() const
{
    std::ostringstream oss;
    oss << '[';
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (i)
            oss << ", ";
        oss << dims_[i];
    }
    oss << ']';
    return oss.str();
}

} // namespace tbd::tensor
