/**
 * @file
 * Central-difference numeric gradient checking.
 *
 * Every layer in src/layers is verified against this in the test suite:
 * the analytic backward pass must match the numeric derivative of a
 * scalar loss within tolerance.
 */

#ifndef TBD_TENSOR_GRADCHECK_H
#define TBD_TENSOR_GRADCHECK_H

#include <functional>

#include "tensor/tensor.h"

namespace tbd::tensor {

/** Result of a gradient check. */
struct GradCheckResult
{
    double maxAbsError = 0.0; ///< worst |analytic - numeric|
    double maxRelError = 0.0; ///< worst relative error on large entries
    std::int64_t checked = 0; ///< number of entries compared
    bool
    ok(double tol = 1e-2) const
    {
        return maxRelError <= tol;
    }
};

/**
 * Compare an analytic gradient with the central-difference gradient of a
 * scalar-valued function.
 *
 * @param x         Point at which to differentiate (perturbed in place
 *                  and restored).
 * @param loss      Scalar function of x.
 * @param analytic  Analytic dLoss/dx, same shape as x.
 * @param eps       Finite-difference step.
 * @param maxProbe  Cap on entries to probe (evenly strided); 0 = all.
 */
GradCheckResult checkGradient(Tensor &x,
                              const std::function<double()> &loss,
                              const Tensor &analytic, double eps = 1e-3,
                              std::int64_t maxProbe = 64);

} // namespace tbd::tensor

#endif // TBD_TENSOR_GRADCHECK_H
