#include "tensor/gradcheck.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace tbd::tensor {

GradCheckResult
checkGradient(Tensor &x, const std::function<double()> &loss,
              const Tensor &analytic, double eps, std::int64_t maxProbe)
{
    TBD_CHECK(x.shape() == analytic.shape(),
              "gradient shape mismatch: ", x.shape().toString(), " vs ",
              analytic.shape().toString());
    const std::int64_t n = x.numel();
    const std::int64_t probes =
        (maxProbe <= 0 || maxProbe >= n) ? n : maxProbe;
    const std::int64_t stride = std::max<std::int64_t>(1, n / probes);

    GradCheckResult res;
    for (std::int64_t i = 0; i < n; i += stride) {
        const float orig = x.at(i);
        x.at(i) = orig + static_cast<float>(eps);
        const double up = loss();
        x.at(i) = orig - static_cast<float>(eps);
        const double down = loss();
        x.at(i) = orig;

        const double numeric = (up - down) / (2.0 * eps);
        const double exact = analytic.at(i);
        const double abs_err = std::fabs(numeric - exact);
        // allclose-style error: the 0.05 floor absorbs FP32 forward
        // noise on near-zero gradient entries (|noise| ~ 1e-3 after
        // division by 2*eps) without masking real sign/scale bugs.
        const double denom =
            std::max(std::fabs(numeric), std::fabs(exact)) + 0.05;
        res.maxAbsError = std::max(res.maxAbsError, abs_err);
        res.maxRelError = std::max(res.maxRelError, abs_err / denom);
        ++res.checked;
    }
    return res;
}

} // namespace tbd::tensor
