/**
 * @file
 * SIMD dispatch for the functional engine's CPU kernels.
 *
 * The kernel layer (tensor/kernels.h) ships two implementations of
 * every microkernel: a portable scalar reference (the bitwise oracle)
 * and an AVX2+FMA version compiled only when the toolchain supports
 * it. Which one runs is decided here:
 *
 *  - *Compile time*: CMake probes the compiler for -mavx2 -mfma and
 *    defines TBD_SIMD_HAS_AVX2 on the one translation unit that
 *    contains vector intrinsics. Everything else stays baseline
 *    x86-64 (or any other arch) and falls back to scalar.
 *  - *Run time*: the host CPU must actually report AVX2+FMA (a binary
 *    built on an AVX2 machine may run elsewhere), and the TBD_SIMD
 *    environment variable can force the scalar oracle: "off", "0" and
 *    "scalar" disable vector dispatch, anything else (or unset)
 *    leaves it on. Tests override both with setSimdEnabled().
 *
 * Both implementations execute the same floating-point operations in
 * the same order (see kernels.h for the semantics contract), so the
 * answer to "which tier ran?" is observable only through timing and
 * the engine.simd.{dispatch,fallback} counters — never through a
 * numeric result.
 */

#ifndef TBD_TENSOR_SIMD_H
#define TBD_TENSOR_SIMD_H

#include <optional>

namespace tbd::tensor::simd {

/** Kernel implementation tiers, lowest to highest. */
enum class Tier { Scalar, Avx2 };

/** Human-readable tier name ("scalar", "avx2"). */
const char *tierName(Tier tier);

/** Highest tier compiled into this binary. */
Tier compiledTier();

/** True when the running CPU supports the compiled vector tier. */
bool cpuSupportsCompiledTier();

/**
 * The tier kernel dispatch selects right now: the compiled tier,
 * clamped by the host CPU, TBD_SIMD and any setSimdEnabled override.
 */
Tier activeTier();

/** Convenience: activeTier() != Tier::Scalar. */
bool active();

/**
 * Programmatic override of the TBD_SIMD gate (tests, A/B benches):
 * true forces vector dispatch (still clamped by compiledTier() and
 * the CPU), false forces the scalar oracle, nullopt returns control
 * to the environment.
 */
void setSimdEnabled(std::optional<bool> enabled);

/**
 * TBD_SIMD parsing rule: "off", "0" and "scalar" (case-sensitive)
 * disable vector dispatch; unset, empty or anything else enables it.
 * Split out so the parsing is testable (cf. threadCountFromEnv).
 */
bool simdEnabledFromEnv(const char *value);

/**
 * Note one kernel-level dispatch decision on the
 * engine.simd.{dispatch,fallback} counters (no-op unless TBD_OBS is
 * on). Called once per tensor-op invocation, not per microkernel.
 */
void noteDispatch(bool vectorPathTaken);

} // namespace tbd::tensor::simd

#endif // TBD_TENSOR_SIMD_H
