#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

Usage:
    check_bench_regression.py --baseline BENCH_micro.json \
        --current bench_now.json [--tolerance 3.0] [--filter REGEX]

The baseline is the committed Release recording (BENCH_micro.json at
the repo root); the current run is a fresh ``--benchmark_out`` JSON
from the same binary. A benchmark regresses when its cpu_time exceeds
``baseline * tolerance``. The tolerance is a ratio, not a percentage:
CI runners differ from the recording host by integer factors (CPU
generation, frequency, neighbours), so the band is wide by design —
this gate catches order-of-magnitude accidents (a de-vectorized
kernel, a debug-flagged TU, a fast path wired out), not percent-level
drift.

Provenance is enforced, not assumed: the current run must carry the
``tbd_build_type: Release`` context stamp that bench_util.h's
guardBuildType() attaches, so a debug binary can never green the gate
(the committed baseline once shipped with debug provenance; see
DESIGN.md "Fast paths in the functional engine").

Only benchmarks present in BOTH files are compared — CI filters the
run down to the stable micro-kernels — but an empty intersection is an
error, never a vacuous pass. Comparison is by exact benchmark name, so
the persistent-store A/B pairs never cross modes: a ``...StoreCold``
row is only ever held against the baseline's cold recording and
``...StoreWarm`` against warm.

Two store-specific gates run on the CURRENT run alone (the committed
baseline merely proves they once held on the recording host):

- ``--min-warm-hit-rate R``: every ``*StoreWarm*`` benchmark must
  report a ``store_hit_rate`` counter >= R. A warm pass that quietly
  recomputes (key drift, an epoch bump without re-recording) fails
  here rather than showing up as a timing blip inside the wide band.
- ``--min-warm-speedup S``: for every ``<prefix>StoreCold`` /
  ``<prefix>StoreWarm`` pair in the current run, cold cpu_time must be
  >= S * warm cpu_time. This is the DESIGN.md §16 acceptance ratio
  (warm sweeps >= 5x cold on the recording host; CI asks for less
  because its neighbours are noisy).

Exits 0 when every compared benchmark is inside the band and the
store gates hold, 1 on any regression or provenance failure.
"""

import argparse
import json
import re
import sys

# ns per unit, for normalizing cpu_time across time_unit values.
_TIME_UNITS_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """Return (context, {name: cpu_time_ns}, {name: {counter: value}})."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    times = {}
    counters = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregates (mean/median/stddev rows) and error rows.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        if "error_occurred" in bench:
            continue
        unit = _TIME_UNITS_NS.get(bench.get("time_unit", "ns"))
        if unit is None:
            raise SystemExit(
                f"{path}: unknown time_unit in {bench.get('name')!r}")
        times[bench["name"]] = float(bench["cpu_time"]) * unit
        # google-benchmark flattens UserCounters into the benchmark
        # object itself; pick out the numeric non-schema keys.
        counters[bench["name"]] = {
            key: float(value)
            for key, value in bench.items()
            if isinstance(value, (int, float)) and key not in (
                "cpu_time", "real_time", "iterations",
                "repetitions", "repetition_index", "threads",
                "family_index", "per_family_instance_index")
        }
    return doc.get("context", {}), times, counters


_STORE_PAIR_RE = re.compile(r"^(?P<prefix>.*)StoreCold(?P<suffix>.*)$")


def check_store_gates(times, counters, min_hit_rate, min_speedup):
    """Apply the store warm-path gates to the current run. Returns ok."""
    ok = True
    if min_hit_rate is not None:
        warm = [n for n in sorted(times) if "StoreWarm" in n]
        if not warm:
            print("error: --min-warm-hit-rate given but the current "
                  "run has no *StoreWarm* benchmarks", file=sys.stderr)
            ok = False
        for name in warm:
            rate = counters.get(name, {}).get("store_hit_rate")
            if rate is None:
                print(f"error: {name} carries no store_hit_rate "
                      "counter (store disabled in the bench build?)",
                      file=sys.stderr)
                ok = False
            elif rate < min_hit_rate:
                print(f"error: {name} store_hit_rate={rate:.3f} < "
                      f"{min_hit_rate:.3f} — the warm pass is "
                      "recomputing instead of replaying",
                      file=sys.stderr)
                ok = False
    if min_speedup is not None:
        pairs = []
        for name in sorted(times):
            m = _STORE_PAIR_RE.match(name)
            if not m:
                continue
            warm_name = (m.group("prefix") + "StoreWarm"
                         + m.group("suffix"))
            if warm_name in times:
                pairs.append((name, warm_name))
        if not pairs:
            print("error: --min-warm-speedup given but the current "
                  "run has no StoreCold/StoreWarm pairs",
                  file=sys.stderr)
            ok = False
        for cold_name, warm_name in pairs:
            speedup = times[cold_name] / times[warm_name]
            verdict = "ok" if speedup >= min_speedup else "TOO SLOW"
            print(f"{cold_name} / {warm_name}: {speedup:.2f}x warm "
                  f"speedup (floor {min_speedup:.2f}x) {verdict}")
            if speedup < min_speedup:
                print(f"error: warm speedup {speedup:.2f}x under the "
                      f"{min_speedup:.2f}x floor for {warm_name}",
                      file=sys.stderr)
                ok = False
    return ok


def check_provenance(context, path, what):
    """Fail unless the run was stamped as a Release build."""
    build_type = context.get("tbd_build_type")
    if build_type != "Release":
        print(
            f"error: {what} {path} has tbd_build_type="
            f"{build_type!r}, want 'Release'. Re-record from a "
            "-DCMAKE_BUILD_TYPE=Release build (bench_util.h refuses "
            "to run otherwise).",
            file=sys.stderr)
        return False
    return True


def format_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON (BENCH_micro.json)")
    parser.add_argument("--current", required=True,
                        help="fresh --benchmark_out JSON to check")
    parser.add_argument("--tolerance", type=float, default=3.0,
                        help="allowed cpu_time ratio over baseline "
                             "(default: %(default)s)")
    parser.add_argument("--filter", default=None,
                        help="only compare benchmark names matching "
                             "this regex")
    parser.add_argument("--min-warm-hit-rate", type=float, default=None,
                        metavar="R",
                        help="require store_hit_rate >= R on every "
                             "*StoreWarm* benchmark in the current run")
    parser.add_argument("--min-warm-speedup", type=float, default=None,
                        metavar="S",
                        help="require cold/warm cpu_time >= S for every "
                             "StoreCold/StoreWarm pair in the current run")
    args = parser.parse_args(argv)

    if args.tolerance <= 1.0:
        parser.error("--tolerance must be > 1.0 (it is a ratio)")
    if args.min_warm_hit_rate is not None and not (
            0.0 < args.min_warm_hit_rate <= 1.0):
        parser.error("--min-warm-hit-rate must be in (0, 1]")
    if args.min_warm_speedup is not None and args.min_warm_speedup <= 1.0:
        parser.error("--min-warm-speedup must be > 1.0 (it is a ratio)")

    base_ctx, baseline, _ = load_benchmarks(args.baseline)
    cur_ctx, current, cur_counters = load_benchmarks(args.current)

    ok = check_provenance(base_ctx, args.baseline, "baseline")
    ok &= check_provenance(cur_ctx, args.current, "current run")

    names = sorted(set(baseline) & set(current))
    if args.filter is not None:
        pattern = re.compile(args.filter)
        names = [n for n in names if pattern.search(n)]
    if not names:
        print("error: no benchmarks in common between baseline and "
              "current run (name drift? over-tight --filter?)",
              file=sys.stderr)
        return 1

    regressions = []
    width = max(len(n) for n in names)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}"
          f"  {'ratio':>6}  band<= {args.tolerance:.2f}x")
    for name in names:
        ratio = current[name] / baseline[name]
        verdict = "ok" if ratio <= args.tolerance else "REGRESSED"
        print(f"{name:<{width}}  {format_ns(baseline[name]):>10}"
              f"  {format_ns(current[name]):>10}  {ratio:>5.2f}x"
              f"  {verdict}")
        if ratio > args.tolerance:
            regressions.append(name)

    skipped = sorted(set(baseline) - set(current))
    if skipped:
        print(f"note: {len(skipped)} baseline benchmark(s) not in the "
              f"current run: {', '.join(skipped[:8])}"
              f"{' ...' if len(skipped) > 8 else ''}")

    ok &= check_store_gates(current, cur_counters,
                            args.min_warm_hit_rate,
                            args.min_warm_speedup)

    if regressions:
        print(f"error: {len(regressions)} benchmark(s) regressed past "
              f"{args.tolerance:.2f}x: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    if not ok:
        return 1
    print(f"{len(names)} benchmark(s) within the band.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
