#include <gtest/gtest.h>

#include "core/suite.h"
#include "core/sweep_spec.h"
#include "models/model_desc.h"
#include "util/logging.h"

namespace tc = tbd::core;
namespace td = tbd::dist;

TEST(DistSweepSpec, DistAxesExpandInnermost)
{
    const auto cells = tc::SweepSpec()
                           .model("ResNet-50")
                           .framework("MXNet")
                           .batches({32})
                           .distTopologies({"ethernet-flat",
                                            "infiniband-flat"})
                           .distWorkers({8, 16})
                           .distCollectives({"ring", "tree"})
                           .requests();
    // topology -> workers -> collective, inside the single-GPU axes.
    ASSERT_EQ(cells.size(), 8u);
    EXPECT_EQ(cells[0].distTopology, "ethernet-flat");
    EXPECT_EQ(cells[0].distWorkers, 8);
    EXPECT_EQ(cells[0].distCollective, "ring");
    EXPECT_EQ(cells[1].distCollective, "tree");
    EXPECT_EQ(cells[2].distWorkers, 16);
    EXPECT_EQ(cells[4].distTopology, "infiniband-flat");
    for (const auto &cell : cells) {
        EXPECT_TRUE(cell.isDist());
        EXPECT_EQ(cell.distCompression, 1.0);
    }
}

TEST(DistSweepSpec, UnsetDistAxesDefault)
{
    // Setting only the worker axis fills topology/collective with
    // their documented defaults.
    const auto cells = tc::SweepSpec()
                           .model("ResNet-50")
                           .framework("MXNet")
                           .batches({32})
                           .distWorkers({8})
                           .requests();
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].distTopology, "infiniband-flat");
    EXPECT_EQ(cells[0].distCollective, "ring");
    EXPECT_EQ(cells[0].distCompression, 1.0);
}

TEST(DistSweepSpec, NoDistAxesMeansPlainCells)
{
    const auto cells = tc::SweepSpec()
                           .model("ResNet-50")
                           .framework("MXNet")
                           .batches({32})
                           .requests();
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_FALSE(cells[0].isDist());
}

TEST(DistSweepSpec, PinnedTopologyDropsMismatchedWorkerCounts)
{
    // paper-2m1g-ib is pinned to 2 workers: the 8/16 cells vanish the
    // same way an unsupported framework cell does, while the scalable
    // shape keeps every count.
    const auto cells = tc::SweepSpec()
                           .model("ResNet-50")
                           .framework("MXNet")
                           .batches({32})
                           .distTopologies({"paper-2m1g-ib",
                                            "infiniband-flat"})
                           .distWorkers({2, 8, 16})
                           .requests();
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[0].distTopology, "paper-2m1g-ib");
    EXPECT_EQ(cells[0].distWorkers, 2);
    for (std::size_t i = 1; i < cells.size(); ++i)
        EXPECT_EQ(cells[i].distTopology, "infiniband-flat");
}

TEST(DistSweepSpec, CompressionAxisPropagates)
{
    const auto cells = tc::SweepSpec()
                           .model("ResNet-50")
                           .framework("MXNet")
                           .batches({32})
                           .distTopologies({"ethernet-flat"})
                           .distWorkers({8})
                           .distCompressions({1.0, 4.0, 32.0})
                           .requests();
    ASSERT_EQ(cells.size(), 3u);
    EXPECT_EQ(cells[0].distCompression, 1.0);
    EXPECT_EQ(cells[1].distCompression, 4.0);
    EXPECT_EQ(cells[2].distCompression, 32.0);
}

TEST(DistSweepSpec, UnknownDistNamesThrowWithSuggestions)
{
    try {
        (void)tc::SweepSpec()
            .model("ResNet-50")
            .distTopologies({"nvlink-islands"})
            .distWorkers({8})
            .requests();
        FAIL() << "expected UnknownNameError";
    } catch (const tc::UnknownNameError &e) {
        EXPECT_EQ(e.kind(), "topology");
        EXPECT_EQ(e.suggestion(), "nvlink-island");
    }
    try {
        (void)tc::SweepSpec()
            .model("ResNet-50")
            .distCollectives({"rign"})
            .distWorkers({8})
            .requests();
        FAIL() << "expected UnknownNameError";
    } catch (const tc::UnknownNameError &e) {
        EXPECT_EQ(e.kind(), "collective");
        EXPECT_EQ(e.suggestion(), "ring");
    }
}

TEST(DistSweep, ToDistConfigResolvesNames)
{
    tc::BenchmarkRequest request;
    request.distTopology = "nvlink-island";
    request.distCollective = "hierarchical";
    request.distWorkers = 16;
    request.distCompression = 4.0;
    const td::DistConfig dc = tc::toDistConfig(request);
    EXPECT_EQ(dc.topology.name, "nvlink-island");
    EXPECT_EQ(dc.collective.name, "hierarchical");
    EXPECT_EQ(dc.workers, 16);
    EXPECT_EQ(dc.gradientCompression, 4.0);
}

TEST(DistSweep, ToDistConfigRejectsBadRequests)
{
    tc::BenchmarkRequest request;
    request.distTopology = "fat-trie";
    request.distWorkers = 8;
    EXPECT_THROW((void)tc::toDistConfig(request),
                 tc::UnknownNameError);

    request.distTopology = "fat-tree";
    request.distCompression = 0.5;
    EXPECT_THROW((void)tc::toDistConfig(request),
                 tbd::util::FatalError);

    // A scalable topology with no worker count cannot be simulated.
    request.distCompression = 1.0;
    request.distWorkers = 0;
    EXPECT_THROW((void)tc::toDistConfig(request),
                 tbd::util::FatalError);
}

TEST(DistSweep, ToRunConfigRefusesDistRequests)
{
    tc::BenchmarkRequest request;
    request.distWorkers = 8;
    EXPECT_THROW((void)tc::toRunConfig(request),
                 tbd::util::FatalError);
}

TEST(DistSweep, RunDistSweepReturnsCellsInRequestOrder)
{
    const tc::SweepSpec spec = tc::SweepSpec()
                                   .model("ResNet-50")
                                   .framework("MXNet")
                                   .batches({32})
                                   .distTopologies({"infiniband-flat"})
                                   .distWorkers({8, 16, 32});
    const auto results = tc::BenchmarkSuite::runDistSweep(spec);
    ASSERT_EQ(results.size(), 3u);
    int expected_workers = 8;
    for (const auto &cell : results) {
        ASSERT_TRUE(cell.has_value());
        EXPECT_EQ(cell->workers, expected_workers);
        EXPECT_EQ(cell->topology, "infiniband-flat");
        EXPECT_GT(cell->throughputSamples, 0.0);
        expected_workers *= 2;
    }
}

TEST(DistSweep, RunDistSweepMatchesDirectSimulation)
{
    // The baseline-dedup fast path must not change any number.
    tc::BenchmarkRequest request;
    request.model = "ResNet-50";
    request.framework = "MXNet";
    request.batch = 32;
    request.distTopology = "nvlink-island";
    request.distCollective = "ring";
    request.distWorkers = 16;
    const auto swept = tc::BenchmarkSuite::runDistSweep({request});
    ASSERT_EQ(swept.size(), 1u);
    ASSERT_TRUE(swept[0].has_value());

    const auto direct = td::simulateDistributed(
        tbd::models::modelByName("ResNet-50"),
        *tc::BenchmarkSuite::findFramework("MXNet"),
        *tc::BenchmarkSuite::findGpu("Quadro P4000"), 32,
        tc::toDistConfig(request));
    EXPECT_EQ(swept[0]->iterationUs, direct.iterationUs);
    EXPECT_EQ(swept[0]->commUs, direct.commUs);
    EXPECT_EQ(swept[0]->throughputSamples, direct.throughputSamples);
}
