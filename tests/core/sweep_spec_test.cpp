#include "core/sweep_spec.h"

#include <gtest/gtest.h>

#include "models/model_desc.h"

namespace tc = tbd::core;
namespace tmod = tbd::models;

TEST(SweepSpec, DefaultsCoverEveryImplementationAndPaperBatch)
{
    const auto cells = tc::SweepSpec().requests();
    std::size_t expected = 0;
    for (const auto *model : tmod::allModels())
        expected += model->frameworks.size() * model->batchSweep.size();
    EXPECT_EQ(cells.size(), expected);
    for (const auto &cell : cells)
        EXPECT_EQ(cell.gpu, "Quadro P4000");
}

TEST(SweepSpec, ExpansionOrderIsModelFrameworkGpuBatch)
{
    const auto cells = tc::SweepSpec()
                           .model("ResNet-50")
                           .frameworks({"MXNet", "TensorFlow"})
                           .gpus({"Quadro P4000", "TITAN Xp"})
                           .batches({8, 16})
                           .requests();
    ASSERT_EQ(cells.size(), 8u);
    // Frameworks in the given order, then GPUs, then batches.
    EXPECT_EQ(cells[0].framework, "MXNet");
    EXPECT_EQ(cells[0].gpu, "Quadro P4000");
    EXPECT_EQ(cells[0].batch, 8);
    EXPECT_EQ(cells[1].batch, 16);
    EXPECT_EQ(cells[2].gpu, "TITAN Xp");
    EXPECT_EQ(cells[4].framework, "TensorFlow");
}

TEST(SweepSpec, DropsUnsupportedCombinationsByDefault)
{
    // Deep Speech 2 has no CNTK implementation (Table 2's empty cell).
    const auto cells = tc::SweepSpec()
                           .model("Deep Speech 2")
                           .frameworks({"MXNet", "CNTK"})
                           .batches({2})
                           .requests();
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].framework, "MXNet");

    const auto kept = tc::SweepSpec()
                          .model("Deep Speech 2")
                          .frameworks({"MXNet", "CNTK"})
                          .batches({2})
                          .keepUnsupported()
                          .requests();
    EXPECT_EQ(kept.size(), 2u);
}

TEST(SweepSpec, MaxBatchFiltersThePaperSweep)
{
    const auto cells = tc::SweepSpec()
                           .model("ResNet-50")
                           .framework("MXNet")
                           .maxBatch(16)
                           .requests();
    EXPECT_FALSE(cells.empty());
    for (const auto &cell : cells)
        EXPECT_LE(cell.batch, 16);
}

TEST(SweepSpec, CustomFiltersChain)
{
    const auto cells =
        tc::SweepSpec()
            .model("ResNet-50")
            .framework("MXNet")
            .filter([](const tc::BenchmarkRequest &r) {
                return r.batch >= 8;
            })
            .filter([](const tc::BenchmarkRequest &r) {
                return r.batch <= 32;
            })
            .requests();
    EXPECT_FALSE(cells.empty());
    for (const auto &cell : cells) {
        EXPECT_GE(cell.batch, 8);
        EXPECT_LE(cell.batch, 32);
    }
}

TEST(SweepSpec, LengthCvPropagatesToEveryCell)
{
    const auto cells = tc::SweepSpec()
                           .model("Sockeye")
                           .framework("MXNet")
                           .batches({16})
                           .lengthCv(0.3, 7)
                           .requests();
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].lengthCv, 0.3);
    EXPECT_EQ(cells[0].lengthSeed, 7u);
}

TEST(SweepSpec, UnknownNamesThrowWithSuggestions)
{
    try {
        (void)tc::SweepSpec().model("ResNet-5O").requests();
        FAIL() << "expected UnknownNameError";
    } catch (const tc::UnknownNameError &e) {
        EXPECT_EQ(e.kind(), "model");
        EXPECT_EQ(e.suggestion(), "ResNet-50");
    }
    EXPECT_THROW((void)tc::SweepSpec().framework("Caffe").requests(),
                 tc::UnknownNameError);
    EXPECT_THROW((void)tc::SweepSpec().gpu("V100").requests(),
                 tc::UnknownNameError);
}
