#include "core/suite.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace tc = tbd::core;

TEST(Suite, ResolvesFrameworksByName)
{
    EXPECT_EQ(tc::BenchmarkSuite::frameworkByName("TensorFlow"),
              tbd::frameworks::FrameworkId::TensorFlow);
    EXPECT_EQ(tc::BenchmarkSuite::frameworkByName("MXNet"),
              tbd::frameworks::FrameworkId::MXNet);
    EXPECT_THROW(tc::BenchmarkSuite::frameworkByName("Caffe"),
                 tbd::util::FatalError);
}

TEST(Suite, ResolvesGpusByName)
{
    EXPECT_EQ(tc::BenchmarkSuite::gpuByName("TITAN Xp").coreCount, 3840);
    EXPECT_THROW(tc::BenchmarkSuite::gpuByName("V100"),
                 tbd::util::FatalError);
}

TEST(Suite, RunsARequestEndToEnd)
{
    tc::BenchmarkRequest req;
    req.model = "ResNet-50";
    req.framework = "MXNet";
    req.batch = 16;
    auto report = tc::BenchmarkSuite::run(req);
    EXPECT_TRUE(report.stable);
    EXPECT_GT(report.result.throughputSamples, 0.0);
    EXPECT_EQ(report.result.batch, 16);
    EXPECT_EQ(report.result.frameworkName, "MXNet");
}

TEST(Suite, RunIfFitsReturnsNulloptOnOom)
{
    tc::BenchmarkRequest req;
    req.model = "Sockeye";
    req.framework = "MXNet";
    req.batch = 512; // far beyond the 8 GiB ceiling
    EXPECT_FALSE(tc::BenchmarkSuite::runIfFits(req).has_value());
    req.batch = 16;
    EXPECT_TRUE(tc::BenchmarkSuite::runIfFits(req).has_value());
}

TEST(Suite, RunIfFitsStillThrowsOnUserError)
{
    tc::BenchmarkRequest req;
    req.model = "Deep Speech 2";
    req.framework = "CNTK"; // unsupported combination, not an OOM
    EXPECT_THROW(tc::BenchmarkSuite::runIfFits(req),
                 tbd::util::FatalError);
}

TEST(Suite, Table2HasNineImplementationRows)
{
    auto t = tc::BenchmarkSuite::table2Overview();
    EXPECT_EQ(t.rowCount(), 9u);
    const std::string s = t.toString();
    EXPECT_NE(s.find("ResNet-50"), std::string::npos);
    EXPECT_NE(s.find("Deep Speech 2"), std::string::npos);
    EXPECT_NE(s.find("Atari 2600"), std::string::npos);
}

TEST(Suite, Table3ListsDatasets)
{
    auto t = tc::BenchmarkSuite::table3Datasets();
    EXPECT_EQ(t.rowCount(), 6u);
    EXPECT_NE(t.toString().find("IWSLT15"), std::string::npos);
}

TEST(Suite, Table4ListsHardwareSpecs)
{
    auto t = tc::BenchmarkSuite::table4Hardware();
    const std::string s = t.toString();
    EXPECT_NE(s.find("TITAN Xp"), std::string::npos);
    EXPECT_NE(s.find("1792"), std::string::npos); // P4000 cores
    EXPECT_NE(s.find("GDDR5X"), std::string::npos);
    EXPECT_NE(s.find("547.6"), std::string::npos); // Xp bandwidth
}
