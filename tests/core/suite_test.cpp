#include "core/suite.h"

#include <gtest/gtest.h>

#include "core/sweep_spec.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tc = tbd::core;

TEST(Suite, ResolvesFrameworksByName)
{
    EXPECT_EQ(tc::BenchmarkSuite::frameworkByName("TensorFlow"),
              tbd::frameworks::FrameworkId::TensorFlow);
    EXPECT_EQ(tc::BenchmarkSuite::frameworkByName("MXNet"),
              tbd::frameworks::FrameworkId::MXNet);
    EXPECT_THROW(tc::BenchmarkSuite::frameworkByName("Caffe"),
                 tbd::util::FatalError);
}

TEST(Suite, ResolvesGpusByName)
{
    EXPECT_EQ(tc::BenchmarkSuite::gpuByName("TITAN Xp").coreCount, 3840);
    EXPECT_THROW(tc::BenchmarkSuite::gpuByName("V100"),
                 tbd::util::FatalError);
}

TEST(Suite, RunsARequestEndToEnd)
{
    tc::BenchmarkRequest req;
    req.model = "ResNet-50";
    req.framework = "MXNet";
    req.batch = 16;
    auto report = tc::BenchmarkSuite::run(req);
    EXPECT_TRUE(report.stable);
    EXPECT_GT(report.result.throughputSamples, 0.0);
    EXPECT_EQ(report.result.batch, 16);
    EXPECT_EQ(report.result.frameworkName, "MXNet");
}

TEST(Suite, RunIfFitsReturnsNulloptOnOom)
{
    tc::BenchmarkRequest req;
    req.model = "Sockeye";
    req.framework = "MXNet";
    req.batch = 512; // far beyond the 8 GiB ceiling
    EXPECT_FALSE(tc::BenchmarkSuite::runIfFits(req).has_value());
    req.batch = 16;
    EXPECT_TRUE(tc::BenchmarkSuite::runIfFits(req).has_value());
}

TEST(Suite, RunIfFitsStillThrowsOnUserError)
{
    tc::BenchmarkRequest req;
    req.model = "Deep Speech 2";
    req.framework = "CNTK"; // unsupported combination, not an OOM
    EXPECT_THROW(tc::BenchmarkSuite::runIfFits(req),
                 tbd::util::FatalError);
}

namespace {

std::vector<tc::BenchmarkRequest>
sweepRequests()
{
    std::vector<tc::BenchmarkRequest> reqs;
    for (std::int64_t batch : {8, 16, 32}) {
        tc::BenchmarkRequest r;
        r.model = "ResNet-50";
        r.framework = "MXNet";
        r.batch = batch;
        reqs.push_back(r);
    }
    tc::BenchmarkRequest oom;
    oom.model = "Sockeye";
    oom.framework = "MXNet";
    oom.batch = 512; // does not fit the 8 GiB P4000
    reqs.push_back(oom);
    tc::BenchmarkRequest nmt;
    nmt.model = "NMT";
    nmt.framework = "TensorFlow";
    nmt.batch = 64;
    reqs.push_back(nmt);
    return reqs;
}

} // namespace

TEST(Suite, RunSweepKeepsRequestOrderAndMarksOom)
{
    const auto reqs = sweepRequests();
    const auto results = tc::BenchmarkSuite::runSweep(reqs);
    ASSERT_EQ(results.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (reqs[i].model == "Sockeye") {
            EXPECT_FALSE(results[i].has_value()) << "cell " << i;
            continue;
        }
        ASSERT_TRUE(results[i].has_value()) << "cell " << i;
        EXPECT_EQ(results[i]->modelName, reqs[i].model);
        EXPECT_EQ(results[i]->frameworkName, reqs[i].framework);
        EXPECT_EQ(results[i]->batch, reqs[i].batch);
        EXPECT_GT(results[i]->throughputSamples, 0.0);
    }
}

TEST(Suite, RunSweepMatchesSerialLoopExactly)
{
    const auto reqs = sweepRequests();

    // Serial reference: the same sweep under a one-thread pool.
    tbd::util::ThreadPool serial(1);
    std::vector<std::optional<tbd::perf::RunResult>> reference;
    {
        tbd::util::ThreadPool::Scope scope(serial);
        reference = tc::BenchmarkSuite::runSweep(reqs);
    }

    tbd::util::ThreadPool pool(4);
    tbd::util::ThreadPool::Scope scope(pool);
    const auto parallel = tc::BenchmarkSuite::runSweep(reqs);

    ASSERT_EQ(parallel.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
        ASSERT_EQ(parallel[i].has_value(), reference[i].has_value())
            << "cell " << i;
        if (!reference[i])
            continue;
        EXPECT_EQ(parallel[i]->iterationUs, reference[i]->iterationUs);
        EXPECT_EQ(parallel[i]->throughputUnits,
                  reference[i]->throughputUnits);
        EXPECT_EQ(parallel[i]->gpuUtilization,
                  reference[i]->gpuUtilization);
        EXPECT_EQ(parallel[i]->fp32Utilization,
                  reference[i]->fp32Utilization);
        EXPECT_EQ(parallel[i]->memory.total(),
                  reference[i]->memory.total());
    }
}

TEST(Suite, RunSweepRethrowsNonOomErrors)
{
    std::vector<tc::BenchmarkRequest> reqs(1);
    reqs[0].model = "Deep Speech 2";
    reqs[0].framework = "CNTK"; // unsupported combination, not an OOM
    EXPECT_THROW(tc::BenchmarkSuite::runSweep(reqs),
                 tbd::util::FatalError);
}

TEST(Suite, RunSweepOfNothingIsEmpty)
{
    EXPECT_TRUE(tc::BenchmarkSuite::runSweep(
                    std::vector<tc::BenchmarkRequest>{})
                    .empty());
}

TEST(Suite, Table2HasNineImplementationRows)
{
    auto t = tc::BenchmarkSuite::table2Overview();
    EXPECT_EQ(t.rowCount(), 9u);
    const std::string s = t.toString();
    EXPECT_NE(s.find("ResNet-50"), std::string::npos);
    EXPECT_NE(s.find("Deep Speech 2"), std::string::npos);
    EXPECT_NE(s.find("Atari 2600"), std::string::npos);
}

TEST(Suite, Table3ListsDatasets)
{
    auto t = tc::BenchmarkSuite::table3Datasets();
    EXPECT_EQ(t.rowCount(), 6u);
    EXPECT_NE(t.toString().find("IWSLT15"), std::string::npos);
}

TEST(Suite, Table4ListsHardwareSpecs)
{
    auto t = tc::BenchmarkSuite::table4Hardware();
    const std::string s = t.toString();
    EXPECT_NE(s.find("TITAN Xp"), std::string::npos);
    EXPECT_NE(s.find("1792"), std::string::npos); // P4000 cores
    EXPECT_NE(s.find("GDDR5X"), std::string::npos);
    EXPECT_NE(s.find("547.6"), std::string::npos); // Xp bandwidth
}

// --- Lookup API redesign: optional-returning finders -----------------

TEST(Suite, FindFrameworkReturnsNulloptOnUnknown)
{
    EXPECT_EQ(tc::BenchmarkSuite::findFramework("TensorFlow"),
              tbd::frameworks::FrameworkId::TensorFlow);
    EXPECT_EQ(tc::BenchmarkSuite::findFramework("CNTK"),
              tbd::frameworks::FrameworkId::CNTK);
    EXPECT_FALSE(
        tc::BenchmarkSuite::findFramework("Caffe").has_value());
    EXPECT_FALSE(tc::BenchmarkSuite::findFramework("").has_value());
}

TEST(Suite, FindGpuReturnsNulloptOnUnknown)
{
    const auto xp = tc::BenchmarkSuite::findGpu("TITAN Xp");
    ASSERT_TRUE(xp.has_value());
    EXPECT_EQ(xp->coreCount, 3840);
    EXPECT_FALSE(tc::BenchmarkSuite::findGpu("V100").has_value());
}

TEST(Suite, NameListsMatchTheFinders)
{
    for (const auto &name : tc::BenchmarkSuite::frameworkNames())
        EXPECT_TRUE(tc::BenchmarkSuite::findFramework(name))
            << name;
    for (const auto &name : tc::BenchmarkSuite::gpuNames())
        EXPECT_TRUE(tc::BenchmarkSuite::findGpu(name)) << name;
    for (const auto &name : tc::modelNames())
        EXPECT_NE(tc::findModelDesc(name), nullptr) << name;
}

TEST(Suite, UnknownNameErrorSuggestsNearestFramework)
{
    try {
        (void)tc::BenchmarkSuite::frameworkByName("TensorFlw");
        FAIL() << "expected UnknownNameError";
    } catch (const tc::UnknownNameError &e) {
        EXPECT_EQ(e.kind(), "framework");
        EXPECT_EQ(e.name(), "TensorFlw");
        EXPECT_EQ(e.suggestion(), "TensorFlow");
        const std::string what = e.what();
        EXPECT_NE(what.find("TensorFlow"), std::string::npos) << what;
        EXPECT_NE(what.find("did you mean"), std::string::npos)
            << what;
        EXPECT_FALSE(e.validNames().empty());
    }
}

TEST(Suite, UnknownNameErrorListsValidGpus)
{
    try {
        (void)tc::BenchmarkSuite::gpuByName("GTX 1080");
        FAIL() << "expected UnknownNameError";
    } catch (const tc::UnknownNameError &e) {
        EXPECT_EQ(e.kind(), "GPU");
        const std::string what = e.what();
        EXPECT_NE(what.find("Quadro P4000"), std::string::npos)
            << what;
        EXPECT_NE(what.find("TITAN Xp"), std::string::npos) << what;
    }
}

TEST(Suite, DeprecatedWrappersAgreeWithTheFinders)
{
    EXPECT_EQ(tc::BenchmarkSuite::frameworkByName("MXNet"),
              *tc::BenchmarkSuite::findFramework("MXNet"));
    EXPECT_EQ(tc::BenchmarkSuite::gpuByName("Quadro P4000").coreCount,
              tc::BenchmarkSuite::findGpu("Quadro P4000")->coreCount);
}

// --- toRunConfig: the single request -> RunConfig path ---------------

TEST(Suite, ToRunConfigTranslatesEveryField)
{
    tc::BenchmarkRequest req;
    req.model = "Sockeye";
    req.framework = "MXNet";
    req.gpu = "TITAN Xp";
    req.batch = 24;
    req.lengthCv = 0.25;
    req.lengthSeed = 9;
    const auto rc = tc::toRunConfig(req);
    EXPECT_EQ(rc.model->name, "Sockeye");
    EXPECT_EQ(rc.framework, tbd::frameworks::FrameworkId::MXNet);
    EXPECT_EQ(rc.gpu.name, "TITAN Xp");
    EXPECT_EQ(rc.batch, 24);
    EXPECT_EQ(rc.lengthCv, 0.25);
    EXPECT_EQ(rc.lengthSeed, 9u);
}

TEST(Suite, ToRunConfigValidatesNamesAndRanges)
{
    tc::BenchmarkRequest req;
    req.model = "ResNet-50";
    req.framework = "MXNet";

    tc::BenchmarkRequest bad_model = req;
    bad_model.model = "ResNet-51";
    EXPECT_THROW((void)tc::toRunConfig(bad_model),
                 tc::UnknownNameError);

    tc::BenchmarkRequest bad_fw = req;
    bad_fw.framework = "Torch";
    EXPECT_THROW((void)tc::toRunConfig(bad_fw), tc::UnknownNameError);

    tc::BenchmarkRequest bad_gpu = req;
    bad_gpu.gpu = "V100";
    EXPECT_THROW((void)tc::toRunConfig(bad_gpu),
                 tc::UnknownNameError);

    tc::BenchmarkRequest bad_batch = req;
    bad_batch.batch = 0;
    EXPECT_THROW((void)tc::toRunConfig(bad_batch),
                 tbd::util::FatalError);

    tc::BenchmarkRequest bad_cv = req;
    bad_cv.lengthCv = 1.5;
    EXPECT_THROW((void)tc::toRunConfig(bad_cv),
                 tbd::util::FatalError);
}

TEST(Suite, RunSweepAcceptsASweepSpec)
{
    const auto results = tc::BenchmarkSuite::runSweep(
        tc::SweepSpec().model("ResNet-50").framework("MXNet").batches(
            {8, 16}));
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].has_value());
    EXPECT_TRUE(results[1].has_value());
    EXPECT_EQ(results[0]->batch, 8);
    EXPECT_EQ(results[1]->batch, 16);
}
