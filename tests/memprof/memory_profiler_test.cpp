#include "memprof/memory_profiler.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace mp = tbd::memprof;

TEST(MemoryProfiler, TracksLiveBytesPerCategory)
{
    mp::MemoryProfiler prof;
    prof.allocate(mp::MemCategory::Weights, 100);
    prof.allocate(mp::MemCategory::FeatureMaps, 300);
    EXPECT_EQ(prof.liveBytes(mp::MemCategory::Weights), 100u);
    EXPECT_EQ(prof.liveBytes(mp::MemCategory::FeatureMaps), 300u);
    EXPECT_EQ(prof.totalLiveBytes(), 400u);
    EXPECT_EQ(prof.liveCount(), 2u);
}

TEST(MemoryProfiler, ReleaseReturnsBytes)
{
    mp::MemoryProfiler prof;
    auto id = prof.allocate(mp::MemCategory::Workspace, 64);
    prof.release(id);
    EXPECT_EQ(prof.totalLiveBytes(), 0u);
    EXPECT_EQ(prof.liveCount(), 0u);
}

TEST(MemoryProfiler, DoubleFreeIsFatal)
{
    mp::MemoryProfiler prof;
    auto id = prof.allocate(mp::MemCategory::Dynamic, 8);
    prof.release(id);
    EXPECT_THROW(prof.release(id), tbd::util::FatalError);
}

TEST(MemoryProfiler, PeaksAreMaxEverAllocated)
{
    // The paper: "we measure the memory consumption by the maximal
    // amount of memory ever allocated for each type".
    mp::MemoryProfiler prof;
    auto a = prof.allocate(mp::MemCategory::FeatureMaps, 500);
    prof.release(a);
    prof.allocate(mp::MemCategory::FeatureMaps, 200);
    auto b = prof.breakdown();
    EXPECT_EQ(b.of(mp::MemCategory::FeatureMaps), 500u);
}

TEST(MemoryProfiler, PeakTotalTracksHighWater)
{
    mp::MemoryProfiler prof;
    auto a = prof.allocate(mp::MemCategory::Weights, 400);
    auto b = prof.allocate(mp::MemCategory::FeatureMaps, 600);
    prof.release(a);
    prof.release(b);
    prof.allocate(mp::MemCategory::Workspace, 100);
    EXPECT_EQ(prof.peakTotalBytes(), 1000u);
}

TEST(MemoryProfiler, OomWhenExceedingCapacity)
{
    mp::MemoryProfiler prof(1000);
    prof.allocate(mp::MemCategory::Weights, 900);
    EXPECT_THROW(prof.allocate(mp::MemCategory::FeatureMaps, 200),
                 tbd::util::FatalError);
    // Live state unchanged after the failed allocation.
    EXPECT_EQ(prof.totalLiveBytes(), 900u);
}

TEST(MemoryProfiler, ZeroCapacityDisablesOom)
{
    mp::MemoryProfiler prof(0);
    EXPECT_NO_THROW(
        prof.allocate(mp::MemCategory::FeatureMaps, 1ull << 40));
}

TEST(MemoryBreakdown, TotalAndFractions)
{
    mp::MemoryProfiler prof;
    prof.allocate(mp::MemCategory::Weights, 100);
    prof.allocate(mp::MemCategory::FeatureMaps, 900);
    auto b = prof.breakdown();
    EXPECT_EQ(b.total(), 1000u);
    EXPECT_DOUBLE_EQ(b.fraction(mp::MemCategory::FeatureMaps), 0.9);
    EXPECT_DOUBLE_EQ(b.fraction(mp::MemCategory::Dynamic), 0.0);
}

TEST(MemoryBreakdown, CategoryNamesMatchPaperLegend)
{
    EXPECT_STREQ(mp::memCategoryName(mp::MemCategory::Weights), "weights");
    EXPECT_STREQ(mp::memCategoryName(mp::MemCategory::WeightGradients),
                 "weight gradients");
    EXPECT_STREQ(mp::memCategoryName(mp::MemCategory::FeatureMaps),
                 "feature maps");
    EXPECT_STREQ(mp::memCategoryName(mp::MemCategory::Workspace),
                 "workspace");
    EXPECT_STREQ(mp::memCategoryName(mp::MemCategory::Dynamic), "dynamic");
}

TEST(MemoryProfiler, HistoryDisabledByDefault)
{
    mp::MemoryProfiler prof;
    prof.allocate(mp::MemCategory::Weights, 10);
    EXPECT_TRUE(prof.history().empty());
}

TEST(MemoryProfiler, HistoryRecordsEveryEvent)
{
    mp::MemoryProfiler prof(0, /*recordHistory=*/true);
    auto a = prof.allocate(mp::MemCategory::Weights, 100);
    prof.allocate(mp::MemCategory::FeatureMaps, 50);
    prof.release(a);
    const auto &h = prof.history();
    ASSERT_EQ(h.size(), 3u);
    EXPECT_EQ(h[0].totalLive, 100u);
    EXPECT_EQ(h[1].totalLive, 150u);
    EXPECT_EQ(h[2].totalLive, 50u);
    EXPECT_EQ(h[1].liveByCategory[static_cast<std::size_t>(
                  mp::MemCategory::FeatureMaps)],
              50u);
    EXPECT_LT(h[0].sequence, h[1].sequence);
}

TEST(MemoryProfiler, HistoryPeakMatchesPeakTotal)
{
    mp::MemoryProfiler prof(0, true);
    auto a = prof.allocate(mp::MemCategory::FeatureMaps, 400);
    prof.allocate(mp::MemCategory::Weights, 100);
    prof.release(a);
    std::uint64_t peak = 0;
    for (const auto &e : prof.history())
        peak = std::max(peak, e.totalLive);
    EXPECT_EQ(peak, prof.peakTotalBytes());
}
