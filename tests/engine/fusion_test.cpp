/**
 * @file
 * Fusion on/off equivalence: executing a network through its fusion
 * plan must be *bitwise identical* to the unfused layer-by-layer walk —
 * forward (training and inference), backward input gradients, and every
 * parameter gradient — because fused epilogues only elide memory
 * round-trips, never change the per-element operation sequence.
 */

#include "engine/fusion.h"

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <vector>

#include "engine/network.h"
#include "layers/activations.h"
#include "layers/conv.h"
#include "layers/dense.h"
#include "layers/norm.h"
#include "tensor/simd.h"
#include "util/rng.h"

namespace te = tbd::engine;
namespace tl = tbd::layers;
namespace tt = tbd::tensor;

namespace {

/** Restores the fusion/SIMD overrides however a test exits. */
struct OverrideGuard
{
    ~OverrideGuard()
    {
        te::setFusionEnabled(std::nullopt);
        tt::simd::setSimdEnabled(std::nullopt);
    }
};

tt::Tensor
randomTensor(tt::Shape shape, std::uint64_t seed)
{
    tbd::util::Rng rng(seed);
    tt::Tensor t(std::move(shape));
    t.fillNormal(rng, 0.0f, 1.0f);
    return t;
}

/** Conv+BN+ReLU -> Conv+LeakyReLU -> Dense+Tanh -> Dense: every
 *  segment kind the planner knows, plus a trailing Single. */
te::Network
makeFusableNet(std::uint64_t seed)
{
    tbd::util::Rng rng(seed);
    te::Network net("fusable");
    net.add(std::make_unique<tl::Conv2d>("c1", 2, 4, 3, 1, 1, rng, true));
    net.add(std::make_unique<tl::BatchNorm2d>("bn1", 4));
    net.add(std::make_unique<tl::Activation>("r1", tl::ActKind::ReLU));
    net.add(std::make_unique<tl::Conv2d>("c2", 4, 3, 3, 2, 0, rng, true));
    net.add(
        std::make_unique<tl::Activation>("l1", tl::ActKind::LeakyReLU));
    // c2 on 6x6 input: (6 - 3) / 2 + 1 = 2, so [N, 3, 2, 2] flattens
    // to 12 features per sample.
    net.add(std::make_unique<tl::FullyConnected>("fc1", 3 * 2 * 2, 6, rng));
    net.add(std::make_unique<tl::Activation>("t1", tl::ActKind::Tanh));
    net.add(std::make_unique<tl::FullyConnected>("fc2", 6, 2, rng));
    return net;
}

struct StepResult
{
    std::vector<float> y;
    std::vector<float> dx;
    std::vector<std::vector<float>> grads;
};

StepResult
runTrainStep(te::Network &net, const tt::Tensor &x, const tt::Tensor &dy)
{
    net.zeroGrads();
    tt::Tensor y = net.forward(x, true);
    tt::Tensor dx = net.backward(dy);
    StepResult res;
    res.y.assign(y.data(), y.data() + y.numel());
    res.dx.assign(dx.data(), dx.data() + dx.numel());
    for (auto *p : net.params())
        res.grads.emplace_back(p->grad.data(),
                               p->grad.data() + p->grad.numel());
    return res;
}

void
expectBitwiseEq(const std::vector<float> &a, const std::vector<float> &b,
                const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                             a.size() * sizeof(float)))
        << what << " differs";
}

void
expectSameStep(const StepResult &a, const StepResult &b)
{
    expectBitwiseEq(a.y, b.y, "forward output");
    expectBitwiseEq(a.dx, b.dx, "input gradient");
    ASSERT_EQ(a.grads.size(), b.grads.size());
    for (std::size_t i = 0; i < a.grads.size(); ++i)
        expectBitwiseEq(a.grads[i], b.grads[i], "param gradient");
}

} // namespace

TEST(Fusion, EnvParse)
{
    EXPECT_TRUE(te::fusionEnabledFromEnv(nullptr));
    EXPECT_TRUE(te::fusionEnabledFromEnv("on"));
    EXPECT_TRUE(te::fusionEnabledFromEnv("1"));
    EXPECT_FALSE(te::fusionEnabledFromEnv("off"));
    EXPECT_FALSE(te::fusionEnabledFromEnv("0"));
}

TEST(Fusion, SetFusionEnabledOverridesEnv)
{
    OverrideGuard guard;
    te::setFusionEnabled(false);
    EXPECT_FALSE(te::fusionEnabled());
    te::setFusionEnabled(true);
    EXPECT_TRUE(te::fusionEnabled());
    te::setFusionEnabled(std::nullopt);
}

TEST(Fusion, PlanSegmentsCoverTheStack)
{
    tbd::util::Rng rng(7);
    std::vector<tl::LayerPtr> stack;
    stack.push_back(
        std::make_unique<tl::Conv2d>("c", 2, 4, 3, 1, 1, rng, true));
    stack.push_back(std::make_unique<tl::BatchNorm2d>("bn", 4));
    stack.push_back(
        std::make_unique<tl::Activation>("r", tl::ActKind::ReLU));
    stack.push_back(std::make_unique<tl::BatchNorm2d>("bn2", 4));
    stack.push_back(
        std::make_unique<tl::Activation>("t", tl::ActKind::Tanh));
    stack.push_back(std::make_unique<tl::FullyConnected>("fc", 8, 4, rng));
    stack.push_back(
        std::make_unique<tl::Activation>("s", tl::ActKind::Sigmoid));
    stack.push_back(std::make_unique<tl::FullyConnected>("fc2", 4, 2, rng));

    const auto plan = te::buildFusionPlan(stack);
    using Kind = te::FusionSegment::Kind;
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan[0].kind, Kind::ConvBnAct);
    EXPECT_EQ(plan[0].count, 3u);
    EXPECT_EQ(plan[1].kind, Kind::BnAct);
    EXPECT_EQ(plan[2].kind, Kind::DenseAct);
    EXPECT_EQ(plan[3].kind, Kind::Single);
    EXPECT_EQ(plan[3].begin, 7u);

    // Every layer is covered exactly once.
    std::size_t covered = 0;
    for (const auto &seg : plan)
        covered += seg.count;
    EXPECT_EQ(covered, stack.size());
}

TEST(Fusion, ChannelMismatchBlocksConvBnFusion)
{
    tbd::util::Rng rng(8);
    std::vector<tl::LayerPtr> stack;
    stack.push_back(
        std::make_unique<tl::Conv2d>("c", 2, 4, 3, 1, 1, rng, true));
    stack.push_back(std::make_unique<tl::BatchNorm2d>("bn", 8));
    const auto plan = te::buildFusionPlan(stack);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].kind, te::FusionSegment::Kind::Single);
}

TEST(Fusion, TrainingStepBitwiseEquivalence)
{
    OverrideGuard guard;
    te::Network net = makeFusableNet(11);
    tt::Tensor x = randomTensor(tt::Shape{2, 2, 6, 6}, 12);
    tt::Tensor dy = randomTensor(tt::Shape{2, 2}, 13);

    te::setFusionEnabled(false);
    const StepResult off = runTrainStep(net, x, dy);
    te::setFusionEnabled(true);
    const StepResult on = runTrainStep(net, x, dy);
    expectSameStep(off, on);
}

TEST(Fusion, InferenceBitwiseEquivalenceIncludingBnFold)
{
    OverrideGuard guard;
    te::Network net = makeFusableNet(14);
    // Advance the BN running statistics off their init so the
    // inference fold has something nontrivial to reproduce.
    tt::Tensor warm = randomTensor(tt::Shape{2, 2, 6, 6}, 15);
    net.forward(warm, true);

    tt::Tensor x = randomTensor(tt::Shape{3, 2, 6, 6}, 16);
    te::setFusionEnabled(false);
    tt::Tensor y_off = net.forward(x, false);
    te::setFusionEnabled(true);
    tt::Tensor y_on = net.forward(x, false);

    ASSERT_EQ(y_off.shape(), y_on.shape());
    EXPECT_EQ(0, std::memcmp(y_off.data(), y_on.data(),
                             static_cast<std::size_t>(y_off.numel()) *
                                 sizeof(float)));
}

TEST(Fusion, TrainingStepBitwiseEquivalenceOnScalarTier)
{
    OverrideGuard guard;
    tt::simd::setSimdEnabled(false);
    te::Network net = makeFusableNet(17);
    tt::Tensor x = randomTensor(tt::Shape{2, 2, 6, 6}, 18);
    tt::Tensor dy = randomTensor(tt::Shape{2, 2}, 19);

    te::setFusionEnabled(false);
    const StepResult off = runTrainStep(net, x, dy);
    te::setFusionEnabled(true);
    const StepResult on = runTrainStep(net, x, dy);
    expectSameStep(off, on);
}

TEST(Fusion, ScalarAndVectorTiersAgreeThroughTrainingStep)
{
    OverrideGuard guard;
    te::Network net = makeFusableNet(20);
    tt::Tensor x = randomTensor(tt::Shape{2, 2, 6, 6}, 21);
    tt::Tensor dy = randomTensor(tt::Shape{2, 2}, 22);

    tt::simd::setSimdEnabled(false);
    const StepResult scalar = runTrainStep(net, x, dy);
    tt::simd::setSimdEnabled(true);
    const StepResult vector = runTrainStep(net, x, dy);
    expectSameStep(scalar, vector);
}
