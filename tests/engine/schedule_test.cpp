#include "engine/schedule.h"

#include <gtest/gtest.h>

#include "engine/optimizer.h"
#include "util/logging.h"

namespace te = tbd::engine;

TEST(Schedule, ConstantIsConstant)
{
    te::ConstantLr lr(0.1f);
    EXPECT_FLOAT_EQ(lr.at(0), 0.1f);
    EXPECT_FLOAT_EQ(lr.at(1000000), 0.1f);
    EXPECT_THROW(te::ConstantLr(0.0f), tbd::util::FatalError);
}

TEST(Schedule, StepDecayDropsAtBoundaries)
{
    // The ImageNet recipe: x0.1 at the epoch-30/60 boundaries.
    te::StepDecayLr lr(0.1f, {300, 600}, 0.1f);
    EXPECT_FLOAT_EQ(lr.at(0), 0.1f);
    EXPECT_FLOAT_EQ(lr.at(299), 0.1f);
    EXPECT_FLOAT_EQ(lr.at(300), 0.01f);
    EXPECT_FLOAT_EQ(lr.at(599), 0.01f);
    EXPECT_NEAR(lr.at(600), 0.001f, 1e-9);
}

TEST(Schedule, StepDecayValidatesInputs)
{
    EXPECT_THROW(te::StepDecayLr(0.1f, {600, 300}),
                 tbd::util::FatalError); // not ascending
    EXPECT_THROW(te::StepDecayLr(0.1f, {10}, 1.5f),
                 tbd::util::FatalError); // factor >= 1
}

TEST(Schedule, WarmupRampsLinearly)
{
    te::WarmupInverseSqrtLr lr(1.0f, 100);
    EXPECT_NEAR(lr.at(0), 0.01f, 1e-6);
    EXPECT_NEAR(lr.at(49), 0.50f, 1e-6);
    EXPECT_NEAR(lr.at(99), 1.0f, 1e-6);
}

TEST(Schedule, InverseSqrtDecayAfterWarmup)
{
    te::WarmupInverseSqrtLr lr(1.0f, 100);
    // At 4x the warmup steps the rate has halved.
    EXPECT_NEAR(lr.at(399), 0.5f, 1e-3);
    EXPECT_GT(lr.at(200), lr.at(400));
}

TEST(Schedule, WarmupPeaksAtBase)
{
    te::WarmupInverseSqrtLr lr(0.05f, 50);
    float peak = 0.0f;
    for (int s = 0; s < 1000; ++s)
        peak = std::max(peak, lr.at(s));
    EXPECT_NEAR(peak, 0.05f, 1e-6);
}

TEST(Schedule, DrivesOptimizerLr)
{
    // Typical usage: refresh the optimizer's lr each step.
    te::StepDecayLr schedule(0.1f, {5});
    te::Sgd opt(schedule.at(0));
    for (int step = 0; step < 10; ++step)
        opt.lr = schedule.at(step);
    EXPECT_FLOAT_EQ(opt.lr, 0.01f);
}
