#include "engine/session.h"

#include <gtest/gtest.h>

#include "layers/activations.h"
#include "layers/dense.h"
#include "layers/loss.h"
#include "util/rng.h"

namespace te = tbd::engine;
namespace tl = tbd::layers;
namespace tt = tbd::tensor;

namespace {

/** XOR-ish binary classification; a 2-layer MLP must solve it. */
struct XorTask
{
    tt::Tensor inputs{tt::Shape{4, 2},
                      std::vector<float>{0, 0, 0, 1, 1, 0, 1, 1}};
    std::vector<std::int64_t> labels{0, 1, 1, 0};
};

} // namespace

TEST(Session, TrainsXorToHighAccuracy)
{
    tbd::util::Rng rng(12);
    te::Network net("xor");
    net.add(std::make_unique<tl::FullyConnected>("fc1", 2, 16, rng));
    net.add(std::make_unique<tl::Activation>("t", tl::ActKind::Tanh));
    net.add(std::make_unique<tl::FullyConnected>("fc2", 16, 2, rng));

    te::Adam opt(0.05f);
    te::Session session(net, opt);
    XorTask task;
    tl::SoftmaxCrossEntropy ce;

    te::StepResult last;
    for (int i = 0; i < 300; ++i) {
        last = session.step(task.inputs, [&](const tt::Tensor &out,
                                             te::StepResult &r) {
            r.loss = ce.forward(out, task.labels);
            r.metric = ce.accuracy();
            return ce.backward();
        });
    }
    EXPECT_EQ(session.iteration(), 300);
    EXPECT_LT(last.loss, 0.05);
    EXPECT_DOUBLE_EQ(last.metric, 1.0);
}

TEST(Session, HistoryRecordsEveryStep)
{
    tbd::util::Rng rng(1);
    te::Network net("n");
    net.add(std::make_unique<tl::FullyConnected>("fc", 2, 2, rng));
    te::Sgd opt(0.01f);
    te::Session session(net, opt);
    XorTask task;
    tl::SoftmaxCrossEntropy ce;
    for (int i = 0; i < 5; ++i) {
        session.step(task.inputs,
                     [&](const tt::Tensor &out, te::StepResult &r) {
                         r.loss = ce.forward(out, task.labels);
                         return ce.backward();
                     });
    }
    ASSERT_EQ(session.history().size(), 5u);
    EXPECT_EQ(session.history()[0].iteration, 1);
    EXPECT_EQ(session.history()[4].iteration, 5);
    EXPECT_GE(session.history()[2].wallSeconds, 0.0);
}

TEST(Session, LossDecreasesOnAverage)
{
    tbd::util::Rng rng(2);
    te::Network net("n");
    net.add(std::make_unique<tl::FullyConnected>("fc1", 2, 8, rng));
    net.add(std::make_unique<tl::Activation>("t", tl::ActKind::Tanh));
    net.add(std::make_unique<tl::FullyConnected>("fc2", 8, 2, rng));
    te::Adam opt(0.03f);
    te::Session session(net, opt);
    XorTask task;
    tl::SoftmaxCrossEntropy ce;
    auto loss_fn = [&](const tt::Tensor &out, te::StepResult &r) {
        r.loss = ce.forward(out, task.labels);
        return ce.backward();
    };
    for (int i = 0; i < 10; ++i)
        session.step(task.inputs, loss_fn);
    const double early = session.recentLoss(10);
    for (int i = 0; i < 150; ++i)
        session.step(task.inputs, loss_fn);
    const double late = session.recentLoss(10);
    EXPECT_LT(late, early);
}

TEST(Session, AttachedScheduleDrivesLearningRate)
{
    tbd::util::Rng rng(3);
    te::Network net("n");
    net.add(std::make_unique<tl::FullyConnected>("fc", 2, 2, rng));
    te::Sgd opt(999.0f); // will be overwritten by the schedule
    te::StepDecayLr schedule(0.1f, {3});
    te::Session session(net, opt);
    session.setSchedule(&schedule);

    XorTask task;
    tl::SoftmaxCrossEntropy ce;
    auto loss_fn = [&](const tt::Tensor &out, te::StepResult &r) {
        r.loss = ce.forward(out, task.labels);
        return ce.backward();
    };
    session.step(task.inputs, loss_fn); // iteration 0
    EXPECT_FLOAT_EQ(opt.lr, 0.1f);
    for (int i = 0; i < 4; ++i)
        session.step(task.inputs, loss_fn);
    EXPECT_FLOAT_EQ(opt.lr, 0.01f); // past the boundary

    session.setSchedule(nullptr);
    opt.lr = 0.5f;
    session.step(task.inputs, loss_fn);
    EXPECT_FLOAT_EQ(opt.lr, 0.5f); // detached: untouched
}
