#include "engine/network.h"

#include <gtest/gtest.h>

#include "layers/activations.h"
#include "layers/dense.h"
#include "util/logging.h"
#include "util/rng.h"

namespace te = tbd::engine;
namespace tl = tbd::layers;
namespace tt = tbd::tensor;

namespace {

te::Network
makeMlp(std::uint64_t seed)
{
    tbd::util::Rng rng(seed);
    te::Network net("mlp");
    net.add(std::make_unique<tl::FullyConnected>("fc1", 4, 8, rng));
    net.add(std::make_unique<tl::Activation>("relu", tl::ActKind::ReLU));
    net.add(std::make_unique<tl::FullyConnected>("fc2", 8, 2, rng));
    return net;
}

} // namespace

TEST(Network, ForwardShape)
{
    te::Network net = makeMlp(1);
    tbd::util::Rng rng(2);
    tt::Tensor x(tt::Shape{5, 4});
    x.fillNormal(rng, 0.0f, 1.0f);
    EXPECT_EQ(net.forward(x, false).shape(), tt::Shape({5, 2}));
}

TEST(Network, ParamAggregation)
{
    te::Network net = makeMlp(1);
    EXPECT_EQ(net.paramCount(), (4 * 8 + 8) + (8 * 2 + 2));
    EXPECT_EQ(net.params().size(), 4u);
    EXPECT_EQ(net.size(), 3u);
}

TEST(Network, ZeroGradsClearsAll)
{
    te::Network net = makeMlp(1);
    tbd::util::Rng rng(3);
    tt::Tensor x(tt::Shape{2, 4});
    x.fillNormal(rng, 0.0f, 1.0f);
    net.forward(x, true);
    tt::Tensor dy(tt::Shape{2, 2}, 1.0f);
    net.backward(dy);
    bool any_nonzero = false;
    for (auto *p : net.params())
        any_nonzero |= p->grad.meanAbs() > 0.0;
    EXPECT_TRUE(any_nonzero);
    net.zeroGrads();
    for (auto *p : net.params())
        EXPECT_EQ(p->grad.meanAbs(), 0.0);
}

TEST(Network, AddRejectsNull)
{
    te::Network net("n");
    EXPECT_THROW(net.add(nullptr), tbd::util::FatalError);
}
