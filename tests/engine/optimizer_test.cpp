#include "engine/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/logging.h"

namespace te = tbd::engine;
namespace tl = tbd::layers;
namespace tt = tbd::tensor;

namespace {

/** A free-standing parameter initialized at x0 with gradient 2x (for
 *  f(x) = x^2) refreshed each step. */
struct Quadratic
{
    tl::Param p;

    explicit Quadratic(float x0)
    {
        p.name = "x";
        p.value = tt::Tensor(tt::Shape{1}, x0);
        p.grad = tt::Tensor(tt::Shape{1});
    }

    void
    refreshGrad()
    {
        p.grad.at(0) = 2.0f * p.value.at(0);
    }
};

template <typename Opt>
float
minimizeQuadratic(Opt &opt, int steps, float x0 = 5.0f)
{
    Quadratic q(x0);
    for (int i = 0; i < steps; ++i) {
        q.refreshGrad();
        opt.step({&q.p});
    }
    return q.p.value.at(0);
}

} // namespace

TEST(Sgd, ConvergesOnQuadratic)
{
    te::Sgd opt(0.1f);
    EXPECT_NEAR(minimizeQuadratic(opt, 100), 0.0f, 1e-4);
}

TEST(Sgd, SingleStepIsExact)
{
    te::Sgd opt(0.1f);
    Quadratic q(5.0f);
    q.refreshGrad();
    opt.step({&q.p});
    EXPECT_FLOAT_EQ(q.p.value.at(0), 5.0f - 0.1f * 10.0f);
}

TEST(Sgd, RejectsNonPositiveLr)
{
    EXPECT_THROW(te::Sgd(-0.1f), tbd::util::FatalError);
}

TEST(SgdMomentum, ConvergesOnQuadratic)
{
    te::SgdMomentum opt(0.05f, 0.9f);
    EXPECT_NEAR(minimizeQuadratic(opt, 200), 0.0f, 1e-3);
}

TEST(SgdMomentum, VelocityAccumulates)
{
    te::SgdMomentum opt(0.1f, 0.9f);
    Quadratic q(1.0f);
    q.refreshGrad();
    opt.step({&q.p});
    const float after_one = q.p.value.at(0);
    // With momentum, the second step moves farther than a plain SGD step
    // would from the same point.
    q.refreshGrad();
    opt.step({&q.p});
    const float delta2 = after_one - q.p.value.at(0);
    const float plain = 0.1f * 2.0f * after_one;
    EXPECT_GT(delta2, plain);
}

TEST(SgdMomentum, SlotCount)
{
    te::SgdMomentum opt(0.1f);
    EXPECT_EQ(opt.slotsPerParam(), 1);
}

TEST(Adam, ConvergesOnQuadratic)
{
    te::Adam opt(0.2f);
    EXPECT_NEAR(minimizeQuadratic(opt, 300), 0.0f, 1e-2);
}

TEST(Adam, FirstStepIsLrSized)
{
    // With bias correction, Adam's first step is ~lr regardless of
    // gradient scale.
    te::Adam opt(0.01f);
    Quadratic q(100.0f);
    q.refreshGrad();
    opt.step({&q.p});
    EXPECT_NEAR(q.p.value.at(0), 100.0f - 0.01f, 1e-4);
}

TEST(Adam, SlotCount)
{
    te::Adam opt(0.1f);
    EXPECT_EQ(opt.slotsPerParam(), 2);
}
