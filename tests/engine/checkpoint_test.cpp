#include "engine/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "layers/activations.h"
#include "layers/dense.h"
#include "util/logging.h"
#include "util/rng.h"

namespace te = tbd::engine;
namespace tl = tbd::layers;
namespace tt = tbd::tensor;

namespace {

te::Network
makeNet(std::uint64_t seed)
{
    tbd::util::Rng rng(seed);
    te::Network net("ckpt-net");
    net.add(std::make_unique<tl::FullyConnected>("fc1", 4, 8, rng));
    net.add(std::make_unique<tl::Activation>("t", tl::ActKind::Tanh));
    net.add(std::make_unique<tl::FullyConnected>("fc2", 8, 3, rng));
    return net;
}

/** Temp file path that cleans itself up. */
struct TempFile
{
    std::string path;

    explicit TempFile(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {
    }

    ~TempFile() { std::remove(path.c_str()); }
};

} // namespace

TEST(Checkpoint, RoundTripRestoresExactWeights)
{
    TempFile file("tbd_roundtrip.ckpt");
    te::Network a = makeNet(1);
    te::saveCheckpoint(a, file.path);

    te::Network b = makeNet(2); // different init
    te::loadCheckpoint(b, file.path);

    auto pa = a.params(), pb = b.params();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
        ASSERT_EQ(pa[i]->value.numel(), pb[i]->value.numel());
        for (std::int64_t j = 0; j < pa[i]->value.numel(); ++j)
            EXPECT_FLOAT_EQ(pa[i]->value.at(j), pb[i]->value.at(j))
                << pa[i]->name;
    }
}

TEST(Checkpoint, RestoredNetworkComputesIdentically)
{
    TempFile file("tbd_identical.ckpt");
    te::Network a = makeNet(3);
    te::saveCheckpoint(a, file.path);
    te::Network b = makeNet(4);
    te::loadCheckpoint(b, file.path);

    tbd::util::Rng rng(5);
    tt::Tensor x(tt::Shape{2, 4});
    x.fillNormal(rng, 0.0f, 1.0f);
    tt::Tensor ya = a.forward(x, false);
    tt::Tensor yb = b.forward(x, false);
    for (std::int64_t i = 0; i < ya.numel(); ++i)
        EXPECT_FLOAT_EQ(ya.at(i), yb.at(i));
}

TEST(Checkpoint, RejectsWrongArchitecture)
{
    TempFile file("tbd_wrongarch.ckpt");
    te::Network a = makeNet(1);
    te::saveCheckpoint(a, file.path);

    tbd::util::Rng rng(6);
    te::Network wrong("other");
    wrong.add(std::make_unique<tl::FullyConnected>("fc1", 4, 8, rng));
    // Parameter count mismatch (only one layer).
    EXPECT_THROW(te::loadCheckpoint(wrong, file.path),
                 tbd::util::FatalError);
}

TEST(Checkpoint, RejectsWrongShape)
{
    TempFile file("tbd_wrongshape.ckpt");
    te::Network a = makeNet(1);
    te::saveCheckpoint(a, file.path);

    tbd::util::Rng rng(7);
    te::Network wrong("ckpt-net");
    wrong.add(std::make_unique<tl::FullyConnected>("fc1", 4, 9, rng));
    wrong.add(std::make_unique<tl::Activation>("t", tl::ActKind::Tanh));
    wrong.add(std::make_unique<tl::FullyConnected>("fc2", 9, 3, rng));
    EXPECT_THROW(te::loadCheckpoint(wrong, file.path),
                 tbd::util::FatalError);
}

TEST(Checkpoint, RejectsGarbageFile)
{
    TempFile file("tbd_garbage.ckpt");
    {
        std::FILE *f = std::fopen(file.path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("not a checkpoint", f);
        std::fclose(f);
    }
    te::Network net = makeNet(1);
    EXPECT_THROW(te::loadCheckpoint(net, file.path),
                 tbd::util::FatalError);
}

TEST(Checkpoint, MissingFileIsFatal)
{
    te::Network net = makeNet(1);
    EXPECT_THROW(te::loadCheckpoint(net, "/nonexistent/dir/x.ckpt"),
                 tbd::util::FatalError);
    EXPECT_THROW(te::saveCheckpoint(net, "/nonexistent/dir/x.ckpt"),
                 tbd::util::FatalError);
}

TEST(Checkpoint, FailedSaveLeavesNoPartialFile)
{
    te::Network net = makeNet(1);
    EXPECT_THROW(te::saveCheckpoint(net, "/nonexistent/dir/x.ckpt"),
                 tbd::util::FatalError);
    EXPECT_FALSE(std::filesystem::exists("/nonexistent/dir/x.ckpt"));
    EXPECT_FALSE(
        std::filesystem::exists("/nonexistent/dir/x.ckpt.tmp"));
}

TEST(Checkpoint, SaveOntoDirectoryIsFatalAndLeavesNoDebris)
{
    // The final rename fails (the target is a directory); the partially
    // written temporary must be cleaned up and the target untouched.
    const std::string dir =
        std::string(::testing::TempDir()) + "tbd_ckpt_target_dir";
    std::filesystem::create_directory(dir);
    te::Network net = makeNet(1);
    EXPECT_THROW(te::saveCheckpoint(net, dir), tbd::util::FatalError);
    EXPECT_FALSE(std::filesystem::exists(dir + ".tmp"));
    EXPECT_TRUE(std::filesystem::is_directory(dir));
    std::filesystem::remove(dir);
}

TEST(Checkpoint, SaveOverwritesExistingCheckpointAtomically)
{
    TempFile file("tbd_overwrite.ckpt");
    te::Network a = makeNet(8);
    te::saveCheckpoint(a, file.path);
    te::Network b = makeNet(9);
    te::saveCheckpoint(b, file.path); // replaces, never truncates
    EXPECT_FALSE(std::filesystem::exists(file.path + ".tmp"));

    te::Network restored = makeNet(10);
    te::loadCheckpoint(restored, file.path);
    auto pb = b.params(), pr = restored.params();
    ASSERT_EQ(pb.size(), pr.size());
    for (std::size_t i = 0; i < pb.size(); ++i)
        for (std::int64_t j = 0; j < pb[i]->value.numel(); ++j)
            EXPECT_FLOAT_EQ(pb[i]->value.at(j), pr[i]->value.at(j));
}
