#include <gtest/gtest.h>

#include "core/suite.h"
#include "obs/obs.h"
#include "perf/simulator.h"

namespace tc = tbd::core;
namespace to = tbd::obs;

namespace {

tbd::perf::RunResult
runOnce()
{
    tbd::perf::RunConfig rc = tc::toRunConfig(tc::BenchmarkRequest{
        "ResNet-50", "MXNet", "Quadro P4000", 16});
    tbd::perf::PerfSimulator sim;
    return sim.run(rc);
}

/** Bitwise equality of every simulated number in a RunResult. */
void
expectIdentical(const tbd::perf::RunResult &a,
                const tbd::perf::RunResult &b)
{
    EXPECT_EQ(a.modelName, b.modelName);
    EXPECT_EQ(a.frameworkName, b.frameworkName);
    EXPECT_EQ(a.gpuName, b.gpuName);
    EXPECT_EQ(a.batch, b.batch);
    EXPECT_EQ(a.iterationUs, b.iterationUs);
    EXPECT_EQ(a.throughputSamples, b.throughputSamples);
    EXPECT_EQ(a.throughputUnits, b.throughputUnits);
    EXPECT_EQ(a.gpuUtilization, b.gpuUtilization);
    EXPECT_EQ(a.fp32Utilization, b.fp32Utilization);
    EXPECT_EQ(a.cpuUtilization, b.cpuUtilization);
    EXPECT_EQ(a.kernelsPerIteration, b.kernelsPerIteration);
    EXPECT_EQ(a.memory.total(), b.memory.total());
    ASSERT_EQ(a.kernelTrace.size(), b.kernelTrace.size());
    for (std::size_t i = 0; i < a.kernelTrace.size(); ++i) {
        EXPECT_EQ(a.kernelTrace[i].startUs, b.kernelTrace[i].startUs);
        EXPECT_EQ(a.kernelTrace[i].durationUs,
                  b.kernelTrace[i].durationUs);
    }
    ASSERT_EQ(a.warmupIterationUs.size(), b.warmupIterationUs.size());
    for (std::size_t i = 0; i < a.warmupIterationUs.size(); ++i)
        EXPECT_EQ(a.warmupIterationUs[i], b.warmupIterationUs[i]);
    ASSERT_EQ(a.sampleIterationUs.size(), b.sampleIterationUs.size());
    for (std::size_t i = 0; i < a.sampleIterationUs.size(); ++i)
        EXPECT_EQ(a.sampleIterationUs[i], b.sampleIterationUs[i]);
}

} // namespace

/**
 * The obs acceptance guarantee: collection is write-only for the
 * simulation, so every simulated number is bitwise identical with
 * tracing on and off.
 */
TEST(ObsDeterminism, RunResultIsBitwiseIdenticalWithObsOnAndOff)
{
    to::setEnabled(false);
    to::resetAll();
    const auto off = runOnce();
    EXPECT_TRUE(to::collectSpans().empty());

    to::setEnabled(true);
    to::resetAll();
    const auto on = runOnce();
    EXPECT_FALSE(to::collectSpans().empty());

    to::resetAll();
    to::setEnabled(false);
    const auto off_again = runOnce();

    expectIdentical(off, on);
    expectIdentical(off, off_again);
}

TEST(ObsDeterminism, SweepResultsIdenticalWithObsOnAndOff)
{
    std::vector<tc::BenchmarkRequest> cells;
    for (std::int64_t batch : {8, 16}) {
        tc::BenchmarkRequest req;
        req.model = "WGAN";
        req.framework = "TensorFlow";
        req.batch = batch;
        cells.push_back(req);
    }

    to::setEnabled(false);
    to::resetAll();
    const auto off = tc::BenchmarkSuite::runSweep(cells);

    to::setEnabled(true);
    to::resetAll();
    const auto on = tc::BenchmarkSuite::runSweep(cells);
    to::resetAll();
    to::setEnabled(false);

    ASSERT_EQ(off.size(), on.size());
    for (std::size_t i = 0; i < off.size(); ++i) {
        ASSERT_EQ(off[i].has_value(), on[i].has_value());
        if (off[i])
            expectIdentical(*off[i], *on[i]);
    }
}
