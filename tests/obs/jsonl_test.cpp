#include "obs/obs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace to = tbd::obs;

namespace {

class JsonlTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        to::setEnabled(true);
        to::resetAll();
    }
    void TearDown() override
    {
        to::resetAll();
        to::setEnabled(false);
    }
};

/** Collect a small but representative trace. */
to::TraceDump
sampleDump()
{
    {
        to::Span outer("outer");
        outer.attr("model", std::string("ResNet-50"));
        outer.attr("batch", std::int64_t{32});
        outer.attr("share", 0.25);
        to::Span inner("inner", outer.id());
        (void)inner;
    }
    to::MetricsRegistry::global().counter("jsonl.count").add(7);
    to::MetricsRegistry::global().gauge("jsonl.gauge").set(1.25);
    auto &h = to::MetricsRegistry::global().histogram("jsonl.hist");
    h.observe(2.0);
    h.observe(8.0);
    return to::dumpTrace();
}

} // namespace

TEST_F(JsonlTest, RoundTripsThroughUtilJson)
{
    const to::TraceDump dump = sampleDump();
    std::ostringstream os;
    to::writeJsonl(dump, os);
    const to::TraceDump back = to::parseJsonl(os.str());

    EXPECT_EQ(back.wallUs, dump.wallUs);
    ASSERT_EQ(back.spans.size(), dump.spans.size());
    for (std::size_t i = 0; i < dump.spans.size(); ++i) {
        EXPECT_EQ(back.spans[i].id, dump.spans[i].id);
        EXPECT_EQ(back.spans[i].parent, dump.spans[i].parent);
        EXPECT_EQ(back.spans[i].name, dump.spans[i].name);
        EXPECT_EQ(back.spans[i].startUs, dump.spans[i].startUs);
        EXPECT_EQ(back.spans[i].durUs, dump.spans[i].durUs);
        ASSERT_EQ(back.spans[i].attrs.size(),
                  dump.spans[i].attrs.size());
    }
    ASSERT_EQ(back.metrics.size(), dump.metrics.size());
    for (std::size_t i = 0; i < dump.metrics.size(); ++i) {
        EXPECT_EQ(back.metrics[i].name, dump.metrics[i].name);
        EXPECT_EQ(back.metrics[i].kind, dump.metrics[i].kind);
        EXPECT_EQ(back.metrics[i].value, dump.metrics[i].value);
        EXPECT_EQ(back.metrics[i].count, dump.metrics[i].count);
        EXPECT_EQ(back.metrics[i].sum, dump.metrics[i].sum);
    }
}

TEST_F(JsonlTest, AttrValuesSurviveTheRoundTrip)
{
    const to::TraceDump dump = sampleDump();
    std::ostringstream os;
    to::writeJsonl(dump, os);
    const to::TraceDump back = to::parseJsonl(os.str());

    const to::SpanRecord *outer = nullptr;
    for (const auto &span : back.spans)
        if (span.name == "outer")
            outer = &span;
    ASSERT_NE(outer, nullptr);
    ASSERT_EQ(outer->attrs.size(), 3u);
    for (const auto &attr : outer->attrs) {
        if (attr.key == "model") {
            EXPECT_EQ(attr.str, "ResNet-50");
        } else if (attr.key == "batch") {
            EXPECT_EQ(attr.intVal, 32);
        } else if (attr.key == "share") {
            EXPECT_EQ(attr.num, 0.25);
        } else {
            ADD_FAILURE() << "unexpected attr " << attr.key;
        }
    }
}

TEST_F(JsonlTest, MalformedLinesReportTheirLineNumber)
{
    try {
        to::parseJsonl("{\"type\":\"meta\",\"wall_us\":1.0}\n"
                       "this is not json\n");
        FAIL() << "expected FatalError";
    } catch (const tbd::util::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(JsonlTest, UnknownRecordTypesAreSkipped)
{
    const to::TraceDump dump = to::parseJsonl(
        "{\"type\":\"meta\",\"wall_us\":10.0}\n"
        "{\"type\":\"future-record\",\"x\":1}\n"
        "{\"type\":\"counter\",\"name\":\"c\",\"value\":3}\n");
    EXPECT_EQ(dump.wallUs, 10.0);
    EXPECT_TRUE(dump.spans.empty());
    ASSERT_EQ(dump.metrics.size(), 1u);
    EXPECT_EQ(dump.metrics[0].value, 3.0);
}

TEST_F(JsonlTest, FlushWritesAtomicallyAndIsReadable)
{
    (void)sampleDump();
    const std::string path = "obs_flush_test.jsonl";
    to::flushToFile(path);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    const to::TraceDump back = to::parseJsonl(buf.str());
    EXPECT_EQ(back.spans.size(), 2u);
    EXPECT_FALSE(back.metrics.empty());
    // No stale temporary left behind.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
    std::remove(path.c_str());
}

TEST_F(JsonlTest, RootSpanCoverageMergesOverlappingRoots)
{
    to::TraceDump dump;
    dump.wallUs = 100.0;
    to::SpanRecord a;
    a.id = 1;
    a.parent = 0;
    a.startUs = 0.0;
    a.durUs = 60.0;
    to::SpanRecord b = a;
    b.id = 2;
    b.startUs = 40.0; // overlaps a on [40, 60)
    b.durUs = 40.0;   // union is [0, 80) of 100
    dump.spans = {a, b};
    EXPECT_NEAR(dump.rootSpanCoverage(), 0.8, 1e-12);

    // Nested spans never count toward root coverage.
    to::SpanRecord child = a;
    child.id = 3;
    child.parent = 1;
    dump.spans.push_back(child);
    EXPECT_NEAR(dump.rootSpanCoverage(), 0.8, 1e-12);
}
