#include "obs/span.h"

#include <gtest/gtest.h>

#include <atomic>

#include "obs/obs.h"
#include "util/thread_pool.h"

namespace to = tbd::obs;

namespace {

class SpanTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        to::setEnabled(true);
        to::resetAll();
    }
    void TearDown() override
    {
        to::resetAll();
        to::setEnabled(false);
    }
};

} // namespace

TEST_F(SpanTest, RecordsNestedSpansWithExplicitParents)
{
    to::SpanId outer_id = 0;
    {
        to::Span outer("outer");
        outer_id = outer.id();
        EXPECT_NE(outer_id, 0u);
        {
            to::Span inner("inner", outer.id());
            (void)inner;
        }
    }
    const auto spans = to::collectSpans();
    ASSERT_EQ(spans.size(), 2u);
    // Sorted by start time: outer first.
    EXPECT_EQ(spans[0].name, "outer");
    EXPECT_EQ(spans[0].parent, 0u);
    EXPECT_EQ(spans[1].name, "inner");
    EXPECT_EQ(spans[1].parent, outer_id);
    EXPECT_GE(spans[0].durUs, spans[1].durUs);
    EXPECT_GE(spans[1].startUs, spans[0].startUs);
}

TEST_F(SpanTest, DisabledSpansCostNothingAndRecordNothing)
{
    to::setEnabled(false);
    {
        to::Span span("invisible");
        EXPECT_EQ(span.id(), 0u);
        span.attr("key", std::int64_t{1});
    }
    EXPECT_TRUE(to::collectSpans().empty());
}

TEST_F(SpanTest, AttrsRoundTripAllKinds)
{
    {
        to::Span span("attrs");
        span.attr("s", std::string("value"));
        span.attr("i", std::int64_t{42});
        span.attr("d", 2.5);
    }
    const auto spans = to::collectSpans();
    ASSERT_EQ(spans.size(), 1u);
    ASSERT_EQ(spans[0].attrs.size(), 3u);
    EXPECT_EQ(spans[0].attrs[0].key, "s");
    EXPECT_EQ(spans[0].attrs[0].str, "value");
    EXPECT_EQ(spans[0].attrs[1].intVal, 42);
    EXPECT_EQ(spans[0].attrs[2].num, 2.5);
}

TEST_F(SpanTest, ParentHandlesSurviveThreadPoolWorkers)
{
    // The explicit-parent design exists exactly for this: spans opened
    // on arbitrary pool workers still attach to the spawning span.
    to::SpanId parent_id = 0;
    {
        to::Span parent("pool.parent");
        parent_id = parent.id();
        tbd::util::parallelFor(
            0, 16, 1, [&](std::int64_t begin, std::int64_t end) {
                for (std::int64_t i = begin; i < end; ++i) {
                    to::Span child("pool.child", parent_id);
                    child.attr("index", i);
                }
            });
    }
    const auto spans = to::collectSpans();
    ASSERT_EQ(spans.size(), 17u);
    int children = 0;
    for (const auto &span : spans) {
        if (span.name == "pool.child") {
            ++children;
            EXPECT_EQ(span.parent, parent_id);
        }
    }
    EXPECT_EQ(children, 16);
}

TEST_F(SpanTest, ResetClearsAllBuffers)
{
    {
        to::Span span("gone");
        (void)span;
    }
    EXPECT_EQ(to::collectSpans().size(), 1u);
    to::resetSpans();
    EXPECT_TRUE(to::collectSpans().empty());
}
