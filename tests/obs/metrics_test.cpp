#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/obs.h"

namespace to = tbd::obs;

namespace {

/** Fresh registry state for every test. */
class MetricsTest : public ::testing::Test
{
  protected:
    void SetUp() override { to::resetAll(); }
    void TearDown() override { to::resetAll(); }
};

} // namespace

TEST_F(MetricsTest, CounterAddsAndSnapshots)
{
    auto &c = to::MetricsRegistry::global().counter("test.counter");
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42);

    const auto snap = to::MetricsRegistry::global().snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].name, "test.counter");
    EXPECT_EQ(snap[0].kind, to::MetricSnapshot::Kind::Counter);
    EXPECT_EQ(snap[0].value, 42.0);
}

TEST_F(MetricsTest, FindOrCreateReturnsSameInstance)
{
    auto &a = to::MetricsRegistry::global().counter("test.same");
    auto &b = to::MetricsRegistry::global().counter("test.same");
    EXPECT_EQ(&a, &b);
    a.add(7);
    EXPECT_EQ(b.value(), 7);
}

TEST_F(MetricsTest, GaugeKeepsLastValue)
{
    auto &g = to::MetricsRegistry::global().gauge("test.gauge");
    g.set(1.5);
    g.set(2.5);
    EXPECT_EQ(g.value(), 2.5);
}

TEST_F(MetricsTest, HistogramTracksExtremesAndQuantiles)
{
    auto &h = to::MetricsRegistry::global().histogram("test.hist");
    for (int i = 1; i <= 100; ++i)
        h.observe(static_cast<double>(i));
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.sum(), 5050.0);
    EXPECT_EQ(h.min(), 1.0);
    EXPECT_EQ(h.max(), 100.0);
    // Power-of-two buckets: quantiles are approximate but ordered and
    // inside the observed range.
    const double p50 = h.quantile(0.50);
    const double p95 = h.quantile(0.95);
    EXPECT_GE(p50, 1.0);
    EXPECT_LE(p95, 100.0);
    EXPECT_LE(p50, p95);
}

TEST_F(MetricsTest, EmptyHistogramIsAllZero)
{
    auto &h = to::MetricsRegistry::global().histogram("test.empty");
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST_F(MetricsTest, SnapshotIsSortedByName)
{
    to::MetricsRegistry::global().counter("test.b");
    to::MetricsRegistry::global().counter("test.a");
    to::MetricsRegistry::global().gauge("test.c");
    const auto snap = to::MetricsRegistry::global().snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "test.a");
    EXPECT_EQ(snap[1].name, "test.b");
    EXPECT_EQ(snap[2].name, "test.c");
}

TEST_F(MetricsTest, ConcurrentCounterAddsAreLossless)
{
    auto &c = to::MetricsRegistry::global().counter("test.mt");
    auto &h = to::MetricsRegistry::global().histogram("test.mt.h");
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) {
                c.add();
                h.observe(1.0);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
    EXPECT_EQ(h.count(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(h.sum(), static_cast<double>(kThreads * kPerThread));
}
