#include "frameworks/framework.h"

#include <gtest/gtest.h>

namespace tf = tbd::frameworks;

TEST(Frameworks, ThreePresetsRegistered)
{
    EXPECT_EQ(tf::allFrameworks().size(), 3u);
}

TEST(Frameworks, LookupRoundTrips)
{
    for (auto id : tf::allFrameworks()) {
        const auto &p = tf::profileFor(id);
        EXPECT_EQ(p.id, id);
        EXPECT_EQ(p.name, tf::frameworkName(id));
    }
}

TEST(Frameworks, MxnetLeadsOnConvEfficiency)
{
    // Observation 3 ingredient: MXNet beats TF on CNNs in Fig. 4a/4b.
    EXPECT_GT(tf::mxnet().convEff, tf::tensorflow().convEff);
}

TEST(Frameworks, TfLeadsOnRnnSmallGemms)
{
    // ...while TF beats Sockeye/MXNet on Seq2Seq (Fig. 4c).
    EXPECT_GT(tf::tensorflow().smallGemmEff, tf::mxnet().smallGemmEff);
    EXPECT_TRUE(tf::tensorflow().fusesElementwise);
    EXPECT_FALSE(tf::mxnet().fusesElementwise);
}

TEST(Frameworks, TfPacksRnnMemoryTighter)
{
    // TF trains NMT at batch 128 on 8 GiB where Sockeye stops at 64.
    EXPECT_LT(tf::tensorflow().rnnActivationFactor,
              tf::mxnet().rnnActivationFactor);
    EXPECT_LT(tf::tensorflow().allocatorSlack, tf::mxnet().allocatorSlack);
}

TEST(Frameworks, CntkHasNegligibleHostFootprint)
{
    // Fig. 7: CNTK CPU utilization is 0.05-0.08%.
    EXPECT_LT(tf::cntk().dataPipelineFactor, 0.05);
    EXPECT_LT(tf::cntk().frontendUsPerOp, tf::tensorflow().frontendUsPerOp);
}

TEST(Frameworks, OnlyMxnetUsesDynamicOptimizerState)
{
    // The paper's "dynamic" memory category exists because MXNet
    // allocates momentum buffers during training iterations.
    EXPECT_TRUE(tf::mxnet().dynamicOptimizerState);
    EXPECT_FALSE(tf::tensorflow().dynamicOptimizerState);
    EXPECT_FALSE(tf::cntk().dynamicOptimizerState);
}

TEST(Frameworks, KernelNamingIsFrameworkFlavored)
{
    // Tables 5 and 6 surface framework-specific kernel names.
    EXPECT_NE(tf::tensorflow().elementwiseKernel.find("Eigen"),
              std::string::npos);
    EXPECT_NE(tf::mxnet().elementwiseKernel.find("mxnet"),
              std::string::npos);
    EXPECT_NE(tf::tensorflow().gemmKernel.find("magma"),
              std::string::npos);
}
