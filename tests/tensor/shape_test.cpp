#include "tensor/shape.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace tt = tbd::tensor;

TEST(Shape, NumelAndRank)
{
    tt::Shape s{2, 3, 4};
    EXPECT_EQ(s.rank(), 3u);
    EXPECT_EQ(s.numel(), 24);
}

TEST(Shape, ScalarShape)
{
    tt::Shape s;
    EXPECT_EQ(s.rank(), 0u);
    EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, NegativeIndexing)
{
    tt::Shape s{2, 3, 4};
    EXPECT_EQ(s.dim(-1), 4);
    EXPECT_EQ(s.dim(-3), 2);
}

TEST(Shape, OutOfRangeThrows)
{
    tt::Shape s{2, 3};
    EXPECT_THROW(s.dim(2), tbd::util::FatalError);
    EXPECT_THROW(s.dim(-3), tbd::util::FatalError);
}

TEST(Shape, RejectsNonPositiveDims)
{
    EXPECT_THROW(tt::Shape({2, 0}), tbd::util::FatalError);
    EXPECT_THROW(tt::Shape({-1}), tbd::util::FatalError);
}

TEST(Shape, WithDimReplaces)
{
    tt::Shape s{8, 3, 224, 224};
    tt::Shape t = s.withDim(0, 32);
    EXPECT_EQ(t.dim(0), 32);
    EXPECT_EQ(t.dim(1), 3);
    EXPECT_EQ(s.dim(0), 8); // original untouched
}

TEST(Shape, Equality)
{
    EXPECT_EQ(tt::Shape({2, 3}), tt::Shape({2, 3}));
    EXPECT_NE(tt::Shape({2, 3}), tt::Shape({3, 2}));
}

TEST(Shape, ToString)
{
    EXPECT_EQ(tt::Shape({1, 2, 3}).toString(), "[1, 2, 3]");
}
