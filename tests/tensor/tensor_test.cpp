#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/rng.h"

namespace tt = tbd::tensor;

TEST(Tensor, ZeroInitialized)
{
    tt::Tensor t(tt::Shape{2, 3});
    for (std::int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t.at(i), 0.0f);
}

TEST(Tensor, FillConstructor)
{
    tt::Tensor t(tt::Shape{4}, 2.5f);
    EXPECT_EQ(t.at(3), 2.5f);
}

TEST(Tensor, DataVectorSizeChecked)
{
    EXPECT_THROW(tt::Tensor(tt::Shape{3}, std::vector<float>{1.0f}),
                 tbd::util::FatalError);
}

TEST(Tensor, CopySharesStorageCloneDoesNot)
{
    tt::Tensor a(tt::Shape{2}, 1.0f);
    tt::Tensor b = a;         // shares
    tt::Tensor c = a.clone(); // deep copy
    a.at(0) = 9.0f;
    EXPECT_EQ(b.at(0), 9.0f);
    EXPECT_EQ(c.at(0), 1.0f);
}

TEST(Tensor, ReshapePreservesDataAndChecksNumel)
{
    tt::Tensor a(tt::Shape{2, 3});
    a.at(5) = 7.0f;
    tt::Tensor b = a.reshaped(tt::Shape{3, 2});
    EXPECT_EQ(b.at2(2, 1), 7.0f);
    EXPECT_THROW(a.reshaped(tt::Shape{4}), tbd::util::FatalError);
}

TEST(Tensor, At4Indexing)
{
    tt::Tensor t(tt::Shape{2, 3, 4, 5});
    t.at4(1, 2, 3, 4) = 42.0f;
    EXPECT_EQ(t.at(t.numel() - 1), 42.0f);
}

TEST(Tensor, AddScaledAndScale)
{
    tt::Tensor a(tt::Shape{3}, 1.0f);
    tt::Tensor b(tt::Shape{3}, 2.0f);
    a.addScaled(b, 0.5f);
    EXPECT_FLOAT_EQ(a.at(0), 2.0f);
    a.scale(2.0f);
    EXPECT_FLOAT_EQ(a.at(2), 4.0f);
}

TEST(Tensor, AddScaledShapeMismatchThrows)
{
    tt::Tensor a(tt::Shape{3});
    tt::Tensor b(tt::Shape{4});
    EXPECT_THROW(a.addScaled(b, 1.0f), tbd::util::FatalError);
}

TEST(Tensor, SumAndMeanAbs)
{
    tt::Tensor t(tt::Shape{2}, -3.0f);
    EXPECT_DOUBLE_EQ(t.sum(), -6.0);
    EXPECT_DOUBLE_EQ(t.meanAbs(), 3.0);
}

TEST(Tensor, FillNormalStatistics)
{
    tbd::util::Rng rng(1);
    tt::Tensor t(tt::Shape{100000});
    t.fillNormal(rng, 1.0f, 2.0f);
    EXPECT_NEAR(t.sum() / t.numel(), 1.0, 0.05);
}

TEST(Tensor, UndefinedTensorThrowsOnUse)
{
    tt::Tensor t;
    EXPECT_FALSE(t.defined());
    EXPECT_THROW(t.fill(1.0f), tbd::util::FatalError);
}
