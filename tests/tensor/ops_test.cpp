#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace tt = tbd::tensor;

namespace {

tt::Tensor
randomTensor(tt::Shape shape, std::uint64_t seed)
{
    tbd::util::Rng rng(seed);
    tt::Tensor t(std::move(shape));
    t.fillNormal(rng, 0.0f, 1.0f);
    return t;
}

} // namespace

TEST(Ops, MatmulIdentity)
{
    tt::Tensor a = randomTensor(tt::Shape{3, 3}, 1);
    tt::Tensor eye(tt::Shape{3, 3});
    for (int i = 0; i < 3; ++i)
        eye.at2(i, i) = 1.0f;
    tt::Tensor c = tt::matmul(a, eye);
    for (std::int64_t i = 0; i < a.numel(); ++i)
        EXPECT_FLOAT_EQ(c.at(i), a.at(i));
}

TEST(Ops, MatmulKnownValues)
{
    tt::Tensor a(tt::Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
    tt::Tensor b(tt::Shape{2, 2}, std::vector<float>{5, 6, 7, 8});
    tt::Tensor c = tt::matmul(a, b);
    EXPECT_FLOAT_EQ(c.at2(0, 0), 19.0f);
    EXPECT_FLOAT_EQ(c.at2(0, 1), 22.0f);
    EXPECT_FLOAT_EQ(c.at2(1, 0), 43.0f);
    EXPECT_FLOAT_EQ(c.at2(1, 1), 50.0f);
}

TEST(Ops, MatmulDimChecks)
{
    tt::Tensor a(tt::Shape{2, 3});
    tt::Tensor b(tt::Shape{4, 2});
    EXPECT_THROW(tt::matmul(a, b), tbd::util::FatalError);
}

TEST(Ops, MatmulTNMatchesExplicitTranspose)
{
    tt::Tensor a = randomTensor(tt::Shape{5, 3}, 2);
    tt::Tensor b = randomTensor(tt::Shape{5, 4}, 3);
    tt::Tensor viaTN = tt::matmulTN(a, b);
    tt::Tensor expl = tt::matmul(tt::transpose2d(a), b);
    for (std::int64_t i = 0; i < viaTN.numel(); ++i)
        EXPECT_NEAR(viaTN.at(i), expl.at(i), 1e-4);
}

TEST(Ops, MatmulNTMatchesExplicitTranspose)
{
    tt::Tensor a = randomTensor(tt::Shape{5, 3}, 4);
    tt::Tensor b = randomTensor(tt::Shape{6, 3}, 5);
    tt::Tensor viaNT = tt::matmulNT(a, b);
    tt::Tensor expl = tt::matmul(a, tt::transpose2d(b));
    for (std::int64_t i = 0; i < viaNT.numel(); ++i)
        EXPECT_NEAR(viaNT.at(i), expl.at(i), 1e-4);
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    tt::Tensor x = randomTensor(tt::Shape{4, 7}, 6);
    tt::Tensor y = tt::softmaxRows(x);
    for (std::int64_t r = 0; r < 4; ++r) {
        double s = 0.0;
        for (std::int64_t c = 0; c < 7; ++c) {
            EXPECT_GT(y.at2(r, c), 0.0f);
            s += y.at2(r, c);
        }
        EXPECT_NEAR(s, 1.0, 1e-5);
    }
}

TEST(Ops, SoftmaxNumericallyStableWithLargeLogits)
{
    tt::Tensor x(tt::Shape{1, 3}, std::vector<float>{1000.0f, 1000.0f,
                                                     999.0f});
    tt::Tensor y = tt::softmaxRows(x);
    EXPECT_FALSE(std::isnan(y.at(0)));
    EXPECT_NEAR(y.at(0), y.at(1), 1e-6);
}

TEST(Ops, AddRowBiasAndSumRows)
{
    tt::Tensor x(tt::Shape{2, 3});
    tt::Tensor b(tt::Shape{3}, std::vector<float>{1, 2, 3});
    tt::addRowBias(x, b);
    EXPECT_FLOAT_EQ(x.at2(1, 2), 3.0f);
    tt::Tensor s = tt::sumRows(x);
    EXPECT_FLOAT_EQ(s.at(0), 2.0f);
    EXPECT_FLOAT_EQ(s.at(2), 6.0f);
}

TEST(Ops, Conv2dGeomOutputDims)
{
    // ResNet-50 stem: 224x224, k7 s2 p3 -> 112x112.
    tt::Conv2dGeom g{3, 224, 224, 64, 7, 7, 2, 2, 3, 3};
    EXPECT_EQ(g.outH(), 112);
    EXPECT_EQ(g.outW(), 112);
}

TEST(Ops, Im2ColKnownPattern)
{
    // 1x1x3x3 input, 2x2 kernel, stride 1, no pad -> 4 patches of 4.
    tt::Tensor x(tt::Shape{1, 1, 3, 3},
                 std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9});
    tt::Conv2dGeom g{1, 3, 3, 1, 2, 2, 1, 1, 0, 0};
    tt::Tensor cols = tt::im2col(x, g);
    ASSERT_EQ(cols.shape(), tt::Shape({4, 4}));
    EXPECT_FLOAT_EQ(cols.at2(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(cols.at2(0, 3), 5.0f);
    EXPECT_FLOAT_EQ(cols.at2(3, 0), 5.0f);
    EXPECT_FLOAT_EQ(cols.at2(3, 3), 9.0f);
}

TEST(Ops, Im2ColZeroPadsBorders)
{
    tt::Tensor x(tt::Shape{1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
    tt::Conv2dGeom g{1, 2, 2, 1, 3, 3, 1, 1, 1, 1};
    tt::Tensor cols = tt::im2col(x, g);
    // First output position (top-left): top-left 2x2 of the kernel
    // window falls on padding.
    EXPECT_FLOAT_EQ(cols.at2(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(cols.at2(0, 4), 1.0f); // center = x(0,0)
}

TEST(Ops, Col2ImRoundTripCountsOverlaps)
{
    // col2im(im2col(x)) multiplies each pixel by its patch multiplicity.
    tt::Tensor x(tt::Shape{1, 1, 3, 3}, 1.0f);
    tt::Conv2dGeom g{1, 3, 3, 1, 2, 2, 1, 1, 0, 0};
    tt::Tensor cols = tt::im2col(x, g);
    tt::Tensor back = tt::col2im(cols, 1, g);
    EXPECT_FLOAT_EQ(back.at4(0, 0, 0, 0), 1.0f); // corner in 1 patch
    EXPECT_FLOAT_EQ(back.at4(0, 0, 1, 1), 4.0f); // center in 4 patches
}

TEST(Ops, MaxPoolSelectsMaxAndRoutesGradient)
{
    tt::Tensor x(tt::Shape{1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
    tt::Conv2dGeom g{1, 2, 2, 1, 2, 2, 2, 2, 0, 0};
    auto res = tt::maxPool2d(x, g);
    ASSERT_EQ(res.output.numel(), 1);
    EXPECT_FLOAT_EQ(res.output.at(0), 5.0f);

    tt::Tensor dy(tt::Shape{1, 1, 1, 1}, 2.0f);
    tt::Tensor dx = tt::maxPool2dBackward(dy, res, x.shape());
    EXPECT_FLOAT_EQ(dx.at(0), 0.0f);
    EXPECT_FLOAT_EQ(dx.at(1), 2.0f);
}

TEST(Ops, AvgPoolAveragesAndSpreadsGradient)
{
    tt::Tensor x(tt::Shape{1, 1, 2, 2}, std::vector<float>{1, 5, 3, 3});
    tt::Conv2dGeom g{1, 2, 2, 1, 2, 2, 2, 2, 0, 0};
    tt::Tensor y = tt::avgPool2d(x, g);
    EXPECT_FLOAT_EQ(y.at(0), 3.0f);

    tt::Tensor dy(tt::Shape{1, 1, 1, 1}, 4.0f);
    tt::Tensor dx = tt::avgPool2dBackward(dy, x.shape(), g);
    for (std::int64_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(dx.at(i), 1.0f);
}

TEST(Ops, ConcatSplitRoundTrip)
{
    tt::Tensor a = randomTensor(tt::Shape{2, 3, 2, 2}, 7);
    tt::Tensor b = randomTensor(tt::Shape{2, 5, 2, 2}, 8);
    tt::Tensor cat = tt::concatAxis1({a, b});
    ASSERT_EQ(cat.shape(), tt::Shape({2, 8, 2, 2}));
    auto parts = tt::splitAxis1(cat, {3, 5});
    for (std::int64_t i = 0; i < a.numel(); ++i)
        EXPECT_FLOAT_EQ(parts[0].at(i), a.at(i));
    for (std::int64_t i = 0; i < b.numel(); ++i)
        EXPECT_FLOAT_EQ(parts[1].at(i), b.at(i));
}

TEST(Ops, SplitSizesMustCoverAxis)
{
    tt::Tensor x(tt::Shape{1, 4, 1, 1});
    EXPECT_THROW(tt::splitAxis1(x, {1, 2}), tbd::util::FatalError);
}

TEST(Ops, MapAndZip)
{
    tt::Tensor x(tt::Shape{3}, std::vector<float>{-1, 0, 2});
    tt::Tensor y = tt::map(x, [](float v) { return v * v; });
    EXPECT_FLOAT_EQ(y.at(0), 1.0f);
    EXPECT_FLOAT_EQ(y.at(2), 4.0f);
    tt::Tensor z = tt::zip(x, y, [](float a, float b) { return a + b; });
    EXPECT_FLOAT_EQ(z.at(0), 0.0f);
    EXPECT_FLOAT_EQ(z.at(2), 6.0f);
}
