/**
 * @file
 * SIMD-vs-scalar A/B tests: every microkernel in tensor/kernels.h must
 * produce *bitwise identical* results from the scalar oracle and the
 * compiled vector tier, across odd sizes, tails shorter than one
 * vector, and unaligned pointers. On hosts (or builds) without a
 * vector tier, vectorOps() aliases scalarOps() and the comparisons
 * pass trivially.
 */

#include "tensor/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "tensor/ops.h"
#include "tensor/simd.h"
#include "util/rng.h"

namespace tk = tbd::tensor::kern;
namespace ts = tbd::tensor::simd;
namespace tt = tbd::tensor;

namespace {

/** Sizes that hit full vectors, masked tails, and sub-vector runs. */
const std::int64_t kSizes[] = {1, 3, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100};

std::vector<float>
randomVec(std::int64_t n, std::uint64_t seed)
{
    tbd::util::Rng rng(seed);
    std::vector<float> v(static_cast<std::size_t>(n));
    for (float &x : v)
        x = static_cast<float>(rng.normal(0.0, 1.0));
    return v;
}

std::uint32_t
bits(float v)
{
    std::uint32_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

void
expectBitwiseEq(const std::vector<float> &a, const std::vector<float> &b,
                const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(bits(a[i]), bits(b[i]))
            << what << " diverges at [" << i << "]: " << a[i]
            << " (scalar) vs " << b[i] << " (vector)";
}

} // namespace

TEST(SimdKernels, GemmNNBitwise)
{
    const auto &s = tk::scalarOps();
    const auto &v = tk::vectorOps();
    for (std::int64_t rows : {1, 2, 5, 6, 7, 13}) {
        for (std::int64_t N : {1, 3, 8, 16, 17, 33}) {
            for (std::int64_t K : {1, 4, 9, 32}) {
                auto a = randomVec(rows * K, 1);
                auto b = randomVec(K * N, 2);
                auto c0 = randomVec(rows * N, 3);
                auto c1 = c0;
                s.gemmNN(c0.data(), a.data(), b.data(), rows, N, K);
                v.gemmNN(c1.data(), a.data(), b.data(), rows, N, K);
                expectBitwiseEq(c0, c1, "gemmNN");
            }
        }
    }
}

TEST(SimdKernels, GemmTNBitwise)
{
    const auto &s = tk::scalarOps();
    const auto &v = tk::vectorOps();
    const std::int64_t M = 11, lda = 23;
    auto a = randomVec(M * lda, 4);
    for (std::int64_t rows : {1, 3, 4, 5, 9}) {
        for (std::int64_t rowOff : {0, 7}) {
            for (std::int64_t N : {1, 8, 17, 33}) {
                auto b = randomVec(M * N, 5);
                auto c0 = randomVec(rows * N, 6);
                auto c1 = c0;
                s.gemmTN(c0.data(), a.data(), b.data(), rows, rowOff, lda,
                         M, N);
                v.gemmTN(c1.data(), a.data(), b.data(), rows, rowOff, lda,
                         M, N);
                expectBitwiseEq(c0, c1, "gemmTN");
            }
        }
    }
}

TEST(SimdKernels, GemmNTBitwise)
{
    const auto &s = tk::scalarOps();
    const auto &v = tk::vectorOps();
    for (std::int64_t rows : {1, 2, 3, 7}) {
        for (std::int64_t N : {1, 7, 8, 9, 31, 33}) {
            for (std::int64_t Kb : {1, 3, 4, 5, 12}) {
                auto a = randomVec(rows * N, 7);
                auto b = randomVec(Kb * N, 8);
                std::vector<float> c0(static_cast<std::size_t>(rows * Kb)),
                    c1 = c0;
                s.gemmNT(c0.data(), a.data(), b.data(), rows, N, Kb, Kb);
                v.gemmNT(c1.data(), a.data(), b.data(), rows, N, Kb, Kb);
                expectBitwiseEq(c0, c1, "gemmNT");
            }
        }
    }
}

TEST(SimdKernels, ElementwiseBitwise)
{
    const auto &s = tk::scalarOps();
    const auto &v = tk::vectorOps();
    for (std::int64_t n : kSizes) {
        auto x = randomVec(n, 9);
        auto y = randomVec(n, 10);

        auto d0 = x, d1 = x;
        s.axpy(d0.data(), y.data(), 0.37f, n);
        v.axpy(d1.data(), y.data(), 0.37f, n);
        expectBitwiseEq(d0, d1, "axpy");

        d0 = x;
        d1 = x;
        s.scale(d0.data(), -1.73f, n);
        v.scale(d1.data(), -1.73f, n);
        expectBitwiseEq(d0, d1, "scale");

        const float dot0 = s.dot(x.data(), y.data(), n);
        const float dot1 = v.dot(x.data(), y.data(), n);
        ASSERT_EQ(bits(dot0), bits(dot1)) << "dot n=" << n;
    }
}

TEST(SimdKernels, RowPanelsBitwise)
{
    const auto &s = tk::scalarOps();
    const auto &v = tk::vectorOps();
    for (std::int64_t n : {1, 7, 8, 17, 33}) {
        for (std::int64_t rows : {1, 3, 10}) {
            auto x = randomVec(rows * n, 11);
            auto bias = randomVec(n, 12);

            auto d0 = x, d1 = x;
            s.addRowBias(d0.data(), bias.data(), rows, n);
            v.addRowBias(d1.data(), bias.data(), rows, n);
            expectBitwiseEq(d0, d1, "addRowBias");

            auto a0 = randomVec(n, 13), a1 = a0;
            s.sumRowsAcc(a0.data(), x.data(), rows, n);
            v.sumRowsAcc(a1.data(), x.data(), rows, n);
            expectBitwiseEq(a0, a1, "sumRowsAcc");

            for (tk::Act act :
                 {tk::Act::None, tk::Act::Relu, tk::Act::LeakyRelu,
                  tk::Act::Sigmoid, tk::Act::Tanh}) {
                d0 = x;
                d1 = x;
                s.biasAct(d0.data(), x.data(), bias.data(), rows, n, act,
                          0.01f);
                v.biasAct(d1.data(), x.data(), bias.data(), rows, n, act,
                          0.01f);
                expectBitwiseEq(d0, d1, "biasAct");
            }
        }
    }
}

TEST(SimdKernels, ActivationsBitwise)
{
    const auto &s = tk::scalarOps();
    const auto &v = tk::vectorOps();
    for (std::int64_t n : kSizes) {
        auto x = randomVec(n, 14);
        auto dy = randomVec(n, 15);
        for (tk::Act act : {tk::Act::None, tk::Act::Relu, tk::Act::LeakyRelu,
                            tk::Act::Sigmoid, tk::Act::Tanh}) {
            std::vector<float> y0(static_cast<std::size_t>(n)), y1 = y0;
            s.actForward(y0.data(), x.data(), n, act, 0.01f);
            v.actForward(y1.data(), x.data(), n, act, 0.01f);
            expectBitwiseEq(y0, y1, "actForward");

            std::vector<float> g0(static_cast<std::size_t>(n)), g1 = g0;
            s.actBackward(g0.data(), dy.data(), y0.data(), n, act, 0.01f);
            v.actBackward(g1.data(), dy.data(), y0.data(), n, act, 0.01f);
            expectBitwiseEq(g0, g1, "actBackward");
        }
    }
}

TEST(SimdKernels, BatchNormBitwise)
{
    const auto &s = tk::scalarOps();
    const auto &v = tk::vectorOps();
    for (std::int64_t n : kSizes) {
        auto x = randomVec(n, 16);
        auto dy = randomVec(n, 17);

        double s0, q0, s1, q1;
        s.sumSq(x.data(), n, s0, q0);
        v.sumSq(x.data(), n, s1, q1);
        ASSERT_EQ(s0, s1) << "sumSq sum n=" << n;
        ASSERT_EQ(q0, q1) << "sumSq sumsq n=" << n;

        for (tk::Act act : {tk::Act::None, tk::Act::Relu, tk::Act::Tanh}) {
            std::vector<float> y0(static_cast<std::size_t>(n)), y1 = y0;
            std::vector<float> h0(static_cast<std::size_t>(n)), h1 = h0;
            s.bnApply(y0.data(), h0.data(), x.data(), n, 0.13f, 1.7f, 0.9f,
                      -0.2f, act, 0.01f);
            v.bnApply(y1.data(), h1.data(), x.data(), n, 0.13f, 1.7f, 0.9f,
                      -0.2f, act, 0.01f);
            expectBitwiseEq(y0, y1, "bnApply y");
            expectBitwiseEq(h0, h1, "bnApply xhat");

            double ds0, dd0, ds1, dd1;
            s.bnBackwardReduce(dy.data(), h0.data(), n, ds0, dd0);
            v.bnBackwardReduce(dy.data(), h0.data(), n, ds1, dd1);
            ASSERT_EQ(ds0, ds1) << "bnBackwardReduce dsum";
            ASSERT_EQ(dd0, dd1) << "bnBackwardReduce ddot";

            std::vector<float> dx0(static_cast<std::size_t>(n)), dx1 = dx0;
            s.bnBackwardApply(dx0.data(), dy.data(), h0.data(), n, 1.3f,
                              0.02f, -0.04f);
            v.bnBackwardApply(dx1.data(), dy.data(), h0.data(), n, 1.3f,
                              0.02f, -0.04f);
            expectBitwiseEq(dx0, dx1, "bnBackwardApply");
        }
    }
}

TEST(SimdKernels, PoolRowsBitwise)
{
    const auto &s = tk::scalarOps();
    const auto &v = tk::vectorOps();
    for (std::int64_t ow : {1, 3, 8, 9, 17, 30}) {
        for (std::int64_t k : {1, 2, 3}) {
            for (std::int64_t strideW : {1, 2}) {
                const std::int64_t inW = (ow - 1) * strideW + k;
                auto in = randomVec(k * inW, 18 + ow);
                tk::PoolRow row{in.data(), inW, ow, k, k, strideW};

                std::vector<float> o0(static_cast<std::size_t>(ow)),
                    o1 = o0;
                std::vector<std::int64_t> m0(static_cast<std::size_t>(ow)),
                    m1 = m0;
                s.maxPoolRow(o0.data(), m0.data(), 1000, row);
                v.maxPoolRow(o1.data(), m1.data(), 1000, row);
                expectBitwiseEq(o0, o1, "maxPoolRow out");
                ASSERT_EQ(m0, m1) << "maxPoolRow argmax";

                const float inv = 1.0f / static_cast<float>(k * k);
                s.avgPoolRow(o0.data(), inv, row);
                v.avgPoolRow(o1.data(), inv, row);
                expectBitwiseEq(o0, o1, "avgPoolRow");
            }
        }
    }
}

TEST(SimdKernels, MaxPoolAllInfWindowMatchesGenericConvention)
{
    const auto &s = tk::scalarOps();
    const auto &v = tk::vectorOps();
    const std::int64_t ow = 9, k = 2, inW = ow + k - 1;
    std::vector<float> in(static_cast<std::size_t>(k * inW),
                          -std::numeric_limits<float>::infinity());
    tk::PoolRow row{in.data(), inW, ow, k, k, 1};
    std::vector<float> o0(static_cast<std::size_t>(ow), 42.0f), o1 = o0;
    std::vector<std::int64_t> m0(static_cast<std::size_t>(ow), 7), m1 = m0;
    s.maxPoolRow(o0.data(), m0.data(), 0, row);
    v.maxPoolRow(o1.data(), m1.data(), 0, row);
    for (std::int64_t i = 0; i < ow; ++i) {
        EXPECT_EQ(o0[static_cast<std::size_t>(i)], 0.0f);
        EXPECT_EQ(m0[static_cast<std::size_t>(i)], -1);
    }
    expectBitwiseEq(o0, o1, "maxPoolRow all -inf out");
    ASSERT_EQ(m0, m1);
}

TEST(SimdKernels, UnalignedPointersBitwise)
{
    const auto &s = tk::scalarOps();
    const auto &v = tk::vectorOps();
    // Shift every operand one float off any natural alignment.
    const std::int64_t n = 67;
    auto xa = randomVec(n + 1, 30);
    auto ya = randomVec(n + 1, 31);
    const float *x = xa.data() + 1;
    const float *y = ya.data() + 1;

    std::vector<float> d0a(static_cast<std::size_t>(n + 1), 0.5f),
        d1a = d0a;
    s.axpy(d0a.data() + 1, y, 2.5f, n);
    v.axpy(d1a.data() + 1, y, 2.5f, n);
    expectBitwiseEq(d0a, d1a, "axpy unaligned");

    ASSERT_EQ(bits(s.dot(x, y, n)), bits(v.dot(x, y, n)))
        << "dot unaligned";

    std::vector<float> y0(static_cast<std::size_t>(n + 1)), y1 = y0;
    s.actForward(y0.data() + 1, x, n, tk::Act::LeakyRelu, 0.2f);
    v.actForward(y1.data() + 1, x, n, tk::Act::LeakyRelu, 0.2f);
    expectBitwiseEq(y0, y1, "actForward unaligned");
}

TEST(SimdKernels, DispatchLevelMatmulMatchesForcedScalar)
{
    // Whole-op A/B through the public tensor API: force the scalar
    // oracle, then the compiled tier, and require identical bits.
    tbd::util::Rng rng(32);
    tt::Tensor a(tt::Shape{13, 37});
    tt::Tensor b(tt::Shape{37, 19});
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);

    ts::setSimdEnabled(false);
    tt::Tensor c_scalar = tt::matmul(a, b);
    tt::Tensor tn_scalar = tt::matmulTN(a, a);
    tt::Tensor nt_scalar = tt::matmulNT(a, a);
    ts::setSimdEnabled(true);
    tt::Tensor c_vec = tt::matmul(a, b);
    tt::Tensor tn_vec = tt::matmulTN(a, a);
    tt::Tensor nt_vec = tt::matmulNT(a, a);
    ts::setSimdEnabled(std::nullopt);

    ASSERT_EQ(0, std::memcmp(c_scalar.data(), c_vec.data(),
                             static_cast<std::size_t>(c_scalar.numel()) *
                                 sizeof(float)));
    ASSERT_EQ(0, std::memcmp(tn_scalar.data(), tn_vec.data(),
                             static_cast<std::size_t>(tn_scalar.numel()) *
                                 sizeof(float)));
    ASSERT_EQ(0, std::memcmp(nt_scalar.data(), nt_vec.data(),
                             static_cast<std::size_t>(nt_scalar.numel()) *
                                 sizeof(float)));
}

TEST(SimdKernels, EnvParse)
{
    EXPECT_TRUE(ts::simdEnabledFromEnv(nullptr));
    EXPECT_TRUE(ts::simdEnabledFromEnv("on"));
    EXPECT_TRUE(ts::simdEnabledFromEnv("1"));
    EXPECT_TRUE(ts::simdEnabledFromEnv("avx2"));
    EXPECT_FALSE(ts::simdEnabledFromEnv("off"));
    EXPECT_FALSE(ts::simdEnabledFromEnv("0"));
    EXPECT_FALSE(ts::simdEnabledFromEnv("scalar"));
}

TEST(SimdKernels, TierReporting)
{
    // activeTier() can never exceed what was compiled in or what the
    // CPU supports, and forcing scalar always lands on the oracle.
    ts::setSimdEnabled(false);
    EXPECT_EQ(ts::activeTier(), ts::Tier::Scalar);
    EXPECT_FALSE(ts::active());
    ts::setSimdEnabled(std::nullopt);
    if (ts::compiledTier() == ts::Tier::Scalar)
        EXPECT_EQ(ts::activeTier(), ts::Tier::Scalar);
    EXPECT_STREQ(ts::tierName(ts::Tier::Scalar), "scalar");
    EXPECT_STREQ(ts::tierName(ts::Tier::Avx2), "avx2");
}
