#include "tensor/gradcheck.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "util/rng.h"

namespace tt = tbd::tensor;

TEST(GradCheck, AcceptsCorrectGradient)
{
    // f(x) = sum(x^2) -> df/dx = 2x.
    tbd::util::Rng rng(1);
    tt::Tensor x(tt::Shape{10});
    x.fillNormal(rng, 0.0f, 1.0f);
    tt::Tensor analytic = tt::map(x, [](float v) { return 2.0f * v; });
    auto loss = [&]() {
        double s = 0.0;
        for (std::int64_t i = 0; i < x.numel(); ++i)
            s += static_cast<double>(x.at(i)) * x.at(i);
        return s;
    };
    auto res = tt::checkGradient(x, loss, analytic);
    EXPECT_TRUE(res.ok(1e-3)) << res.maxRelError;
    EXPECT_EQ(res.checked, 10);
}

TEST(GradCheck, RejectsWrongGradient)
{
    tbd::util::Rng rng(2);
    tt::Tensor x(tt::Shape{8});
    x.fillNormal(rng, 1.0f, 0.5f);
    tt::Tensor wrong = tt::map(x, [](float v) { return 3.0f * v; });
    auto loss = [&]() {
        double s = 0.0;
        for (std::int64_t i = 0; i < x.numel(); ++i)
            s += static_cast<double>(x.at(i)) * x.at(i);
        return s;
    };
    auto res = tt::checkGradient(x, loss, wrong);
    EXPECT_FALSE(res.ok(1e-2));
}

TEST(GradCheck, ProbeCapLimitsWork)
{
    tbd::util::Rng rng(3);
    tt::Tensor x(tt::Shape{1000});
    x.fillNormal(rng, 0.0f, 1.0f);
    tt::Tensor analytic = tt::map(x, [](float v) { return 2.0f * v; });
    auto loss = [&]() {
        double s = 0.0;
        for (std::int64_t i = 0; i < x.numel(); ++i)
            s += static_cast<double>(x.at(i)) * x.at(i);
        return s;
    };
    auto res = tt::checkGradient(x, loss, analytic, 1e-3, 16);
    EXPECT_LE(res.checked, 100);
    EXPECT_TRUE(res.ok(1e-3));
}
