/**
 * @file
 * Determinism of the threaded tensor kernels: for every thread count,
 * outputs must be bitwise-equal to the serial reference (DESIGN.md
 * "Threading model" — thread count never changes results).
 */

#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cstring>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace tt = tbd::tensor;
namespace tu = tbd::util;

namespace {

tt::Tensor
randn(tt::Shape shape, std::uint64_t seed)
{
    tu::Rng rng(seed);
    tt::Tensor t(std::move(shape));
    t.fillNormal(rng, 0.0f, 1.0f);
    return t;
}

bool
bitwiseEqual(const tt::Tensor &a, const tt::Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.numel()) *
                           sizeof(float)) == 0;
}

// Runs fn serially, then under pools of several thread counts, and
// checks every parallel result is bitwise-identical to the serial one.
void
expectDeterministic(const std::function<tt::Tensor()> &fn)
{
    tu::ThreadPool serial(1);
    tt::Tensor reference;
    {
        tu::ThreadPool::Scope scope(serial);
        reference = fn();
    }
    for (std::size_t threads : {2u, 3u, 8u}) {
        tu::ThreadPool pool(threads);
        tu::ThreadPool::Scope scope(pool);
        tt::Tensor parallel = fn();
        EXPECT_TRUE(bitwiseEqual(reference, parallel))
            << "mismatch at " << threads << " threads";
    }
}

} // namespace

TEST(OpsParallel, MatmulBitwiseEqualAcrossThreadCounts)
{
    // 193x117 exercises ragged tail blocks of the 64-wide partition.
    const tt::Tensor a = randn(tt::Shape{193, 87}, 1);
    const tt::Tensor b = randn(tt::Shape{87, 117}, 2);
    expectDeterministic([&] { return tt::matmul(a, b); });
}

TEST(OpsParallel, MatmulTNBitwiseEqualAcrossThreadCounts)
{
    const tt::Tensor a = randn(tt::Shape{150, 130}, 3);
    const tt::Tensor b = randn(tt::Shape{150, 70}, 4);
    expectDeterministic([&] { return tt::matmulTN(a, b); });
}

TEST(OpsParallel, MatmulNTBitwiseEqualAcrossThreadCounts)
{
    const tt::Tensor a = randn(tt::Shape{130, 150}, 5);
    const tt::Tensor b = randn(tt::Shape{90, 150}, 6);
    expectDeterministic([&] { return tt::matmulNT(a, b); });
}

TEST(OpsParallel, MatmulChainMatchesManualReference)
{
    // The blocked/threaded GEMM against a naive triple loop.
    const tt::Tensor a = randn(tt::Shape{33, 21}, 7);
    const tt::Tensor b = randn(tt::Shape{21, 29}, 8);
    const tt::Tensor c = tt::matmul(a, b);
    for (std::int64_t i = 0; i < 33; ++i) {
        for (std::int64_t j = 0; j < 29; ++j) {
            float acc = 0.0f;
            for (std::int64_t k = 0; k < 21; ++k)
                acc += a.data()[i * 21 + k] * b.data()[k * 29 + j];
            EXPECT_NEAR(c.data()[i * 29 + j], acc, 1e-4f);
        }
    }
}

TEST(OpsParallel, Im2colCol2imBitwiseEqualAcrossThreadCounts)
{
    const tt::Conv2dGeom g{3, 13, 11, 5, 3, 3, 2, 2, 1, 1};
    const tt::Tensor x = randn(tt::Shape{5, 3, 13, 11}, 9);
    expectDeterministic([&] { return tt::im2col(x, g); });

    const tt::Tensor cols =
        randn(tt::Shape{5 * g.outH() * g.outW(), 3 * 3 * 3}, 10);
    expectDeterministic([&] { return tt::col2im(cols, 5, g); });
}

TEST(OpsParallel, PoolingBitwiseEqualAcrossThreadCounts)
{
    const tt::Conv2dGeom g{6, 12, 12, 6, 2, 2, 2, 2, 0, 0};
    const tt::Tensor x = randn(tt::Shape{3, 6, 12, 12}, 11);
    expectDeterministic([&] { return tt::maxPool2d(x, g).output; });
    expectDeterministic([&] { return tt::avgPool2d(x, g); });

    const tt::Tensor dy = randn(tt::Shape{3, 6, 6, 6}, 12);
    const auto fw = tt::maxPool2d(x, g);
    expectDeterministic(
        [&] { return tt::maxPool2dBackward(dy, fw, x.shape()); });
    expectDeterministic(
        [&] { return tt::avgPool2dBackward(dy, x.shape(), g); });
}

TEST(OpsParallel, ElementwiseAndSoftmaxBitwiseEqual)
{
    const tt::Tensor x = randn(tt::Shape{70000}, 13);
    const tt::Tensor y = randn(tt::Shape{70000}, 14);
    expectDeterministic(
        [&] { return tt::map(x, [](float v) { return v * 2.0f + 1.0f; }); });
    expectDeterministic([&] {
        return tt::zip(x, y, [](float u, float v) { return u * v; });
    });

    const tt::Tensor logits = randn(tt::Shape{300, 40}, 15);
    expectDeterministic([&] { return tt::softmaxRows(logits); });
    const tt::Tensor sm = tt::softmaxRows(logits);
    const tt::Tensor dy = randn(tt::Shape{300, 40}, 16);
    expectDeterministic(
        [&] { return tt::softmaxRowsBackward(sm, dy); });
}

TEST(OpsParallel, TransposeAndRowBiasBitwiseEqual)
{
    const tt::Tensor x = randn(tt::Shape{170, 90}, 17);
    expectDeterministic([&] { return tt::transpose2d(x); });

    const tt::Tensor bias = randn(tt::Shape{90}, 18);
    expectDeterministic([&] {
        tt::Tensor copy = x.clone();
        tt::addRowBias(copy, bias);
        return copy;
    });
}
