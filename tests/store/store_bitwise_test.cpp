/**
 * @file
 * The store's correctness anchor (DESIGN.md §16): for every Table 2
 * workload, the numbers a warm store serves are BITWISE-identical to
 * a cold computation and to running with the store off. Exact double
 * equality everywhere — the store replays recorded bit patterns, it
 * never recomputes approximately.
 */

#include "store/store.h"

#include <gtest/gtest.h>

#include <optional>

#include "models/model_desc.h"
#include "perf/simulator.h"
#include "store_test_util.h"
#include "util/logging.h"

namespace ts = tbd::store;
namespace tp = tbd::perf;
namespace md = tbd::models;
namespace tf = tbd::frameworks;
namespace tg = tbd::gpusim;

using tbd::test::StoreGuard;

namespace {

std::optional<tp::RunResult>
runOnce(const md::ModelDesc &model, tf::FrameworkId fw,
        std::int64_t batch)
{
    tp::RunConfig rc;
    rc.model = &model;
    rc.framework = fw;
    rc.gpu = tg::quadroP4000();
    rc.batch = batch;
    try {
        return tp::PerfSimulator().run(rc);
    } catch (const tbd::util::FatalError &) {
        return std::nullopt; // OOM cell: all modes must agree
    }
}

void
expectBitwiseEqual(const tp::RunResult &a, const tp::RunResult &b)
{
    EXPECT_EQ(a.modelName, b.modelName);
    EXPECT_EQ(a.frameworkName, b.frameworkName);
    EXPECT_EQ(a.gpuName, b.gpuName);
    EXPECT_EQ(a.batch, b.batch);
    EXPECT_EQ(a.iterationUs, b.iterationUs);
    EXPECT_EQ(a.throughputSamples, b.throughputSamples);
    EXPECT_EQ(a.throughputUnits, b.throughputUnits);
    EXPECT_EQ(a.gpuUtilization, b.gpuUtilization);
    EXPECT_EQ(a.fp32Utilization, b.fp32Utilization);
    EXPECT_EQ(a.cpuUtilization, b.cpuUtilization);
    EXPECT_EQ(a.kernelsPerIteration, b.kernelsPerIteration);
    EXPECT_EQ(a.memory.peakBytes, b.memory.peakBytes);
    EXPECT_EQ(a.warmupIterationUs, b.warmupIterationUs);
    EXPECT_EQ(a.sampleIterationUs, b.sampleIterationUs);
    ASSERT_EQ(a.kernelTrace.size(), b.kernelTrace.size());
    for (std::size_t i = 0; i < a.kernelTrace.size(); ++i) {
        const auto &s = a.kernelTrace[i];
        const auto &f = b.kernelTrace[i];
        EXPECT_EQ(s.name.id(), f.name.id()) << "trace entry " << i;
        EXPECT_EQ(s.category, f.category) << "trace entry " << i;
        EXPECT_EQ(s.startUs, f.startUs) << "trace entry " << i;
        EXPECT_EQ(s.durationUs, f.durationUs) << "trace entry " << i;
        EXPECT_EQ(s.flops, f.flops) << "trace entry " << i;
        EXPECT_EQ(s.fp32Util, f.fp32Util) << "trace entry " << i;
        EXPECT_EQ(s.limiter, f.limiter) << "trace entry " << i;
    }
}

} // namespace

TEST(StoreBitwise, OffColdAndWarmAgreeAcrossAllWorkloads)
{
    ts::installSimulatorTier();
    for (const md::ModelDesc *model : md::allModels()) {
        tf::FrameworkId fw = tf::FrameworkId::TensorFlow;
        for (tf::FrameworkId candidate : tf::allFrameworks())
            if (model->supports(candidate)) {
                fw = candidate;
                break;
            }
        ASSERT_FALSE(model->batchSweep.empty()) << model->name;
        const std::int64_t batch = model->batchSweep.front();
        SCOPED_TRACE(model->name + " b" + std::to_string(batch));

        // Reference: store disabled entirely.
        std::optional<tp::RunResult> off;
        {
            StoreGuard guard;
            ts::setStoreEnabled(false);
            off = runOnce(*model, fw, batch);
        }

        // Cold (computes and records) then warm (served from disk),
        // against one fresh store directory.
        StoreGuard guard;
        const auto cold = runOnce(*model, fw, batch);
        const auto cold_counters = ts::counters();
        const auto warm = runOnce(*model, fw, batch);
        const auto warm_counters = ts::counters();

        ASSERT_EQ(off.has_value(), cold.has_value());
        ASSERT_EQ(off.has_value(), warm.has_value());
        if (!off)
            continue; // OOM everywhere: agreement already proven
        EXPECT_GT(warm_counters.hits, cold_counters.hits)
            << "warm pass must be served from the store";
        expectBitwiseEqual(*off, *cold);
        expectBitwiseEqual(*off, *warm);
    }
}
