/**
 * @file
 * Shared fixture plumbing for the store suites: StoreGuard pins the
 * store to a fresh per-test temp directory via the programmatic
 * overrides (which beat TBD_STORE/TBD_NOCACHE — ctest exports
 * TBD_STORE=off for hermeticity) and restores environment gating on
 * exit, removing the directory.
 */

#ifndef TBD_TESTS_STORE_STORE_TEST_UTIL_H
#define TBD_TESTS_STORE_STORE_TEST_UTIL_H

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <optional>
#include <string>

#include "store/store.h"

namespace tbd::test {

/** Unique temp store root per instantiation (pid + counter). */
inline std::string
freshStoreDir()
{
    static std::atomic<int> seq{0};
    const auto dir =
        std::filesystem::temp_directory_path() /
        ("tbd-store-test-" + std::to_string(::getpid()) + "-" +
         std::to_string(seq.fetch_add(1)));
    return dir.string();
}

/** Enables the store on a fresh temp dir; restores env gating on exit. */
struct StoreGuard
{
    std::string dir = freshStoreDir();

    StoreGuard()
    {
        store::setStoreEnabled(true);
        store::setStoreDir(dir);
        store::resetCounters();
    }

    ~StoreGuard()
    {
        store::setStoreEnabled(std::nullopt);
        store::setStoreDir(std::nullopt);
        store::setStoreEpoch(std::nullopt);
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }

    StoreGuard(const StoreGuard &) = delete;
    StoreGuard &operator=(const StoreGuard &) = delete;
};

} // namespace tbd::test

#endif // TBD_TESTS_STORE_STORE_TEST_UTIL_H
