/**
 * @file
 * Concurrency contract of the persistent store: many threads reading
 * and writing the same entries in one directory never crash, never
 * observe torn data (atomic tmp+rename ⇒ a reader sees a complete old
 * entry or a complete new one), and every successful load is bitwise
 * one of the written payloads. Runs under the TSan ctest subset
 * (`StoreConcurrency` is in the CI regex).
 */

#include "store/store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "models/model_desc.h"
#include "perf/simulator.h"
#include "store_test_util.h"

namespace ts = tbd::store;
namespace tp = tbd::perf;
namespace md = tbd::models;
namespace tf = tbd::frameworks;
namespace tg = tbd::gpusim;

using tbd::test::StoreGuard;

namespace {

tp::RunConfig
configForBatch(std::int64_t batch)
{
    tp::RunConfig rc;
    rc.model = &md::resnet50();
    rc.framework = tf::FrameworkId::MXNet;
    rc.gpu = tg::quadroP4000();
    rc.batch = batch;
    return rc;
}

} // namespace

TEST(StoreConcurrency, ParallelPutAndLoadOnSharedEntries)
{
    StoreGuard guard;
    const std::vector<std::int64_t> batches = {8, 16, 32};
    std::vector<tp::RunConfig> configs;
    std::vector<tp::RunResult> results;
    for (std::int64_t batch : batches) {
        configs.push_back(configForBatch(batch));
        results.push_back(tp::PerfSimulator().run(configs.back()));
    }

    constexpr int kThreads = 8;
    constexpr int kIterations = 40;
    std::atomic<std::int64_t> loads{0};
    std::atomic<bool> mismatch{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIterations; ++i) {
                const std::size_t pick =
                    static_cast<std::size_t>(t + i) % configs.size();
                if ((t + i) % 2 == 0) {
                    ts::putRun(configs[pick], results[pick]);
                } else if (const auto loaded =
                               ts::tryLoadRun(configs[pick])) {
                    loads.fetch_add(1);
                    // Same key ⇒ same payload: any successful read
                    // must be bitwise the recorded result.
                    if (loaded->iterationUs !=
                            results[pick].iterationUs ||
                        loaded->kernelTrace.size() !=
                            results[pick].kernelTrace.size())
                        mismatch.store(true);
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_FALSE(mismatch.load());
    // After the dust settles every entry is complete and current.
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const auto loaded = ts::tryLoadRun(configs[i]);
        ASSERT_TRUE(loaded.has_value()) << "batch " << batches[i];
        EXPECT_EQ(loaded->iterationUs, results[i].iterationUs);
    }
    for (const auto &entry : ts::scanStore(guard.dir))
        EXPECT_TRUE(entry.valid) << entry.path << ": " << entry.problem;

    const auto counters = ts::counters();
    EXPECT_EQ(counters.corrupt, 0); // rename atomicity: no torn reads
    EXPECT_GT(loads.load(), 0);
}

TEST(StoreConcurrency, ConcurrentSimulatorTierProbesShareOneStore)
{
    StoreGuard guard;
    ts::installSimulatorTier();
    const tp::RunConfig config = configForBatch(8);
    const tp::RunResult reference = tp::PerfSimulator().run(config);

    constexpr int kThreads = 6;
    std::atomic<bool> mismatch{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 5; ++i) {
                const tp::RunResult r = tp::PerfSimulator().run(config);
                if (r.iterationUs != reference.iterationUs)
                    mismatch.store(true);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_FALSE(mismatch.load());
    EXPECT_GT(ts::counters().hits, 0);
}
