/**
 * @file
 * tbd::store unit contract (DESIGN.md §16): canonical keys, blob
 * codec exactness, entry round-trips with counter accounting,
 * corruption/truncation tolerance, epoch invalidation, cached-OOM
 * negatives, and the scan/gc/clear maintenance surface.
 */

#include "store/store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "dist/collective.h"
#include "dist/topology.h"
#include "models/model_desc.h"
#include "perf/simulator.h"
#include "store_test_util.h"
#include "util/logging.h"

namespace ts = tbd::store;
namespace tp = tbd::perf;
namespace td = tbd::dist;
namespace md = tbd::models;
namespace tf = tbd::frameworks;
namespace tg = tbd::gpusim;

using tbd::test::StoreGuard;

namespace {

tp::RunConfig
sampleConfig(std::int64_t batch = 8)
{
    tp::RunConfig rc;
    rc.model = &md::resnet50();
    rc.framework = tf::FrameworkId::MXNet;
    rc.gpu = tg::quadroP4000();
    rc.batch = batch;
    return rc;
}

tp::RunResult
computeSample(const tp::RunConfig &config)
{
    return tp::PerfSimulator().run(config);
}

td::DistConfig
sampleDistConfig(int workers = 8)
{
    td::DistConfig dc;
    dc.topology = *td::findTopology("nvlink-island");
    dc.collective = *td::findCollective("ring");
    dc.workers = workers;
    return dc;
}

/** The single entry file under a one-entry store. */
std::string
onlyEntryPath(const std::string &dir)
{
    const auto entries = ts::scanStore(dir);
    EXPECT_EQ(entries.size(), 1u);
    return entries.empty() ? std::string() : entries.front().path;
}

} // namespace

// ---------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------

TEST(StoreTest, RunKeyIsDeterministicAndConfigSensitive)
{
    const tp::RunConfig a = sampleConfig(8);
    EXPECT_EQ(ts::canonicalRunKeyJson(a), ts::canonicalRunKeyJson(a));

    tp::RunConfig b = a;
    b.batch = 16;
    EXPECT_NE(ts::canonicalRunKeyJson(a), ts::canonicalRunKeyJson(b));

    tp::RunConfig c = a;
    c.framework = tf::FrameworkId::TensorFlow;
    EXPECT_NE(ts::canonicalRunKeyJson(a), ts::canonicalRunKeyJson(c));

    tp::RunConfig d = a;
    d.lengthCv = 0.35;
    EXPECT_NE(ts::canonicalRunKeyJson(a), ts::canonicalRunKeyJson(d));
}

TEST(StoreTest, RunKeyExcludesObsParentOnly)
{
    // obsParent is pure observability (never read by the simulation);
    // it is the one RunConfig field deliberately outside the key.
    tp::RunConfig a = sampleConfig();
    tp::RunConfig b = a;
    b.obsParent = 12345;
    EXPECT_EQ(ts::canonicalRunKeyJson(a), ts::canonicalRunKeyJson(b));
}

TEST(StoreTest, RunKeySeesEveryGpuSpecField)
{
    // The GPU participates by value, not by name: recalibrating a
    // spec must re-key every entry recorded under the old numbers.
    const tp::RunConfig a = sampleConfig();
    tp::RunConfig b = a;
    b.gpu.memoryBwGBs *= 2.0;
    EXPECT_NE(ts::canonicalRunKeyJson(a), ts::canonicalRunKeyJson(b));

    tp::RunConfig c = a;
    c.gpu.memoryGiB += 1.0;
    EXPECT_NE(ts::canonicalRunKeyJson(a), ts::canonicalRunKeyJson(c));
}

TEST(StoreTest, DistKeySeesEveryAxisAndTheBuiltGraph)
{
    const tp::RunConfig base = sampleConfig();
    const td::DistConfig a = sampleDistConfig(8);
    EXPECT_EQ(ts::canonicalDistKeyJson(base, a),
              ts::canonicalDistKeyJson(base, a));

    td::DistConfig b = a;
    b.workers = 16;
    EXPECT_NE(ts::canonicalDistKeyJson(base, a),
              ts::canonicalDistKeyJson(base, b));

    td::DistConfig c = a;
    c.gradientCompression = 2.0;
    EXPECT_NE(ts::canonicalDistKeyJson(base, a),
              ts::canonicalDistKeyJson(base, c));

    td::DistConfig d = a;
    d.collective = *td::findCollective("hierarchical");
    EXPECT_NE(ts::canonicalDistKeyJson(base, a),
              ts::canonicalDistKeyJson(base, d));

    // The base run key participates too.
    tp::RunConfig other_base = base;
    other_base.batch += 8;
    EXPECT_NE(ts::canonicalDistKeyJson(base, a),
              ts::canonicalDistKeyJson(other_base, a));
}

TEST(StoreTest, FieldCountProbesMatchTheLiveStructs)
{
    // The same counts the store.key-completeness lint rule audits:
    // if one of these fails, a config struct grew a field and the
    // canonical key serialization (and its snapshot constant) must
    // keep up. See store/store.h.
    EXPECT_EQ(ts::fieldCount<tp::RunConfig>(), ts::kRunConfigKeyFields);
    EXPECT_EQ(ts::fieldCount<td::DistConfig>(),
              ts::kDistConfigKeyFields);
    EXPECT_EQ(ts::fieldCount<tg::GpuSpec>(), ts::kGpuSpecKeyFields);
    EXPECT_EQ(ts::fieldCount<tg::CpuSpec>(), ts::kCpuSpecKeyFields);
    EXPECT_EQ(ts::fieldCount<td::TopologySpec>(),
              ts::kTopologySpecKeyFields);
    EXPECT_EQ(ts::fieldCount<td::CollectiveSpec>(),
              ts::kCollectiveSpecKeyFields);
}

// ---------------------------------------------------------------------
// Blob codecs
// ---------------------------------------------------------------------

TEST(StoreTest, RunPayloadRoundTripsBitwise)
{
    const tp::RunConfig config = sampleConfig();
    ts::RunPayload payload;
    payload.result = computeSample(config);
    ASSERT_FALSE(payload.result.kernelTrace.empty());

    const std::string bytes = ts::encodeRunPayload(payload);
    const auto decoded = ts::decodeRunPayload(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_FALSE(decoded->oom);

    // Re-encoding the decode must reproduce the exact bytes: every
    // field (including the full kernel trace and memory breakdown)
    // survives with its bit pattern intact.
    EXPECT_EQ(ts::encodeRunPayload(*decoded), bytes);

    const tp::RunResult &r = decoded->result;
    EXPECT_EQ(r.modelName, payload.result.modelName);
    EXPECT_EQ(r.iterationUs, payload.result.iterationUs);
    EXPECT_EQ(r.memory.peakBytes, payload.result.memory.peakBytes);
    ASSERT_EQ(r.kernelTrace.size(), payload.result.kernelTrace.size());
    EXPECT_EQ(r.kernelTrace.front().startUs,
              payload.result.kernelTrace.front().startUs);
    EXPECT_EQ(r.kernelTrace.front().name.id(),
              payload.result.kernelTrace.front().name.id());
}

TEST(StoreTest, OomPayloadRoundTrips)
{
    ts::RunPayload payload;
    payload.oom = true;
    payload.oomMessage = "ResNet-50 b1024: out of memory (9.1 GiB)";
    const std::string bytes = ts::encodeRunPayload(payload);
    const auto decoded = ts::decodeRunPayload(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->oom);
    EXPECT_EQ(decoded->oomMessage, payload.oomMessage);
}

TEST(StoreTest, DecodeRejectsMalformedBytesWithoutThrowing)
{
    const tp::RunConfig config = sampleConfig();
    ts::RunPayload payload;
    payload.result = computeSample(config);
    const std::string bytes = ts::encodeRunPayload(payload);

    EXPECT_FALSE(ts::decodeRunPayload("").has_value());
    EXPECT_FALSE(ts::decodeRunPayload("garbage").has_value());
    // Every truncation point must fail cleanly, never read past end.
    for (std::size_t cut = 1; cut < bytes.size();
         cut += std::max<std::size_t>(1, bytes.size() / 64))
        EXPECT_FALSE(
            ts::decodeRunPayload(std::string_view(bytes).substr(0, cut))
                .has_value())
            << "cut at " << cut;
    // Trailing junk is malformed too (decode demands exhaustion).
    EXPECT_FALSE(ts::decodeRunPayload(bytes + "x").has_value());
}

TEST(StoreTest, DistPayloadRoundTripsBitwise)
{
    td::DistResult result;
    result.topology = "nvlink-island";
    result.collective = "ring";
    result.label = "nvlink-island x8 (ring)";
    result.workers = 8;
    result.computeUs = 1234.5678901234567;
    result.commUs = 89.0625;
    result.exposedCommUs = 44.53125;
    result.iterationUs = 1279.03125;
    result.throughputSamples = 50045.125;
    result.scalingEfficiency = 0.96533203125;
    result.commShare = 0.034814453125;
    result.gradBytes = 102760448.0;
    result.busiestEdge = "nvlink0";

    const std::string bytes = ts::encodeDistPayload(result);
    const auto decoded = ts::decodeDistPayload(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(ts::encodeDistPayload(*decoded), bytes);
    EXPECT_EQ(decoded->iterationUs, result.iterationUs);
    EXPECT_EQ(decoded->busiestEdge, result.busiestEdge);
    EXPECT_FALSE(ts::decodeDistPayload("").has_value());
    EXPECT_FALSE(ts::decodeDistPayload(bytes + "y").has_value());
}

// ---------------------------------------------------------------------
// Entry round-trips and counters
// ---------------------------------------------------------------------

TEST(StoreTest, PutThenLoadHitsAndCountsExactly)
{
    StoreGuard guard;
    const tp::RunConfig config = sampleConfig();

    EXPECT_FALSE(ts::tryLoadRun(config).has_value());
    auto after_miss = ts::counters();
    EXPECT_EQ(after_miss.misses, 1);
    EXPECT_EQ(after_miss.hits, 0);

    const tp::RunResult result = computeSample(config);
    ts::putRun(config, result);
    EXPECT_EQ(ts::counters().puts, 1);

    const auto loaded = ts::tryLoadRun(config);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->iterationUs, result.iterationUs);
    EXPECT_EQ(loaded->kernelTrace.size(), result.kernelTrace.size());

    auto final_counters = ts::counters();
    EXPECT_EQ(final_counters.hits, 1);
    EXPECT_EQ(final_counters.misses, 1);
    // Every probe is exactly one of {hit, miss}.
    EXPECT_EQ(final_counters.hits + final_counters.misses, 2);
}

TEST(StoreTest, DisabledStoreIsInert)
{
    StoreGuard guard;
    ts::setStoreEnabled(false);
    const tp::RunConfig config = sampleConfig();
    ts::putRun(config, computeSample(config));
    EXPECT_FALSE(ts::tryLoadRun(config).has_value());
    const auto c = ts::counters();
    EXPECT_EQ(c.puts, 0);
    EXPECT_EQ(c.hits, 0);
    EXPECT_EQ(c.misses, 0); // disabled probes are not misses
    EXPECT_FALSE(std::filesystem::exists(guard.dir));
}

TEST(StoreTest, DistEntryRoundTrips)
{
    StoreGuard guard;
    const tp::RunConfig base = sampleConfig();
    const td::DistConfig dc = sampleDistConfig();
    EXPECT_FALSE(ts::tryLoadDist(base, dc).has_value());

    const tp::RunResult single = computeSample(base);
    const td::DistResult result = td::simulateDistributed(
        *base.model, base.framework, base.gpu, base.batch, dc, &single);
    ts::putDist(base, dc, result);

    const auto loaded = ts::tryLoadDist(base, dc);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->iterationUs, result.iterationUs);
    EXPECT_EQ(loaded->scalingEfficiency, result.scalingEfficiency);
    EXPECT_EQ(loaded->busiestEdge, result.busiestEdge);

    // Run and dist entries address different namespaces: the run
    // probe must not see the dist entry.
    EXPECT_FALSE(ts::tryLoadRun(base).has_value());
}

// ---------------------------------------------------------------------
// Corruption and epochs
// ---------------------------------------------------------------------

TEST(StoreTest, CorruptedEntryIsAMissNeverAnError)
{
    StoreGuard guard;
    const tp::RunConfig config = sampleConfig();
    ts::putRun(config, computeSample(config));
    const std::string path = onlyEntryPath(guard.dir);

    // Flip one payload byte: checksum mismatch.
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(-1, std::ios::end);
        f.put('\0');
    }
    ts::resetCounters();
    EXPECT_FALSE(ts::tryLoadRun(config).has_value());
    auto c = ts::counters();
    EXPECT_EQ(c.misses, 1);
    EXPECT_EQ(c.corrupt, 1);

    // Recompute-and-put heals the entry in place.
    ts::putRun(config, computeSample(config));
    EXPECT_TRUE(ts::tryLoadRun(config).has_value());
}

TEST(StoreTest, TruncatedAndEmptyEntriesAreMisses)
{
    StoreGuard guard;
    const tp::RunConfig config = sampleConfig();
    ts::putRun(config, computeSample(config));
    const std::string path = onlyEntryPath(guard.dir);
    const auto full = std::filesystem::file_size(path);

    std::filesystem::resize_file(path, full / 2); // truncated payload
    ts::resetCounters();
    EXPECT_FALSE(ts::tryLoadRun(config).has_value());
    EXPECT_EQ(ts::counters().corrupt, 1);

    std::filesystem::resize_file(path, 0); // zero-length entry
    ts::resetCounters();
    EXPECT_FALSE(ts::tryLoadRun(config).has_value());
    EXPECT_EQ(ts::counters().corrupt, 1);
}

TEST(StoreTest, EpochMismatchInvalidatesSilently)
{
    StoreGuard guard;
    const tp::RunConfig config = sampleConfig();
    ts::putRun(config, computeSample(config));
    ASSERT_TRUE(ts::tryLoadRun(config).has_value());

    ts::setStoreEpoch("s1.c999"); // simulated-code change
    ts::resetCounters();
    EXPECT_FALSE(ts::tryLoadRun(config).has_value());
    auto c = ts::counters();
    EXPECT_EQ(c.misses, 1);
    EXPECT_EQ(c.epochMismatch, 1);
    EXPECT_EQ(c.corrupt, 0);

    // Writing under the new epoch overwrites the same entry file
    // (the epoch lives in the header, not the filename).
    ts::putRun(config, computeSample(config));
    EXPECT_EQ(ts::scanStore(guard.dir).size(), 1u);
    EXPECT_TRUE(ts::tryLoadRun(config).has_value());
}

// ---------------------------------------------------------------------
// Cached OOM negatives
// ---------------------------------------------------------------------

TEST(StoreTest, CachedOomReplaysTheExactFatalError)
{
    StoreGuard guard;
    const tp::RunConfig config = sampleConfig(4096);
    const std::string message =
        "ResNet-50 (MXNet) b4096 needs 63.1 GiB but Quadro P4000 has "
        "8 GiB: out of memory";
    ts::putRunOom(config, message);

    try {
        (void)ts::tryLoadRun(config);
        FAIL() << "cached OOM must throw";
    } catch (const tbd::util::FatalError &error) {
        EXPECT_EQ(std::string(error.what()), message);
    }
    auto c = ts::counters();
    EXPECT_EQ(c.hits, 1); // a negative hit is still a hit
    EXPECT_EQ(c.oomHits, 1);
}

// ---------------------------------------------------------------------
// Simulator tier (end to end through PerfSimulator)
// ---------------------------------------------------------------------

TEST(StoreTest, SimulatorSecondTierServesWarmRunsBitwise)
{
    StoreGuard guard;
    ts::installSimulatorTier();
    const tp::RunConfig config = sampleConfig();

    const tp::RunResult cold = tp::PerfSimulator().run(config);
    auto after_cold = ts::counters();
    EXPECT_EQ(after_cold.hits, 0);
    EXPECT_EQ(after_cold.puts, 1);

    const tp::RunResult warm = tp::PerfSimulator().run(config);
    auto after_warm = ts::counters();
    EXPECT_EQ(after_warm.hits, 1);
    EXPECT_EQ(after_warm.puts, 1); // a hit is never re-written

    EXPECT_EQ(cold.iterationUs, warm.iterationUs);
    EXPECT_EQ(cold.throughputSamples, warm.throughputSamples);
    ASSERT_EQ(cold.kernelTrace.size(), warm.kernelTrace.size());
    for (std::size_t i = 0; i < cold.kernelTrace.size(); ++i) {
        EXPECT_EQ(cold.kernelTrace[i].startUs,
                  warm.kernelTrace[i].startUs);
        EXPECT_EQ(cold.kernelTrace[i].durationUs,
                  warm.kernelTrace[i].durationUs);
    }
}

// ---------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------

TEST(StoreTest, ScanGcAndClearAccountForEveryEntry)
{
    StoreGuard guard;
    const tp::RunConfig a = sampleConfig(8);
    const tp::RunConfig b = sampleConfig(16);
    ts::putRun(a, computeSample(a));
    ts::putRun(b, computeSample(b));

    // One stale entry (wrong epoch) and one corrupt entry.
    ts::setStoreEpoch("s1.c999");
    tp::RunConfig c = sampleConfig(32);
    ts::putRun(c, computeSample(c));
    ts::setStoreEpoch(std::nullopt);
    {
        std::ofstream junk(std::filesystem::path(guard.dir) /
                           "run-deadbeefdeadbeef.tbds");
        junk << "not a store entry";
    }

    auto entries = ts::scanStore(guard.dir);
    ASSERT_EQ(entries.size(), 4u);
    int valid_current = 0, stale = 0, invalid = 0;
    for (const auto &entry : entries) {
        if (!entry.valid)
            ++invalid;
        else if (!entry.epochCurrent)
            ++stale;
        else
            ++valid_current;
    }
    EXPECT_EQ(valid_current, 2);
    EXPECT_EQ(stale, 1);
    EXPECT_EQ(invalid, 1);

    const ts::GcStats gc = ts::gcStore(guard.dir);
    EXPECT_EQ(gc.removedInvalid, 1);
    EXPECT_EQ(gc.removedStale, 1);
    EXPECT_EQ(gc.kept, 2);
    EXPECT_EQ(ts::scanStore(guard.dir).size(), 2u);
    EXPECT_TRUE(ts::tryLoadRun(a).has_value());

    EXPECT_EQ(ts::clearStore(guard.dir), 2);
    EXPECT_EQ(ts::scanStore(guard.dir).size(), 0u);
}
