/**
 * @file
 * The incremental-sweep contract (DESIGN.md §16): re-running a
 * figure/table sweep against a warm store recomputes nothing, and
 * growing the request list computes only the new cells — with results
 * identical to a cold evaluation in both cases. Covers runSweep
 * (single-GPU cells) and runDistSweep (distributed cells, whose
 * baselines ride the same store).
 */

#include "core/suite.h"

#include <gtest/gtest.h>

#include <vector>

#include "store/store.h"
#include "store_test_util.h"

namespace ts = tbd::store;
namespace tc = tbd::core;

using tbd::test::StoreGuard;

namespace {

std::vector<tc::BenchmarkRequest>
smallSweep()
{
    std::vector<tc::BenchmarkRequest> requests;
    for (std::int64_t batch : {8, 16}) {
        tc::BenchmarkRequest request;
        request.model = "ResNet-50";
        request.framework = "MXNet";
        request.gpu = "Quadro P4000";
        request.batch = batch;
        requests.push_back(request);
    }
    tc::BenchmarkRequest inception;
    inception.model = "Inception-v3";
    inception.framework = "MXNet";
    inception.batch = 32;
    requests.push_back(inception);
    return requests;
}

} // namespace

TEST(StoreIncremental, WarmRunSweepRecomputesNothing)
{
    StoreGuard guard;
    const auto requests = smallSweep();

    const auto cold = tc::BenchmarkSuite::runSweep(requests);
    const auto after_cold = ts::counters();
    EXPECT_EQ(after_cold.hits, 0);
    EXPECT_EQ(after_cold.misses,
              static_cast<std::int64_t>(requests.size()));
    EXPECT_EQ(after_cold.puts,
              static_cast<std::int64_t>(requests.size()));

    const auto warm = tc::BenchmarkSuite::runSweep(requests);
    const auto after_warm = ts::counters();
    EXPECT_EQ(after_warm.hits,
              static_cast<std::int64_t>(requests.size()));
    EXPECT_EQ(after_warm.misses, after_cold.misses); // no new misses
    EXPECT_EQ(after_warm.puts, after_cold.puts);     // no new writes

    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        ASSERT_EQ(cold[i].has_value(), warm[i].has_value()) << i;
        if (!cold[i])
            continue;
        EXPECT_EQ(cold[i]->iterationUs, warm[i]->iterationUs) << i;
        EXPECT_EQ(cold[i]->throughputSamples,
                  warm[i]->throughputSamples)
            << i;
        EXPECT_EQ(cold[i]->kernelTrace.size(),
                  warm[i]->kernelTrace.size())
            << i;
    }
}

TEST(StoreIncremental, GrowingTheSweepComputesOnlyNewCells)
{
    StoreGuard guard;
    auto requests = smallSweep();
    (void)tc::BenchmarkSuite::runSweep(requests);

    tc::BenchmarkRequest fresh;
    fresh.model = "ResNet-50";
    fresh.framework = "MXNet";
    fresh.batch = 64; // not in the original sweep
    requests.push_back(fresh);

    ts::resetCounters();
    const auto results = tc::BenchmarkSuite::runSweep(requests);
    const auto c = ts::counters();
    EXPECT_EQ(c.hits, static_cast<std::int64_t>(requests.size() - 1));
    EXPECT_EQ(c.misses, 1); // only the new cell computed
    EXPECT_EQ(c.puts, 1);
    ASSERT_EQ(results.size(), requests.size());
    EXPECT_TRUE(results.back().has_value());
}

TEST(StoreIncremental, WarmDistSweepServesCellsAndBaselines)
{
    StoreGuard guard;
    std::vector<tc::BenchmarkRequest> requests;
    for (int workers : {4, 8}) {
        tc::BenchmarkRequest request;
        request.model = "ResNet-50";
        request.framework = "MXNet";
        request.batch = 16;
        request.distWorkers = workers;
        request.distTopology = "nvlink-island";
        request.distCollective = "ring";
        requests.push_back(request);
    }

    const auto cold = tc::BenchmarkSuite::runDistSweep(requests);
    const auto after_cold = ts::counters();
    // One shared baseline + two dist cells recorded.
    EXPECT_EQ(after_cold.puts, 3);
    EXPECT_EQ(after_cold.hits, 0);

    const auto warm = tc::BenchmarkSuite::runDistSweep(requests);
    const auto after_warm = ts::counters();
    // Baseline + both cells come back from disk; nothing recomputed.
    EXPECT_EQ(after_warm.hits, after_cold.hits + 3);
    EXPECT_EQ(after_warm.puts, after_cold.puts);

    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        ASSERT_TRUE(cold[i].has_value());
        ASSERT_TRUE(warm[i].has_value());
        EXPECT_EQ(cold[i]->iterationUs, warm[i]->iterationUs) << i;
        EXPECT_EQ(cold[i]->commUs, warm[i]->commUs) << i;
        EXPECT_EQ(cold[i]->scalingEfficiency,
                  warm[i]->scalingEfficiency)
            << i;
        EXPECT_EQ(cold[i]->busiestEdge, warm[i]->busiestEdge) << i;
    }
}

TEST(StoreIncremental, NocacheEscapeHatchBypassesTheStore)
{
    StoreGuard guard;
    const auto requests = smallSweep();
    const auto with_store = tc::BenchmarkSuite::runSweep(requests);

    ts::setStoreEnabled(false); // what TBD_STORE=off / TBD_NOCACHE do
    ts::resetCounters();
    const auto without = tc::BenchmarkSuite::runSweep(requests);
    const auto c = ts::counters();
    EXPECT_EQ(c.hits, 0);
    EXPECT_EQ(c.misses, 0);
    EXPECT_EQ(c.puts, 0);

    ASSERT_EQ(with_store.size(), without.size());
    for (std::size_t i = 0; i < with_store.size(); ++i) {
        ASSERT_EQ(with_store[i].has_value(), without[i].has_value());
        if (with_store[i]) {
            EXPECT_EQ(with_store[i]->iterationUs,
                      without[i]->iterationUs)
                << i;
        }
    }
}
