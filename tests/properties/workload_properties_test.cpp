/**
 * @file
 * Invariants of every registered model's workload over its full batch
 * sweep: cost accounting must be internally consistent (non-negative,
 * parameter counts batch-invariant, compute ~linear in batch) for the
 * performance and memory models to mean anything.
 */

#include <gtest/gtest.h>

#include "models/model_desc.h"

namespace md = tbd::models;

namespace {

struct Case
{
    const md::ModelDesc *model;
    std::int64_t batch;
};

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const auto *m : md::allModels())
        for (std::int64_t b : m->batchSweep)
            cases.push_back({m, b});
    return cases;
}

} // namespace

class WorkloadSweep : public ::testing::TestWithParam<Case>
{
};

TEST_P(WorkloadSweep, CostsAreWellFormed)
{
    const auto [model, batch] = GetParam();
    const auto w = model->describe(batch);
    ASSERT_FALSE(w.ops.empty());
    for (const auto &op : w.ops) {
        EXPECT_GE(op.fwdFlops, 0.0) << op.name;
        EXPECT_GE(op.params, 0) << op.name;
        EXPECT_GT(op.outputElems, 0) << op.name;
        EXPECT_GE(op.timeSteps, 1) << op.name;
        EXPECT_FALSE(op.name.empty());
    }
    EXPECT_GT(w.totalFwdFlops(), 0.0);
    EXPECT_GT(w.totalParams(), 0);
}

TEST_P(WorkloadSweep, OpNamesAreUnique)
{
    const auto [model, batch] = GetParam();
    const auto w = model->describe(batch);
    std::set<std::string> names;
    for (const auto &op : w.ops)
        EXPECT_TRUE(names.insert(op.name).second)
            << "duplicate op name: " << op.name;
}

TEST_P(WorkloadSweep, ParamsAreBatchInvariant)
{
    const auto [model, batch] = GetParam();
    EXPECT_EQ(model->describe(batch).totalParams(),
              model->describe(model->batchSweep.front()).totalParams());
}

TEST_P(WorkloadSweep, ComputeScalesWithBatch)
{
    // Compare against the second sweep point: the smallest one may be
    // below one Transformer sequence, where token->sequence rounding
    // distorts the ratio.
    const auto [model, batch] = GetParam();
    if (model->batchSweep.size() < 2)
        return;
    const auto base = model->batchSweep[1];
    if (batch <= base)
        return;
    const double ratio = model->describe(batch).totalFwdFlops() /
                         model->describe(base).totalFwdFlops();
    const double expected =
        static_cast<double>(batch) / static_cast<double>(base);
    EXPECT_NEAR(ratio, expected, 0.25 * expected)
        << model->name << " batch " << batch;
}

TEST_P(WorkloadSweep, ActivationsScaleWithBatch)
{
    const auto [model, batch] = GetParam();
    if (model->batchSweep.size() < 2)
        return;
    const auto base = model->batchSweep[1];
    if (batch <= base)
        return;
    const double ratio =
        static_cast<double>(model->describe(batch).totalActivations()) /
        static_cast<double>(model->describe(base).totalActivations());
    const double expected =
        static_cast<double>(batch) / static_cast<double>(base);
    EXPECT_NEAR(ratio, expected, 0.25 * expected) << model->name;
}

TEST_P(WorkloadSweep, DeterministicDescription)
{
    const auto [model, batch] = GetParam();
    const auto a = model->describe(batch);
    const auto b = model->describe(batch);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    EXPECT_DOUBLE_EQ(a.totalFwdFlops(), b.totalFwdFlops());
    EXPECT_EQ(a.totalParams(), b.totalParams());
    for (std::size_t i = 0; i < a.ops.size(); ++i)
        EXPECT_EQ(a.ops[i].name, b.ops[i].name);
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAllBatches, WorkloadSweep, ::testing::ValuesIn(allCases()),
    [](const auto &info) {
        std::string name = info.param.model->name + "_b" +
                           std::to_string(info.param.batch);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });
