/**
 * @file
 * Property sweep over the Figure 4/5/6 grids: every (model, framework,
 * batch) cell the figures plot must satisfy the tbd::check
 * conservation laws — ordered non-overlapping kernel intervals,
 * utilizations in range, throughput/iteration-time identities, and a
 * memory breakdown that sums to its total.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "check/invariants.h"

namespace tc = tbd::check;
namespace tp = tbd::perf;
namespace md = tbd::models;
namespace tf = tbd::frameworks;
namespace tg = tbd::gpusim;

namespace {

struct Cell
{
    const md::ModelDesc *model;
    tf::FrameworkId framework;
    std::int64_t batch;
};

/** Every cell of the Fig. 4/5/6 batch-sweep grids. */
std::vector<Cell>
figureCells()
{
    std::vector<Cell> cells;
    for (const auto *m : md::allModels())
        for (auto fw : m->frameworks)
            for (std::int64_t batch : m->batchSweep)
                cells.push_back({m, fw, batch});
    return cells;
}

tp::RunConfig
configFor(const Cell &cell)
{
    tp::RunConfig rc;
    rc.model = cell.model;
    rc.framework = cell.framework;
    rc.gpu = tg::quadroP4000();
    rc.batch = cell.batch;
    rc.enforceMemory = false; // the figures plot cells past the 8 GiB wall
    return rc;
}

} // namespace

class CheckSweep : public ::testing::TestWithParam<Cell>
{
};

TEST_P(CheckSweep, FigureCellSatisfiesAllInvariants)
{
    const tp::RunConfig config = configFor(GetParam());
    const tp::RunResult result = tp::PerfSimulator().run(config);
    const tc::CheckReport report = tc::validateRunResult(config, result);
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST_P(CheckSweep, FigureCellTimelineIsWellFormed)
{
    const tp::RunConfig config = configFor(GetParam());
    const tp::RunResult result = tp::PerfSimulator().run(config);
    ASSERT_FALSE(result.kernelTrace.empty());
    const tc::CheckReport report =
        tc::validateTimeline(result.kernelTrace, config.gpu);
    EXPECT_TRUE(report.ok()) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Figure456Grid, CheckSweep, ::testing::ValuesIn(figureCells()),
    [](const auto &info) {
        std::string name = info.param.model->name + std::string("_") +
                           tf::frameworkName(info.param.framework) +
                           "_b" + std::to_string(info.param.batch);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });
