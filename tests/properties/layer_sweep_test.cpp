/**
 * @file
 * Property-style parameterized sweeps over the functional layer
 * library: every geometry a TBD model uses must gradient-check, and
 * structural invariants (shape algebra, parameter counts) must hold
 * across the swept space — not just at the single points the unit
 * tests pin down.
 */

#include <gtest/gtest.h>

#include "layer_test_util.h"
#include "layers/attention.h"
#include "layers/conv.h"
#include "layers/dense.h"
#include "layers/norm.h"
#include "layers/recurrent.h"

namespace tl = tbd::layers;
namespace tt = tbd::tensor;
using tbd::testutil::checkLayerGradients;
using tbd::testutil::randn;

// ---------------------------------------------------------------------------
// Conv2d geometry sweep: (kernel, stride, pad) combos from the model zoo.
// ---------------------------------------------------------------------------

struct ConvGeom
{
    std::int64_t kernel, stride, pad;
};

class ConvGeometrySweep : public ::testing::TestWithParam<ConvGeom>
{
};

TEST_P(ConvGeometrySweep, GradientMatchesNumeric)
{
    const auto g = GetParam();
    tbd::util::Rng rng(1000 + g.kernel * 100 + g.stride * 10 + g.pad);
    tl::Conv2d conv("c", 2, 3, g.kernel, g.stride, g.pad, rng);
    checkLayerGradients(conv, randn(tt::Shape{2, 2, 8, 8}, 7, 0.5f), 55,
                        3e-2);
}

TEST_P(ConvGeometrySweep, OutputShapeFormula)
{
    const auto g = GetParam();
    tbd::util::Rng rng(1);
    tl::Conv2d conv("c", 2, 5, g.kernel, g.stride, g.pad, rng);
    tt::Tensor y = conv.forward(randn(tt::Shape{1, 2, 12, 12}, 2), false);
    const std::int64_t expect =
        (12 + 2 * g.pad - g.kernel) / g.stride + 1;
    EXPECT_EQ(y.shape(), tt::Shape({1, 5, expect, expect}));
}

INSTANTIATE_TEST_SUITE_P(
    ModelZooGeometries, ConvGeometrySweep,
    ::testing::Values(ConvGeom{1, 1, 0},  // bottleneck reduce/expand
                      ConvGeom{3, 1, 1},  // the workhorse conv
                      ConvGeom{3, 2, 1},  // stage-entry downsample
                      ConvGeom{5, 1, 2},  // inception 5x5 branch
                      ConvGeom{7, 2, 3},  // ResNet stem
                      ConvGeom{4, 2, 1},  // A3C conv2 geometry
                      ConvGeom{1, 2, 0}), // projection shortcut
    [](const auto &info) {
        return "k" + std::to_string(info.param.kernel) + "s" +
               std::to_string(info.param.stride) + "p" +
               std::to_string(info.param.pad);
    });

// ---------------------------------------------------------------------------
// Dense width sweep.
// ---------------------------------------------------------------------------

class DenseWidthSweep
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>>
{
};

TEST_P(DenseWidthSweep, GradientAndParamCount)
{
    const auto [in_f, out_f] = GetParam();
    tbd::util::Rng rng(static_cast<std::uint64_t>(in_f * 131 + out_f));
    tl::FullyConnected fc("fc", in_f, out_f, rng);
    EXPECT_EQ(fc.paramCount(), in_f * out_f + out_f);
    checkLayerGradients(fc, randn(tt::Shape{3, in_f}, 4));
}

INSTANTIATE_TEST_SUITE_P(
    Widths, DenseWidthSweep,
    ::testing::Values(std::pair<std::int64_t, std::int64_t>{1, 1},
                      std::pair<std::int64_t, std::int64_t>{1, 16},
                      std::pair<std::int64_t, std::int64_t>{16, 1},
                      std::pair<std::int64_t, std::int64_t>{7, 13},
                      std::pair<std::int64_t, std::int64_t>{32, 8}),
    [](const auto &info) {
        return std::to_string(info.param.first) + "x" +
               std::to_string(info.param.second);
    });

// ---------------------------------------------------------------------------
// Recurrent sweep: cell kind x (sequence length, hidden width).
// ---------------------------------------------------------------------------

struct RnnCase
{
    tl::CellKind kind;
    std::int64_t steps, hidden;
};

class RecurrentSweep : public ::testing::TestWithParam<RnnCase>
{
};

TEST_P(RecurrentSweep, GradientMatchesNumeric)
{
    const auto c = GetParam();
    tbd::util::Rng rng(static_cast<std::uint64_t>(c.steps * 17 +
                                                  c.hidden));
    tl::Recurrent rnn("r", c.kind, 3, c.hidden, rng, true);
    checkLayerGradients(rnn, randn(tt::Shape{2, c.steps, 3}, 5, 0.5f), 56,
                        3e-2);
}

TEST_P(RecurrentSweep, SingleStepEqualsCellApplication)
{
    // T=1 must behave like one cell step: output shape [N, 1, H].
    const auto c = GetParam();
    tbd::util::Rng rng(9);
    tl::Recurrent rnn("r", c.kind, 3, c.hidden, rng, true);
    tt::Tensor y = rnn.forward(randn(tt::Shape{4, 1, 3}, 10), false);
    EXPECT_EQ(y.shape(), tt::Shape({4, 1, c.hidden}));
}

INSTANTIATE_TEST_SUITE_P(
    CellsAndLengths, RecurrentSweep,
    ::testing::Values(RnnCase{tl::CellKind::Vanilla, 1, 4},
                      RnnCase{tl::CellKind::Vanilla, 7, 5},
                      RnnCase{tl::CellKind::Gru, 1, 4},
                      RnnCase{tl::CellKind::Gru, 6, 3},
                      RnnCase{tl::CellKind::Lstm, 1, 4},
                      RnnCase{tl::CellKind::Lstm, 6, 3}),
    [](const auto &info) {
        return std::string(tl::cellKindName(info.param.kind)) + "_t" +
               std::to_string(info.param.steps) + "_h" +
               std::to_string(info.param.hidden);
    });

// ---------------------------------------------------------------------------
// Attention sweep: heads x sequence length x causality.
// ---------------------------------------------------------------------------

struct AttnCase
{
    std::int64_t heads, steps;
    bool causal;
};

class AttentionSweep : public ::testing::TestWithParam<AttnCase>
{
};

TEST_P(AttentionSweep, GradientMatchesNumeric)
{
    const auto c = GetParam();
    tbd::util::Rng rng(static_cast<std::uint64_t>(c.heads * 31 +
                                                  c.steps));
    tl::MultiHeadAttention mha("mha", 8, c.heads, rng, c.causal);
    checkLayerGradients(mha, randn(tt::Shape{1, c.steps, 8}, 6, 0.5f), 57,
                        3e-2);
}

INSTANTIATE_TEST_SUITE_P(
    HeadsAndLengths, AttentionSweep,
    ::testing::Values(AttnCase{1, 3, false}, AttnCase{2, 3, false},
                      AttnCase{4, 5, false}, AttnCase{2, 4, true},
                      AttnCase{1, 1, false}),
    [](const auto &info) {
        return "h" + std::to_string(info.param.heads) + "_t" +
               std::to_string(info.param.steps) +
               (info.param.causal ? "_causal" : "");
    });

// ---------------------------------------------------------------------------
// Normalization width sweep.
// ---------------------------------------------------------------------------

class NormWidthSweep : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(NormWidthSweep, LayerNormGradient)
{
    const auto width = GetParam();
    tl::LayerNorm ln("ln", width);
    checkLayerGradients(ln, randn(tt::Shape{3, width}, 8), 58, 3e-2);
}

TEST_P(NormWidthSweep, BatchNormGradient)
{
    const auto width = GetParam();
    tl::BatchNorm2d bn("bn", width);
    checkLayerGradients(bn, randn(tt::Shape{2, width, 3, 3}, 9), 59,
                        3e-2);
}

INSTANTIATE_TEST_SUITE_P(Widths, NormWidthSweep,
                         ::testing::Values(1, 2, 5, 8),
                         [](const auto &info) {
                             return "w" + std::to_string(info.param);
                         });
