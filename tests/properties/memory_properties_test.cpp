/**
 * @file
 * Memory-model invariants over the full (model x framework x batch)
 * grid: breakdown consistency, batch monotonicity, and the structural
 * facts behind Observations 11 and 12.
 */

#include <gtest/gtest.h>

#include "perf/memory_model.h"
#include "util/logging.h"

namespace tp = tbd::perf;
namespace md = tbd::models;
namespace tf = tbd::frameworks;
namespace mp = tbd::memprof;

namespace {

struct Case
{
    const md::ModelDesc *model;
    tf::FrameworkId framework;
};

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const auto *m : md::allModels())
        for (auto fw : m->frameworks)
            cases.push_back({m, fw});
    return cases;
}

mp::MemoryBreakdown
breakdown(const Case &c, std::int64_t batch)
{
    return tp::simulateIterationMemory(*c.model, c.model->describe(batch),
                                       tf::profileFor(c.framework),
                                       tp::OptimizerSpec{}, 0);
}

} // namespace

class MemorySweep : public ::testing::TestWithParam<Case>
{
};

TEST_P(MemorySweep, CategoriesSumToTotal)
{
    const auto &c = GetParam();
    const auto b = breakdown(c, c.model->batchSweep.front());
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < mp::kCategoryCount; ++i)
        sum += b.of(static_cast<mp::MemCategory>(i));
    EXPECT_EQ(sum, b.total());
}

TEST_P(MemorySweep, MonotoneInBatch)
{
    const auto &c = GetParam();
    std::uint64_t prev = 0;
    for (std::int64_t batch : c.model->batchSweep) {
        const auto total = breakdown(c, batch).total();
        EXPECT_GE(total, prev)
            << c.model->name << " batch " << batch;
        prev = total;
    }
}

TEST_P(MemorySweep, WeightsEqualGradients)
{
    const auto &c = GetParam();
    const auto b = breakdown(c, c.model->batchSweep.back());
    // Weight gradients mirror the parameter buffer exactly; weights may
    // additionally hold statically-allocated optimizer slots.
    EXPECT_GE(b.of(mp::MemCategory::Weights),
              b.of(mp::MemCategory::WeightGradients));
    EXPECT_GT(b.of(mp::MemCategory::WeightGradients), 0u);
}

TEST_P(MemorySweep, DynamicOnlyOnMxnet)
{
    const auto &c = GetParam();
    const auto b = breakdown(c, c.model->batchSweep.front());
    if (tf::profileFor(c.framework).dynamicOptimizerState) {
        EXPECT_GT(b.of(mp::MemCategory::Dynamic), 0u);
    } else {
        EXPECT_EQ(b.of(mp::MemCategory::Dynamic), 0u);
    }
}

TEST_P(MemorySweep, FeatureMapFractionGrowsWithBatch)
{
    // Weights are batch-invariant while feature maps grow: the feature
    // map *share* must be non-decreasing along the sweep (Obs. 12).
    const auto &c = GetParam();
    if (c.model->batchSweep.size() < 2)
        return;
    const double lo = breakdown(c, c.model->batchSweep.front())
                          .fraction(mp::MemCategory::FeatureMaps);
    const double hi = breakdown(c, c.model->batchSweep.back())
                          .fraction(mp::MemCategory::FeatureMaps);
    EXPECT_GE(hi, lo - 1e-9) << c.model->name;
}

TEST_P(MemorySweep, CapacityCeilingIsConsistent)
{
    // maxFeasibleBatch must actually fit, and the next grid point must
    // not.
    const auto &c = GetParam();
    const std::uint64_t cap = 8ull << 30;
    const auto &profile = tf::profileFor(c.framework);
    const auto max_batch = tp::maxFeasibleBatch(*c.model, profile, cap);
    if (max_batch == 0)
        return; // nothing fits (not the case for any registered model)
    EXPECT_NO_THROW(tp::simulateIterationMemory(
        *c.model, c.model->describe(max_batch), profile,
        tp::OptimizerSpec{}, cap));
    bool doubled_fits = true;
    try {
        tp::simulateIterationMemory(*c.model,
                                    c.model->describe(max_batch * 2),
                                    profile, tp::OptimizerSpec{}, cap);
    } catch (const tbd::util::FatalError &) {
        doubled_fits = false;
    }
    if (doubled_fits) {
        // The ceiling lies beyond the probed grid; that is only
        // consistent for models far below capacity (e.g. A3C).
        EXPECT_GE(max_batch, c.model->batchSweep.back()) << c.model->name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllImplementations, MemorySweep, ::testing::ValuesIn(allCases()),
    [](const auto &info) {
        std::string name =
            info.param.model->name + std::string("_") +
            tf::frameworkName(info.param.framework);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });
