/**
 * @file
 * Cross-configuration invariants of the full performance simulator:
 * metric ranges, determinism, and relations between metrics that any
 * consistent measurement pipeline must satisfy.
 */

#include <gtest/gtest.h>

#include "perf/simulator.h"

namespace tp = tbd::perf;
namespace md = tbd::models;
namespace tf = tbd::frameworks;
namespace tg = tbd::gpusim;

namespace {

struct Case
{
    const md::ModelDesc *model;
    tf::FrameworkId framework;
    std::int64_t batch;
};

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const auto *m : md::allModels()) {
        for (auto fw : m->frameworks) {
            cases.push_back({m, fw, m->batchSweep.front()});
            if (m->batchSweep.back() != m->batchSweep.front())
                cases.push_back({m, fw, m->batchSweep.back()});
        }
    }
    return cases;
}

tp::RunResult
run(const Case &c, const tg::GpuSpec &gpu = tg::quadroP4000())
{
    tp::PerfSimulator sim;
    tp::RunConfig rc;
    rc.model = c.model;
    rc.framework = c.framework;
    rc.gpu = gpu;
    rc.batch = c.batch;
    rc.enforceMemory = false; // ranges tested even past the 8 GiB wall
    return sim.run(rc);
}

} // namespace

class SimulatorSweep : public ::testing::TestWithParam<Case>
{
};

TEST_P(SimulatorSweep, MetricsInRange)
{
    const auto r = run(GetParam());
    EXPECT_GT(r.iterationUs, 0.0);
    EXPECT_GT(r.throughputSamples, 0.0);
    EXPECT_GE(r.gpuUtilization, 0.0);
    EXPECT_LE(r.gpuUtilization, 1.0 + 1e-9);
    EXPECT_GE(r.fp32Utilization, 0.0);
    EXPECT_LE(r.fp32Utilization, 1.0);
    EXPECT_GE(r.cpuUtilization, 0.0);
    EXPECT_LE(r.cpuUtilization, 1.0);
    EXPECT_GT(r.kernelsPerIteration, 0);
}

TEST_P(SimulatorSweep, Deterministic)
{
    const auto a = run(GetParam());
    const auto b = run(GetParam());
    EXPECT_DOUBLE_EQ(a.throughputSamples, b.throughputSamples);
    EXPECT_DOUBLE_EQ(a.gpuUtilization, b.gpuUtilization);
    EXPECT_DOUBLE_EQ(a.fp32Utilization, b.fp32Utilization);
    EXPECT_EQ(a.memory.total(), b.memory.total());
}

TEST_P(SimulatorSweep, ThroughputConsistentWithIterationTime)
{
    const auto &c = GetParam();
    const auto r = run(c);
    EXPECT_NEAR(r.throughputSamples,
                static_cast<double>(c.batch) / (r.iterationUs * 1e-6),
                1e-6 * r.throughputSamples);
    EXPECT_NEAR(r.throughputUnits,
                r.throughputSamples * c.model->unitsPerSample,
                1e-6 * r.throughputUnits);
}

TEST_P(SimulatorSweep, TitanXpNeverSlower)
{
    const auto &c = GetParam();
    const auto p4 = run(c);
    const auto xp = run(c, tg::titanXp());
    EXPECT_GE(xp.throughputSamples, p4.throughputSamples * 0.999)
        << c.model->name;
}

TEST_P(SimulatorSweep, FasterGpuNeverBetterUtilized)
{
    const auto &c = GetParam();
    const auto p4 = run(c);
    const auto xp = run(c, tg::titanXp());
    EXPECT_LE(xp.fp32Utilization, p4.fp32Utilization + 1e-6)
        << c.model->name;
}

TEST_P(SimulatorSweep, WarmupAtLeastAsSlowAsStable)
{
    const auto r = run(GetParam());
    ASSERT_FALSE(r.warmupIterationUs.empty());
    ASSERT_FALSE(r.sampleIterationUs.empty());
    EXPECT_GE(r.warmupIterationUs.front(),
              r.sampleIterationUs.front() * 0.999);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SimulatorSweep, ::testing::ValuesIn(allCases()),
    [](const auto &info) {
        std::string name = info.param.model->name + std::string("_") +
                           tf::frameworkName(info.param.framework) +
                           "_b" + std::to_string(info.param.batch);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });
