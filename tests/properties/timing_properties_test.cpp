/**
 * @file
 * Properties of the kernel-timing model that must hold for *any*
 * kernel on *any* device — monotonicity and bound laws a roofline
 * model owes its users.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "gpusim/kernel.h"
#include "util/rng.h"

namespace tg = tbd::gpusim;

namespace {

/** Deterministic pseudo-random kernel population. */
std::vector<tg::KernelDesc>
kernelPopulation(int count)
{
    tbd::util::Rng rng(123);
    std::vector<tg::KernelDesc> kernels;
    kernels.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        tg::KernelDesc k;
        k.name = "k" + std::to_string(i);
        k.flops = std::pow(10.0, rng.uniform(4.0, 10.0));
        k.bytes = std::pow(10.0, rng.uniform(3.0, 8.0));
        k.parallelism = std::pow(10.0, rng.uniform(2.0, 7.0));
        k.computeEff = rng.uniform(0.1, 0.9);
        k.memoryEff = rng.uniform(0.3, 0.9);
        kernels.push_back(std::move(k));
    }
    return kernels;
}

const std::vector<const tg::GpuSpec *> kDevices = {
    &tg::quadroP4000(), &tg::titanXp()};

} // namespace

TEST(TimingProperties, DurationPositiveAndUtilInRange)
{
    for (const auto *gpu : kDevices) {
        for (const auto &k : kernelPopulation(200)) {
            const auto t = tg::timeKernel(*gpu, k);
            EXPECT_GE(t.durationUs, tg::kKernelTailUs);
            EXPECT_GE(t.fp32Util, 0.0) << k.name;
            EXPECT_LE(t.fp32Util, 1.0) << k.name;
        }
    }
}

TEST(TimingProperties, MoreFlopsNeverFaster)
{
    for (const auto *gpu : kDevices) {
        for (auto k : kernelPopulation(50)) {
            const auto base = tg::timeKernel(*gpu, k);
            k.flops *= 2.0;
            const auto doubled = tg::timeKernel(*gpu, k);
            EXPECT_GE(doubled.durationUs, base.durationUs) << k.name;
        }
    }
}

TEST(TimingProperties, MoreBytesNeverFaster)
{
    for (const auto *gpu : kDevices) {
        for (auto k : kernelPopulation(50)) {
            const auto base = tg::timeKernel(*gpu, k);
            k.bytes *= 4.0;
            const auto heavier = tg::timeKernel(*gpu, k);
            EXPECT_GE(heavier.durationUs, base.durationUs) << k.name;
        }
    }
}

TEST(TimingProperties, MoreParallelismNeverSlower)
{
    for (const auto *gpu : kDevices) {
        for (auto k : kernelPopulation(50)) {
            const auto base = tg::timeKernel(*gpu, k);
            k.parallelism *= 8.0;
            const auto wider = tg::timeKernel(*gpu, k);
            EXPECT_LE(wider.durationUs, base.durationUs + 1e-9) << k.name;
        }
    }
}

TEST(TimingProperties, UtilizationBoundedByComputeEff)
{
    // Measured FP32 utilization can never exceed the kernel's
    // compute-efficiency ceiling.
    for (const auto *gpu : kDevices) {
        for (const auto &k : kernelPopulation(200)) {
            const auto t = tg::timeKernel(*gpu, k);
            EXPECT_LE(t.fp32Util, k.computeEff + 1e-9) << k.name;
        }
    }
}

TEST(TimingProperties, RooflineLowerBounds)
{
    // Duration is never below either roofline term alone.
    for (const auto *gpu : kDevices) {
        for (const auto &k : kernelPopulation(100)) {
            const auto t = tg::timeKernel(*gpu, k);
            const double mem_floor_us =
                k.bytes / (gpu->memoryBwGBs * 1e9 * k.memoryEff) * 1e6;
            const double compute_floor_us =
                k.flops / (gpu->peakFlops() * k.computeEff) * 1e6;
            EXPECT_GE(t.durationUs + 1e-9, mem_floor_us) << k.name;
            EXPECT_GE(t.durationUs + 1e-9, compute_floor_us) << k.name;
        }
    }
}

TEST(TimingProperties, WiderGpuNeverSlowerNeverBetterUtilized)
{
    // For identical work the TITAN Xp finishes no later and achieves no
    // higher fraction of its (larger) peak — the paper's Obs. 10 as a
    // universal property of the model.
    for (const auto &k : kernelPopulation(200)) {
        const auto p4 = tg::timeKernel(tg::quadroP4000(), k);
        const auto xp = tg::timeKernel(tg::titanXp(), k);
        EXPECT_LE(xp.durationUs, p4.durationUs + 1e-9) << k.name;
        EXPECT_LE(xp.fp32Util, p4.fp32Util + 1e-9) << k.name;
    }
}
