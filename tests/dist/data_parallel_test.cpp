#include "dist/data_parallel.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace td = tbd::dist;
namespace md = tbd::models;
namespace tf = tbd::frameworks;
namespace tg = tbd::gpusim;

namespace {

td::ScalingResult
run(int machines, int gpus_per_machine, const td::LinkSpec &network,
    std::int64_t batch = 32)
{
    td::ClusterConfig cluster;
    cluster.machines = machines;
    cluster.gpusPerMachine = gpus_per_machine;
    cluster.network = network;
    return td::simulateDataParallel(md::resnet50(),
                                    tf::FrameworkId::MXNet,
                                    tg::quadroP4000(), batch, cluster);
}

} // namespace

TEST(DataParallel, SingleGpuHasNoCommunication)
{
    auto r = run(1, 1, td::infiniband100G());
    EXPECT_EQ(r.totalGpus, 1);
    EXPECT_DOUBLE_EQ(r.commUs, 0.0);
    EXPECT_DOUBLE_EQ(r.scalingEfficiency, 1.0);
}

TEST(DataParallel, MultiGpuSingleMachineScalesWell)
{
    // Observation 13: PCIe gives enough bandwidth within one machine.
    auto one = run(1, 1, td::infiniband100G());
    auto two = run(1, 2, td::infiniband100G());
    auto four = run(1, 4, td::infiniband100G());
    EXPECT_GT(two.throughputSamples, 1.8 * one.throughputSamples);
    EXPECT_GT(four.throughputSamples, 3.4 * one.throughputSamples);
    EXPECT_GT(four.scalingEfficiency, 0.85);
}

TEST(DataParallel, EthernetDegradesBelowSingleGpu)
{
    // Fig. 10: two machines over Ethernet fall *below* one GPU.
    auto one = run(1, 1, td::infiniband100G());
    auto eth = run(2, 1, td::ethernet1G());
    EXPECT_LT(eth.throughputSamples, one.throughputSamples);
    EXPECT_GT(eth.exposedCommUs, eth.computeUs); // network-bound
}

TEST(DataParallel, InfinibandRestoresScaling)
{
    auto one = run(1, 1, td::infiniband100G());
    auto ib = run(2, 1, td::infiniband100G());
    EXPECT_GT(ib.throughputSamples, 1.7 * one.throughputSamples);
}

TEST(DataParallel, Figure10Ordering)
{
    // eth 2M1G < 1M1G < ib 2M1G <= 1M2G < 1M4G.
    auto m1g1 = run(1, 1, td::infiniband100G());
    auto eth = run(2, 1, td::ethernet1G());
    auto ib = run(2, 1, td::infiniband100G());
    auto m1g2 = run(1, 2, td::infiniband100G());
    auto m1g4 = run(1, 4, td::infiniband100G());
    EXPECT_LT(eth.throughputSamples, m1g1.throughputSamples);
    EXPECT_LT(m1g1.throughputSamples, ib.throughputSamples);
    EXPECT_LE(ib.throughputSamples, 1.05 * m1g2.throughputSamples);
    EXPECT_LT(m1g2.throughputSamples, m1g4.throughputSamples);
}

TEST(DataParallel, AllReduceBeatsParameterServerOverEthernet)
{
    td::ClusterConfig ps;
    ps.machines = 4;
    ps.gpusPerMachine = 1;
    ps.network = td::ethernet1G();
    ps.strategy = td::SyncStrategy::ParameterServer;
    td::ClusterConfig ring = ps;
    ring.strategy = td::SyncStrategy::RingAllReduce;

    auto ps_r = td::simulateDataParallel(md::resnet50(),
                                         tf::FrameworkId::MXNet,
                                         tg::quadroP4000(), 32, ps);
    auto ring_r = td::simulateDataParallel(md::resnet50(),
                                           tf::FrameworkId::MXNet,
                                           tg::quadroP4000(), 32, ring);
    // The PS NIC serializes all workers' pushes; the ring amortizes.
    EXPECT_GT(ring_r.throughputSamples, ps_r.throughputSamples);
}

TEST(DataParallel, SmallModelsTolerateSlowNetworks)
{
    // A3C's ~1.3M-parameter network ships in ~10 MB: even 1 GbE
    // keeps up with its environment-bound iterations.
    td::ClusterConfig cluster;
    cluster.machines = 2;
    cluster.gpusPerMachine = 1;
    cluster.network = td::ethernet1G();
    auto r = td::simulateDataParallel(md::a3c(), tf::FrameworkId::MXNet,
                                      tg::quadroP4000(), 64, cluster);
    EXPECT_GT(r.scalingEfficiency, 0.8);
}

TEST(DataParallel, LabelFormatsLikeFigure10)
{
    td::ClusterConfig cluster;
    cluster.machines = 2;
    cluster.gpusPerMachine = 1;
    cluster.network = td::ethernet1G();
    EXPECT_EQ(cluster.label(), "2M1G (1 GbE)");
    cluster.machines = 1;
    cluster.gpusPerMachine = 4;
    EXPECT_EQ(cluster.label(), "1M4G");
}

TEST(DataParallel, RejectsBadCluster)
{
    td::ClusterConfig cluster;
    cluster.machines = 0;
    EXPECT_THROW(td::simulateDataParallel(md::resnet50(),
                                          tf::FrameworkId::MXNet,
                                          tg::quadroP4000(), 32, cluster),
                 tbd::util::FatalError);
}

TEST(DataParallel, GradientCompressionRecoversEthernet)
{
    td::ClusterConfig eth{2, 1, td::ethernet1G()};
    auto plain = run(2, 1, td::ethernet1G());
    td::ClusterConfig compressed = eth;
    compressed.gradientCompression = 32.0; // 1-bit SGD
    auto packed = td::simulateDataParallel(
        md::resnet50(), tf::FrameworkId::MXNet, tg::quadroP4000(), 32,
        compressed);
    EXPECT_GT(packed.throughputSamples, 2.0 * plain.throughputSamples);
    EXPECT_LT(packed.exposedCommUs, plain.exposedCommUs);
}

TEST(DataParallel, RejectsCompressionBelowOne)
{
    td::ClusterConfig cluster{2, 1, td::ethernet1G()};
    cluster.gradientCompression = 0.5;
    EXPECT_THROW(td::simulateDataParallel(md::resnet50(),
                                          tf::FrameworkId::MXNet,
                                          tg::quadroP4000(), 32, cluster),
                 tbd::util::FatalError);
}
