#include "dist/collective.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "dist/topology.h"

using namespace tbd;
using namespace tbd::dist;

namespace {

/** Uniform zero-latency ring of `n` GPUs at `gbs` GB/s per link. */
Topology
uniformRing(int n, double gbs)
{
    Topology topo("uniform-ring");
    LinkSpec wire;
    wire.name = "test-wire";
    wire.bandwidthGBs = gbs;
    wire.latencyUs = 0.0;
    for (int i = 0; i < n; ++i)
        topo.addNode("gpu" + std::to_string(i), NodeKind::Gpu);
    for (int i = 0; i < n; ++i)
        topo.addEdge(i, (i + 1) % n, wire);
    return topo;
}

CommCost
costOf(const char *collective, const Topology &topo, double bytes)
{
    const auto spec = findCollective(collective);
    EXPECT_TRUE(spec.has_value()) << collective;
    return costPlan(topo, spec->plan(topo, bytes));
}

} // namespace

TEST(CollectiveProperty, RingMatchesClosedFormOnUniformRing)
{
    // On a zero-latency uniform ring the costed plan must reproduce
    // the textbook ring all-reduce bound 2*S*(n-1)/n / BW exactly —
    // this is the tripwire that pins the whole contention model.
    for (int n : {2, 4, 8, 16}) {
        const double gbs = 10.0;
        const double bytes = 6.4e8;
        const Topology topo = uniformRing(n, gbs);
        const CommCost cost = costOf("ring", topo, bytes);
        const double closed =
            2.0 * bytes * (n - 1.0) / n / (gbs * 1e9) * 1e6;
        EXPECT_NEAR(cost.totalUs, closed, 1e-9 * closed) << "n=" << n;
    }
}

TEST(CollectiveProperty, RingStepAndByteCounts)
{
    const Topology topo = uniformRing(8, 10.0);
    const auto plan = findCollective("ring")->plan(topo, 8e6);
    // 2(n-1) steps; every step moves S/n per worker, so the plan as a
    // whole moves 2(n-1)*S bytes.
    EXPECT_EQ(plan.steps.size(), 14u);
    for (const auto &step : plan.steps)
        EXPECT_EQ(step.transfers.size(), 8u);
    EXPECT_NEAR(plan.totalBytes(), 2.0 * 7.0 * 8e6, 1e-6);
}

TEST(CollectiveProperty, TreeUsesLogRounds)
{
    for (int n : {2, 5, 8, 16, 64}) {
        const Topology topo =
            builders::fatTree(n, infiniband100G());
        const auto plan = findCollective("tree")->plan(topo, 1e6);
        const auto rounds = static_cast<std::size_t>(
            std::ceil(std::log2(static_cast<double>(n))));
        EXPECT_EQ(plan.steps.size(), 2 * rounds) << "n=" << n;
    }
}

TEST(CollectiveProperty, ParameterServerUsesTwoSteps)
{
    const Topology topo = builders::paperCluster(2, 4, ethernet1G());
    const auto plan =
        findCollective("parameter-server")->plan(topo, 1e6);
    ASSERT_EQ(plan.steps.size(), 2u);
    // Push from every non-server worker, then pull to every one.
    EXPECT_EQ(plan.steps[0].transfers.size(), 7u);
    EXPECT_EQ(plan.steps[1].transfers.size(), 7u);
}

TEST(CollectiveProperty, TreeBeatsRingAtSmallPayloads)
{
    // Latency-dominated regime: tree pays 2*ceil(log2 n) latency
    // rounds versus the ring's 2(n-1).
    const Topology topo = builders::fatTree(16, infiniband100G());
    const double bytes = 1024.0;
    const CommCost tree = costOf("tree", topo, bytes);
    const CommCost ring = costOf("ring", topo, bytes);
    EXPECT_LT(tree.totalUs, ring.totalUs);
}

TEST(CollectiveProperty, RingBeatsTreeAtLargePayloads)
{
    // Bandwidth-dominated regime: the ring moves S/n chunks, the tree
    // moves the full payload every round.
    const Topology topo = builders::fatTree(16, infiniband100G());
    const double bytes = 4e8;
    const CommCost tree = costOf("tree", topo, bytes);
    const CommCost ring = costOf("ring", topo, bytes);
    EXPECT_LT(ring.totalUs, tree.totalUs);
}

TEST(CollectiveProperty, HierarchicalNoWorseThanFlatRingOnTwoLevel)
{
    // Two machines of four GPUs over 1 GbE: the flat ring drags the
    // full (n-1)/n payload across the slow network, the hierarchical
    // policy only ships (k-1)/k of it between the two island leaders.
    const Topology topo = builders::paperCluster(2, 4, ethernet1G());
    const double bytes = 1e8;
    const CommCost hier = costOf("hierarchical", topo, bytes);
    const CommCost ring = costOf("ring", topo, bytes);
    EXPECT_LE(hier.totalUs, ring.totalUs);
    // And the gap is structural, not a rounding artifact.
    EXPECT_LT(hier.totalUs, 0.75 * ring.totalUs);
}

TEST(CollectiveProperty, HierarchicalDegeneratesToRingOnOneIsland)
{
    // A single island has no inter-island tier; the policy must
    // delegate to the flat ring rather than reduce to one GPU.
    const Topology topo = builders::nvlinkIsland(8);
    const double bytes = 1e7;
    const CommCost hier = costOf("hierarchical", topo, bytes);
    const CommCost ring = costOf("ring", topo, bytes);
    EXPECT_DOUBLE_EQ(hier.totalUs, ring.totalUs);
}

TEST(CollectiveProperty, FullDuplexOppositeDirectionsDoNotContend)
{
    Topology topo("pair");
    LinkSpec wire;
    wire.name = "test-wire";
    wire.bandwidthGBs = 10.0;
    wire.latencyUs = 0.0;
    const int a = topo.addNode("gpu0", NodeKind::Gpu);
    const int b = topo.addNode("gpu1", NodeKind::Gpu);
    topo.addEdge(a, b, wire);

    const double bytes = 1e8;
    CommPlan oneWay;
    oneWay.collective = "test";
    oneWay.steps.push_back({{{a, b, bytes}}});
    CommPlan bothWays;
    bothWays.collective = "test";
    bothWays.steps.push_back({{{a, b, bytes}, {b, a, bytes}}});

    // Full duplex: the reverse transfer rides the other direction of
    // the same link, so the step is no slower.
    EXPECT_DOUBLE_EQ(costPlan(topo, bothWays).totalUs,
                     costPlan(topo, oneWay).totalUs);

    // Two transfers in the SAME direction do serialize.
    CommPlan sameWay;
    sameWay.collective = "test";
    sameWay.steps.push_back({{{a, b, bytes}, {a, b, bytes}}});
    EXPECT_DOUBLE_EQ(costPlan(topo, sameWay).totalUs,
                     2.0 * costPlan(topo, oneWay).totalUs);
}

TEST(CollectiveProperty, SingleGpuPlansAreEmpty)
{
    const Topology topo =
        builders::paperCluster(1, 1, infiniband100G());
    for (const auto &name : collectiveNames()) {
        const auto plan = findCollective(name)->plan(topo, 1e6);
        EXPECT_TRUE(plan.steps.empty()) << name;
        const CommCost cost = costPlan(topo, plan);
        EXPECT_EQ(cost.totalUs, 0.0) << name;
        EXPECT_TRUE(cost.busiestEdge.empty()) << name;
    }
}

TEST(CollectiveProperty, CompressionScalesRingCostLinearly)
{
    // Zero-latency ring: halving the payload halves the plan cost —
    // the gradient-compression ablation depends on this linearity.
    const Topology topo = uniformRing(8, 10.0);
    const double full = costOf("ring", topo, 4e8).totalUs;
    const double half = costOf("ring", topo, 2e8).totalUs;
    EXPECT_NEAR(half, full / 2.0, 1e-9 * full);
}

TEST(CollectiveRegistry, BuiltinsResolveAndAreDocumented)
{
    const std::set<std::string> expected = {
        "parameter-server", "ring", "tree", "hierarchical"};
    for (const auto &name : expected) {
        const auto spec = findCollective(name);
        ASSERT_TRUE(spec.has_value()) << name;
        EXPECT_EQ(spec->name, name);
        EXPECT_FALSE(spec->description.empty()) << name;
        EXPECT_TRUE(static_cast<bool>(spec->plan)) << name;
    }
    EXPECT_FALSE(findCollective("all-gather").has_value());

    // Every doc-table row must name a registered collective, and every
    // builtin must appear in the table (tbd::lint enforces the same).
    std::set<std::string> documented;
    for (const auto &[name, summary] : collectiveDocTable()) {
        EXPECT_TRUE(findCollective(name).has_value()) << name;
        EXPECT_FALSE(summary.empty()) << name;
        documented.insert(name);
    }
    for (const auto &name : expected)
        EXPECT_TRUE(documented.count(name)) << name;
}

TEST(CollectiveRegistry, RegisterReplacesByName)
{
    CollectiveSpec spec;
    spec.name = "test-collective";
    spec.description = "registered by the collective test";
    spec.plan = [](const Topology &, double) { return CommPlan{}; };
    registerCollective(spec);
    ASSERT_TRUE(findCollective("test-collective").has_value());

    spec.description = "replaced";
    registerCollective(spec);
    EXPECT_EQ(findCollective("test-collective")->description,
              "replaced");
    int hits = 0;
    for (const auto &name : collectiveNames())
        hits += name == "test-collective" ? 1 : 0;
    EXPECT_EQ(hits, 1);
}
