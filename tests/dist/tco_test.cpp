#include "dist/tco.h"

#include <cmath>

#include <gtest/gtest.h>

#include "models/model_desc.h"

namespace td = tbd::dist;
namespace md = tbd::models;
namespace tf = tbd::frameworks;
namespace tg = tbd::gpusim;

namespace {

td::DistResult
simulate(const char *topology, const char *collective, int workers)
{
    td::DistConfig dc;
    dc.topology = *td::findTopology(topology);
    dc.collective = *td::findCollective(collective);
    dc.workers = workers;
    return td::simulateDistributed(md::resnet50(),
                                   tf::FrameworkId::MXNet,
                                   tg::quadroP4000(), 32, dc);
}

} // namespace

TEST(Tco, ClusterPriceCountsGpusAndHosts)
{
    // infiniband-flat packs 4 GPUs per host: 8 workers rent 8 GPU
    // shares plus 2 host premiums.
    const auto spec = *td::findTopology("infiniband-flat");
    EXPECT_DOUBLE_EQ(td::clusterUsdPerHour(spec, 8),
                     8 * spec.gpuHourUsd + 2 * spec.hostHourUsd);
    // Twice the workers, twice the hosts: price scales linearly here.
    EXPECT_DOUBLE_EQ(td::clusterUsdPerHour(spec, 16),
                     2.0 * td::clusterUsdPerHour(spec, 8));
}

TEST(Tco, PriceResultDividesDollarsByThroughput)
{
    const auto spec = *td::findTopology("infiniband-flat");
    const td::DistResult r = simulate("infiniband-flat", "ring", 8);
    const td::TcoPoint p = td::priceResult(spec, r);
    EXPECT_DOUBLE_EQ(p.usdPerHour, td::clusterUsdPerHour(spec, 8));
    // $/Msamples = $/hour / (samples/s * 3600) * 1e6.
    EXPECT_NEAR(p.usdPerMSamples,
                p.usdPerHour / (r.throughputSamples * 3600.0) * 1e6,
                1e-9 * p.usdPerMSamples);
}

TEST(Tco, ZeroThroughputPricesAtInfinity)
{
    const auto spec = *td::findTopology("infiniband-flat");
    td::DistResult r;
    r.workers = 8;
    r.throughputSamples = 0.0;
    EXPECT_TRUE(std::isinf(td::priceResult(spec, r).usdPerMSamples));
}

TEST(Tco, CheapestAtTargetPicksLowestPrice)
{
    std::vector<td::TcoPoint> points;
    for (int workers : {8, 16, 32}) {
        const auto spec = *td::findTopology("infiniband-flat");
        points.push_back(
            td::priceResult(spec, simulate("infiniband-flat", "ring",
                                           workers)));
    }
    // A modest target: the smallest (cheapest) cluster that reaches it
    // wins, not the fastest.
    const double target =
        points[0].result.throughputSamples * 0.9;
    const auto pick = td::cheapestAtTarget(points, target);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(pick->result.workers, 8);

    // A target above every point yields nothing.
    const double unreachable =
        points[2].result.throughputSamples * 10.0;
    EXPECT_FALSE(
        td::cheapestAtTarget(points, unreachable).has_value());
}

TEST(Tco, CheapestAtTargetBreaksPriceTiesByThroughput)
{
    td::TcoPoint slow;
    slow.result.workers = 4;
    slow.result.throughputSamples = 100.0;
    slow.usdPerHour = 10.0;
    td::TcoPoint fast = slow;
    fast.result.workers = 5;
    fast.result.throughputSamples = 150.0;
    const auto pick = td::cheapestAtTarget({slow, fast}, 50.0);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(pick->result.workers, 5);
}

TEST(Tco, NvlinkPremiumShowsUpInPrice)
{
    // The NVLink island rents above the flat InfiniBand cluster at
    // equal scale; whether it wins on $/Msamples is a throughput
    // question, but the $/hour ordering is fixed by the price book.
    const auto island = *td::findTopology("nvlink-island");
    const auto flat = *td::findTopology("infiniband-flat");
    EXPECT_GT(td::clusterUsdPerHour(island, 16),
              td::clusterUsdPerHour(flat, 16));
}
