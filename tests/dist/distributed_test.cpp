#include "dist/distributed.h"

#include <gtest/gtest.h>

#include "models/model_desc.h"
#include "perf/simulator.h"
#include "util/logging.h"

namespace td = tbd::dist;
namespace md = tbd::models;
namespace tf = tbd::frameworks;
namespace tg = tbd::gpusim;
namespace tp = tbd::perf;

namespace {

td::DistConfig
config(const char *topology, const char *collective, int workers,
       double compression = 1.0)
{
    td::DistConfig dc;
    dc.topology = *td::findTopology(topology);
    dc.collective = *td::findCollective(collective);
    dc.workers = workers;
    dc.gradientCompression = compression;
    return dc;
}

td::DistResult
run(const char *topology, const char *collective, int workers,
    double compression = 1.0, std::int64_t batch = 32)
{
    return td::simulateDistributed(
        md::resnet50(), tf::FrameworkId::MXNet, tg::quadroP4000(),
        batch, config(topology, collective, workers, compression));
}

} // namespace

TEST(Distributed, SingleWorkerHasNoCommunication)
{
    auto r = run("paper-1m1g", "ring", 0);
    EXPECT_EQ(r.workers, 1);
    EXPECT_DOUBLE_EQ(r.commUs, 0.0);
    EXPECT_DOUBLE_EQ(r.exposedCommUs, 0.0);
    EXPECT_DOUBLE_EQ(r.scalingEfficiency, 1.0);
    EXPECT_TRUE(r.busiestEdge.empty());
}

TEST(Distributed, ZeroWorkersUsesFixedWorkers)
{
    auto r = run("paper-2m1g-ib", "ring", 0);
    EXPECT_EQ(r.workers, 2);
}

TEST(Distributed, RejectsWorkerMismatchOnPinnedShape)
{
    EXPECT_THROW(run("paper-2m1g-ib", "ring", 4),
                 tbd::util::FatalError);
}

TEST(Distributed, RejectsZeroWorkersOnScalableShape)
{
    EXPECT_THROW(run("infiniband-flat", "ring", 0),
                 tbd::util::FatalError);
}

TEST(Distributed, EthernetCollapsesScalingEfficiency)
{
    // Observation 13 on the graph engine: 1 GbE cannot carry
    // ResNet-50's ~100 MB of gradients per iteration, so most of the
    // iteration is exposed gradient exchange.
    auto eth = run("ethernet-flat", "ring", 8);
    EXPECT_LT(eth.scalingEfficiency, 0.5);
    EXPECT_GT(eth.commShare, 0.5);
}

TEST(Distributed, InfinibandRecoversScaling)
{
    auto eth = run("ethernet-flat", "ring", 8);
    auto ib = run("infiniband-flat", "ring", 8);
    EXPECT_GT(ib.throughputSamples, 2.0 * eth.throughputSamples);
    EXPECT_GT(ib.scalingEfficiency, 0.7);
    EXPECT_LT(ib.commShare, eth.commShare);
}

TEST(Distributed, CompressionRecoversEthernetScaling)
{
    // The other Observation 13 remedy: 1-bit-style compression cuts
    // the payload 32x and the slow fabric stops being the bottleneck.
    auto plain = run("ethernet-flat", "ring", 8);
    auto packed = run("ethernet-flat", "ring", 8, 32.0);
    EXPECT_GT(packed.throughputSamples,
              2.0 * plain.throughputSamples);
    EXPECT_NEAR(packed.gradBytes, plain.gradBytes / 32.0,
                1e-6 * plain.gradBytes);
}

TEST(Distributed, CommShareGrowsWithWorkers)
{
    // More ring steps and a fixed per-worker batch: communication
    // takes a growing share of the iteration as the ring widens.
    double prev = -1.0;
    for (int workers : {8, 16, 32, 64}) {
        auto r = run("ethernet-flat", "ring", workers);
        EXPECT_GT(r.commShare, prev) << "workers=" << workers;
        prev = r.commShare;
    }
}

TEST(Distributed, PrecomputedBaselineGivesIdenticalResult)
{
    // Sweeps pass the single-GPU RunResult so each cell is cheap; the
    // shortcut must be bitwise-identical to the self-computed path.
    tp::RunConfig base;
    base.model = &md::resnet50();
    base.framework = tf::FrameworkId::MXNet;
    base.gpu = tg::quadroP4000();
    base.batch = 32;
    const tp::RunResult single = tp::PerfSimulator().run(base);

    const td::DistConfig dc = config("nvlink-island", "ring", 16);
    auto self = td::simulateDistributed(md::resnet50(),
                                        tf::FrameworkId::MXNet,
                                        tg::quadroP4000(), 32, dc);
    auto fast = td::simulateDistributed(md::resnet50(),
                                        tf::FrameworkId::MXNet,
                                        tg::quadroP4000(), 32, dc,
                                        &single);
    EXPECT_EQ(self.computeUs, fast.computeUs);
    EXPECT_EQ(self.commUs, fast.commUs);
    EXPECT_EQ(self.iterationUs, fast.iterationUs);
    EXPECT_EQ(self.throughputSamples, fast.throughputSamples);
}

TEST(Distributed, LabelNamesShapeScaleAndCollective)
{
    EXPECT_EQ(config("nvlink-island", "ring", 16).label(),
              "nvlink-island x16 (ring)");
    EXPECT_EQ(config("ethernet-flat", "tree", 8, 32.0).label(),
              "ethernet-flat x8 (tree) /32");
    auto r = run("nvlink-island", "ring", 16);
    EXPECT_EQ(r.label, "nvlink-island x16 (ring)");
}

TEST(Distributed, BusiestEdgeNamesTheBottleneckFabric)
{
    // Cross-island traffic on nvlink-island funnels through the IB
    // switch; the flat ethernet ring saturates 1 GbE.
    auto island = run("nvlink-island", "ring", 16);
    EXPECT_EQ(island.busiestEdge, td::infiniband100G().name);
    auto eth = run("ethernet-flat", "ring", 8);
    EXPECT_EQ(eth.busiestEdge, td::ethernet1G().name);
}

TEST(Distributed, HierarchicalBeatsFlatRingOnSlowFabric)
{
    auto flat = run("ethernet-flat", "ring", 16);
    auto hier = run("ethernet-flat", "hierarchical", 16);
    EXPECT_GT(hier.throughputSamples, flat.throughputSamples);
}

TEST(Distributed, RejectsCompressionBelowOne)
{
    EXPECT_THROW(run("infiniband-flat", "ring", 8, 0.5),
                 tbd::util::FatalError);
}
