/**
 * @file
 * Property tests over the collective/topology registries: every
 * registered collective must emit a conservation-valid, deadlock-free,
 * route-clean plan for every registered topology across worker counts
 * 2..64 (the static guarantee the distributed scaling figures lean
 * on), with the builtin plan shapes pinned against their closed
 * forms. Uses lint::ir's plan verifier as a library — the same checker
 * the dist.plan-* lint rules run.
 */

#include "lint/ir.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "dist/collective.h"
#include "dist/topology.h"

namespace ir = tbd::lint::ir;
namespace td = tbd::dist;

namespace {

constexpr double kBytes = 4e8; // 100M FP32 gradients

std::vector<int>
probeCounts(const td::TopologySpec &spec)
{
    if (spec.fixedWorkers > 0)
        return {spec.fixedWorkers};
    return {2, 4, 8, 16, 32, 64};
}

TEST(DistPlanProperty, EveryCollectiveConservesOnEveryTopology)
{
    std::size_t cells = 0;
    for (const auto &topo_name : td::topologyNames()) {
        const auto spec = td::findTopology(topo_name);
        ASSERT_TRUE(spec.has_value());
        for (const int workers : probeCounts(*spec)) {
            const td::Topology topo = spec->build(workers);
            ASSERT_TRUE(topo.connected()) << topo_name;
            for (const auto &coll_name : td::collectiveNames()) {
                const auto coll = td::findCollective(coll_name);
                ASSERT_TRUE(coll.has_value());
                const auto plan = coll->plan(topo, kBytes);
                const auto cell = coll_name + "@" + topo_name + ":n=" +
                                  std::to_string(workers);
                const auto pc = ir::checkPlan(topo, plan, kBytes);
                EXPECT_TRUE(pc.route.empty()) << cell;
                EXPECT_TRUE(pc.conservation.empty()) << cell;
                EXPECT_TRUE(pc.deadlock.empty()) << cell;
                EXPECT_TRUE(pc.contention.empty()) << cell;
                if (workers >= 2) {
                    // Belt and braces: the raw interpreter agrees.
                    const auto f = ir::executePlan(
                        topo, plan, kBytes,
                        ir::StepSemantics::Snapshot);
                    for (const auto &row : f)
                        for (const double frac : row)
                            EXPECT_GE(frac, 1.0 - 1e-9) << cell;
                    const double cost =
                        td::costPlan(topo, plan).totalUs;
                    EXPECT_TRUE(std::isfinite(cost)) << cell;
                    EXPECT_GT(cost, 0.0) << cell;
                }
                ++cells;
            }
        }
    }
    // 9 shipped topologies x 4 collectives: the sweep must actually
    // have covered the registry, not vacuously passed.
    EXPECT_GE(cells, 100u);
}

TEST(DistPlanProperty, BuiltinPlansMatchTheirClosedForms)
{
    for (const int n : {2, 4, 8, 16, 32, 64}) {
        td::Topology topo("uniform");
        for (int i = 0; i < n; ++i)
            topo.addNode("gpu" + std::to_string(i), td::NodeKind::Gpu);
        for (int i = 0; i < n; ++i)
            topo.addEdge(i, (i + 1) % n,
                         td::LinkSpec{"wire", 10.0, 1.0});

        // Ring: 2(n-1) steps of n concurrent 1/n shards.
        const auto ring =
            td::findCollective("ring")->plan(topo, kBytes);
        ASSERT_EQ(ring.steps.size(), 2u * (n - 1));
        for (const auto &step : ring.steps) {
            ASSERT_EQ(step.transfers.size(), static_cast<std::size_t>(n));
            for (const auto &t : step.transfers)
                EXPECT_DOUBLE_EQ(t.bytes, kBytes / n);
        }
        EXPECT_NEAR(ring.totalBytes(), 2.0 * (n - 1) * kBytes,
                    1e-6 * kBytes);

        // Parameter server: push + pull of full payloads.
        const auto ps = td::findCollective("parameter-server")
                            ->plan(topo, kBytes);
        ASSERT_EQ(ps.steps.size(), 2u);
        EXPECT_EQ(ps.steps[0].transfers.size(),
                  static_cast<std::size_t>(n - 1));
        EXPECT_EQ(ps.steps[1].transfers.size(),
                  static_cast<std::size_t>(n - 1));
        EXPECT_NEAR(ps.totalBytes(), 2.0 * (n - 1) * kBytes,
                    1e-6 * kBytes);

        // Tree: 2*ceil(log2 n) full-payload rounds.
        const auto tree =
            td::findCollective("tree")->plan(topo, kBytes);
        const auto rounds = static_cast<std::size_t>(
            std::ceil(std::log2(static_cast<double>(n))));
        EXPECT_EQ(tree.steps.size(), 2u * rounds);
    }
}

TEST(DistPlanProperty, VerifierDetectsABrokenRegistration)
{
    // The detection path end to end: register a collective whose plan
    // moves the payload to exactly one neighbour and stops — lossy
    // under any step semantics — watch the verifier object, then
    // restore the registry and prove the removal took.
    td::registerCollective(
        {"prop-lossy", "one transfer then silence (fixture)",
         [](const td::Topology &topo, double bytes) {
             td::CommPlan plan;
             plan.collective = "prop-lossy";
             const auto &gpus = topo.gpus();
             if (gpus.size() >= 2)
                 plan.steps.push_back({{{gpus[0], gpus[1], bytes}}});
             return plan;
         }});
    const auto spec = td::findTopology("ethernet-flat");
    ASSERT_TRUE(spec.has_value());
    const td::Topology topo = spec->build(4);
    const auto lossy = td::findCollective("prop-lossy");
    ASSERT_TRUE(lossy.has_value());
    const auto pc =
        ir::checkPlan(topo, lossy->plan(topo, kBytes), kBytes);
    EXPECT_FALSE(pc.conservation.empty());

    EXPECT_TRUE(td::unregisterCollective("prop-lossy"));
    EXPECT_FALSE(td::findCollective("prop-lossy").has_value());
    EXPECT_FALSE(td::unregisterCollective("prop-lossy"));
}

} // namespace
