/**
 * @file
 * The dist memo layer (dist/sim_cache.h): shared topologies, route
 * memoization and the plan-cost cache reused across sweep cells — all
 * bitwise-transparent against the uncached path and invalidated by
 * registry redefinition.
 */

#include "dist/sim_cache.h"

#include <gtest/gtest.h>

#include <optional>

#include "dist/distributed.h"
#include "models/model_desc.h"
#include "perf/lowering_cache.h"
#include "perf/simulator.h"

namespace td = tbd::dist;
namespace tp = tbd::perf;
namespace md = tbd::models;
namespace tf = tbd::frameworks;
namespace tg = tbd::gpusim;

namespace {

struct FastPathGuard
{
    explicit FastPathGuard(bool enabled)
    {
        tp::setFastPathsEnabled(enabled);
    }
    ~FastPathGuard() { tp::setFastPathsEnabled(std::nullopt); }
};

td::DistConfig
ringConfig(int workers)
{
    td::DistConfig dc;
    dc.topology = *td::findTopology("nvlink-island");
    dc.collective = *td::findCollective("ring");
    dc.workers = workers;
    return dc;
}

td::DistResult
simulate(const td::DistConfig &dc, const tp::RunResult &single)
{
    return td::simulateDistributed(md::resnet50(),
                                   tf::FrameworkId::MXNet,
                                   tg::quadroP4000(), 16, dc, &single);
}

} // namespace

TEST(DistSimCache, SharedTopologyReusesOneGraphPerShape)
{
    td::clearDistMemos();
    FastPathGuard guard(true);
    const td::TopologySpec spec = *td::findTopology("nvlink-island");
    const auto a = td::sharedTopology(spec, 8);
    const auto b = td::sharedTopology(spec, 8);
    const auto c = td::sharedTopology(spec, 16);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a.get(), b.get()); // same shape ⇒ same instance
    EXPECT_NE(a.get(), c.get()); // different worker count
    EXPECT_EQ(td::topologyFingerprint(*a), td::topologyFingerprint(*b));
    EXPECT_NE(td::topologyFingerprint(*a), td::topologyFingerprint(*c));
}

TEST(DistSimCache, FingerprintSeesGraphDetail)
{
    td::Topology a("t");
    a.addNode("gpu0", td::NodeKind::Gpu);
    a.addNode("gpu1", td::NodeKind::Gpu);
    a.addEdge(0, 1, {"nvlink", 80.0, 1.0});

    td::Topology b("t");
    b.addNode("gpu0", td::NodeKind::Gpu);
    b.addNode("gpu1", td::NodeKind::Gpu);
    b.addEdge(0, 1, {"nvlink", 40.0, 1.0}); // slower link

    EXPECT_NE(td::topologyFingerprint(a), td::topologyFingerprint(b));
}

TEST(DistSimCache, PlanCostMemoHitsAreBitwise)
{
    td::clearDistMemos();
    FastPathGuard guard(true);
    const tp::RunResult single = [] {
        tp::RunConfig rc;
        rc.model = &md::resnet50();
        rc.framework = tf::FrameworkId::MXNet;
        rc.gpu = tg::quadroP4000();
        rc.batch = 16;
        return tp::PerfSimulator().run(rc);
    }();

    const td::DistConfig dc = ringConfig(8);
    td::resetPlanCacheStats();
    const td::DistResult cold = simulate(dc, single);
    const auto after_cold = td::planCacheStats();
    EXPECT_GT(after_cold.misses, 0);

    const td::DistResult warm = simulate(dc, single);
    const auto after_warm = td::planCacheStats();
    EXPECT_GT(after_warm.hits, after_cold.hits);

    // Memoized plan costs are returned exactly as first computed.
    EXPECT_EQ(cold.commUs, warm.commUs);
    EXPECT_EQ(cold.exposedCommUs, warm.exposedCommUs);
    EXPECT_EQ(cold.iterationUs, warm.iterationUs);
    EXPECT_EQ(cold.busiestEdge, warm.busiestEdge);

    // And identical to the fully uncached path.
    td::clearDistMemos();
    FastPathGuard slow(false);
    const td::DistResult uncached = simulate(dc, single);
    EXPECT_EQ(cold.commUs, uncached.commUs);
    EXPECT_EQ(cold.exposedCommUs, uncached.exposedCommUs);
    EXPECT_EQ(cold.iterationUs, uncached.iterationUs);
    EXPECT_EQ(cold.scalingEfficiency, uncached.scalingEfficiency);
    EXPECT_EQ(cold.busiestEdge, uncached.busiestEdge);
}

TEST(DistSimCache, RegistryRedefinitionClearsTheMemos)
{
    td::clearDistMemos();
    FastPathGuard guard(true);
    const td::TopologySpec spec = *td::findTopology("nvlink-island");
    const auto before = td::sharedTopology(spec, 8);

    // Re-registering (even an identical spec) must drop the memo so a
    // changed builder can never serve a stale graph.
    td::registerTopology(spec);
    const auto after = td::sharedTopology(spec, 8);
    EXPECT_NE(before.get(), after.get());
    // The fresh build is equivalent, just not aliased.
    EXPECT_EQ(td::topologyFingerprint(*before),
              td::topologyFingerprint(*after));
}
