#include "check/dist_golden.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#ifndef TBD_GOLDEN_DIR
#error "TBD_GOLDEN_DIR must point at tests/golden"
#endif

using namespace tbd;

TEST(DistGolden, CommittedCellsMatchLiveCapture)
{
    // The regression gate: the two pinned scaling cells, recomputed
    // from scratch, must match the committed JSON byte-for-meaning.
    const auto records = check::captureDistGoldens();
    ASSERT_EQ(records.size(), 2u);
    for (const auto &actual : records) {
        const std::string path = std::string(TBD_GOLDEN_DIR) + "/" +
                                 check::distGoldenFileName(actual);
        const check::DistGoldenRecord expected =
            check::readDistGoldenFile(path);
        const check::GoldenDiff diff =
            check::compareDistGolden(expected, actual);
        EXPECT_TRUE(diff.ok())
            << path << "\n"
            << diff.summary()
            << "intentional change? run: tbd_golden dist-rebaseline";
    }
}

TEST(DistGolden, CellsCoverBothCommittedShapes)
{
    const auto records = check::captureDistGoldens();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].topology, "nvlink-island");
    EXPECT_EQ(records[0].collective, "hierarchical");
    EXPECT_EQ(records[0].workers, 8);
    EXPECT_EQ(records[1].topology, "fat-tree");
    EXPECT_EQ(records[1].collective, "ring");
    EXPECT_EQ(records[1].workers, 64);
}

TEST(DistGolden, JsonRoundTripIsLossless)
{
    for (const auto &record : check::captureDistGoldens()) {
        const check::DistGoldenRecord back =
            check::distGoldenFromJson(check::distGoldenToJson(record));
        const check::GoldenDiff diff =
            check::compareDistGolden(record, back);
        EXPECT_TRUE(diff.ok()) << diff.summary();
    }
}

TEST(DistGolden, FileNamesEncodeShapeAndScale)
{
    const auto records = check::captureDistGoldens();
    EXPECT_EQ(check::distGoldenFileName(records[0]),
              "dist_nvlink-island_x8.json");
    EXPECT_EQ(check::distGoldenFileName(records[1]),
              "dist_fat-tree_x64.json");
}
