#include "dist/topology.h"

#include <gtest/gtest.h>

#include "util/logging.h"

using namespace tbd;
using namespace tbd::dist;

TEST(Topology, PaperClusterShape)
{
    // 2 machines x 4 GPUs: 1 net switch + 2 hosts + 8 GPUs; each GPU
    // has one PCIe edge, each host one network edge.
    const Topology topo =
        builders::paperCluster(2, 4, infiniband100G());
    EXPECT_EQ(topo.nodes().size(), 11u);
    EXPECT_EQ(topo.gpus().size(), 8u);
    EXPECT_EQ(topo.hosts().size(), 2u);
    EXPECT_EQ(topo.edges().size(), 10u);
    EXPECT_TRUE(topo.connected());

    const auto islands = topo.islandsByHost();
    ASSERT_EQ(islands.size(), 2u);
    EXPECT_EQ(islands[0].size(), 4u);
    EXPECT_EQ(islands[1].size(), 4u);
}

TEST(Topology, SingleMachineOmitsNetworkTier)
{
    const Topology topo =
        builders::paperCluster(1, 4, infiniband100G());
    for (const auto &node : topo.nodes())
        EXPECT_NE(node.kind, NodeKind::Switch);
    EXPECT_TRUE(topo.connected());
}

TEST(Topology, RouteCrossesNetworkBetweenMachines)
{
    const Topology topo = builders::paperCluster(2, 1, ethernet1G());
    const int a = topo.gpus()[0];
    const int b = topo.gpus()[1];
    // gpu -> host -> switch -> host -> gpu: 4 edges, bottleneck is
    // the 1 GbE hop, latency the sum along the path.
    const auto path = topo.route(a, b);
    EXPECT_EQ(path.size(), 4u);
    EXPECT_DOUBLE_EQ(topo.bottleneckGBs(a, b),
                     ethernet1G().bandwidthGBs);
    EXPECT_DOUBLE_EQ(topo.pathLatencyUs(a, b),
                     2 * pcie3x16().latencyUs +
                         2 * ethernet1G().latencyUs);
    // Uncontended transfer = path latency + bytes over bottleneck.
    const double bytes = 1e9;
    EXPECT_DOUBLE_EQ(topo.transferUs(a, b, bytes),
                     topo.pathLatencyUs(a, b) +
                         bytes /
                             (ethernet1G().bandwidthGBs * 1e9) * 1e6);
}

TEST(Topology, RoutePrefersNvlinkOverPcie)
{
    const Topology topo = builders::nvlinkIsland(8);
    const int a = topo.gpus()[0];
    const int b = topo.gpus()[1];
    // Same island: the direct NVLink edge beats gpu->host->gpu.
    const auto path = topo.route(a, b);
    ASSERT_EQ(path.size(), 1u);
    EXPECT_EQ(topo.edges()[path[0]].link.name, nvlink2().name);
}

TEST(Topology, NvlinkIslandsJoinOverInfiniband)
{
    const Topology topo = builders::nvlinkIsland(16, 8);
    EXPECT_EQ(topo.gpus().size(), 16u);
    EXPECT_EQ(topo.islandsByHost().size(), 2u);
    const int a = topo.gpus()[0];
    const int b = topo.gpus()[8]; // other island
    EXPECT_DOUBLE_EQ(topo.bottleneckGBs(a, b),
                     infiniband100G().bandwidthGBs);
}

TEST(Topology, FatTreeBuildsRequestedWorkers)
{
    for (int workers : {8, 16, 33, 64}) {
        const Topology topo =
            builders::fatTree(workers, infiniband100G());
        EXPECT_EQ(static_cast<int>(topo.gpus().size()), workers);
        EXPECT_TRUE(topo.connected());
    }
}

TEST(Topology, RouteIsDeterministic)
{
    const Topology topo = builders::fatTree(32, infiniband100G());
    const int a = topo.gpus()[3];
    const int b = topo.gpus()[29];
    const auto first = topo.route(a, b);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(topo.route(a, b), first);
}

TEST(Topology, DisconnectedGraphDetected)
{
    Topology topo("disconnected");
    topo.addNode("gpu0", NodeKind::Gpu);
    topo.addNode("gpu1", NodeKind::Gpu);
    EXPECT_FALSE(topo.connected());
    EXPECT_THROW(topo.route(0, 1), util::FatalError);
}

TEST(TopologyRegistry, FindResolvesBuiltins)
{
    for (const char *name :
         {"paper-1m1g", "paper-2m1g-eth", "paper-2m1g-ib",
          "paper-1m2g", "paper-1m4g", "ethernet-flat",
          "infiniband-flat", "nvlink-island", "fat-tree"}) {
        const auto spec = findTopology(name);
        ASSERT_TRUE(spec.has_value()) << name;
        EXPECT_EQ(spec->name, name);
        EXPECT_FALSE(spec->description.empty());
        EXPECT_GT(spec->gpuHourUsd, 0.0);
    }
    EXPECT_FALSE(findTopology("no-such-shape").has_value());
}

TEST(TopologyRegistry, NamesMatchRegistryOrder)
{
    const auto names = topologyNames();
    ASSERT_GE(names.size(), 9u);
    for (const auto &name : names)
        EXPECT_TRUE(findTopology(name).has_value()) << name;
}

TEST(TopologyRegistry, PinnedShapesUseFixedWorkers)
{
    const auto spec = findTopology("paper-2m1g-eth");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->fixedWorkers, 2);
    const Topology topo = spec->build(2);
    EXPECT_EQ(topo.gpus().size(), 2u);
    // Building at a conflicting count is a hard error.
    EXPECT_THROW(spec->build(4), util::FatalError);
}

TEST(TopologyRegistry, ScalableShapesBuildRaggedCounts)
{
    for (const char *name :
         {"ethernet-flat", "infiniband-flat", "nvlink-island",
          "fat-tree"}) {
        const auto spec = findTopology(name);
        ASSERT_TRUE(spec.has_value()) << name;
        EXPECT_EQ(spec->fixedWorkers, 0) << name;
        for (int workers : {8, 13, 64}) {
            const Topology topo = spec->build(workers);
            EXPECT_EQ(static_cast<int>(topo.gpus().size()), workers)
                << name << " x" << workers;
            EXPECT_TRUE(topo.connected()) << name << " x" << workers;
        }
    }
}

TEST(TopologyRegistry, RegisterReplacesByName)
{
    TopologySpec spec;
    spec.name = "test-shape";
    spec.description = "registered by the topology test";
    spec.gpuHourUsd = 1.0;
    spec.build = [](int workers) {
        Topology topo("test-shape");
        int prev = -1;
        for (int i = 0; i < workers; ++i) {
            const int gpu = topo.addNode("gpu" + std::to_string(i),
                                         NodeKind::Gpu);
            if (prev >= 0)
                topo.addEdge(prev, gpu, pcie3x16());
            prev = gpu;
        }
        return topo;
    };
    registerTopology(spec);
    ASSERT_TRUE(findTopology("test-shape").has_value());
    EXPECT_EQ(findTopology("test-shape")->gpuHourUsd, 1.0);

    spec.gpuHourUsd = 2.0;
    registerTopology(spec);
    EXPECT_EQ(findTopology("test-shape")->gpuHourUsd, 2.0);
    // Replacement did not duplicate the name.
    int hits = 0;
    for (const auto &name : topologyNames())
        hits += name == "test-shape" ? 1 : 0;
    EXPECT_EQ(hits, 1);
}

TEST(LinkRegistry, FindLinkResolvesCatalog)
{
    for (const char *name :
         {"pcie3-x16", "1gbe", "infiniband-100g", "nvlink2", "25gbe"}) {
        ASSERT_TRUE(findLink(name).has_value()) << name;
        EXPECT_GT(findLink(name)->bandwidthGBs, 0.0) << name;
    }
    EXPECT_FALSE(findLink("10gbe").has_value());
    EXPECT_EQ(linkNames().size(), 5u);
}

TEST(LinkRegistry, ShimsMatchCatalogRows)
{
    // The deprecated free functions must stay bitwise-identical to
    // the registry rows they wrap (legacy Fig. 10 results depend on
    // these constants).
    EXPECT_EQ(pcie3x16().bandwidthGBs, findLink("pcie3-x16")->bandwidthGBs);
    EXPECT_EQ(pcie3x16().latencyUs, findLink("pcie3-x16")->latencyUs);
    EXPECT_EQ(ethernet1G().bandwidthGBs, findLink("1gbe")->bandwidthGBs);
    EXPECT_EQ(ethernet1G().latencyUs, findLink("1gbe")->latencyUs);
    EXPECT_EQ(infiniband100G().bandwidthGBs,
              findLink("infiniband-100g")->bandwidthGBs);
    EXPECT_EQ(infiniband100G().latencyUs,
              findLink("infiniband-100g")->latencyUs);
}
