#include "dist/model_parallel.h"

#include <gtest/gtest.h>

#include "dist/data_parallel.h"
#include "util/logging.h"

namespace td = tbd::dist;
namespace md = tbd::models;
namespace tf = tbd::frameworks;
namespace tg = tbd::gpusim;

namespace {

td::ModelParallelResult
run(const md::ModelDesc &m, int stages, bool pipelined,
    std::int64_t batch = 32)
{
    td::ModelParallelConfig cfg;
    cfg.stages = stages;
    cfg.pipelined = pipelined;
    return td::simulateModelParallel(m, m.frameworks.front(),
                                     tg::quadroP4000(), batch, cfg);
}

} // namespace

TEST(ModelParallel, SingleStageMatchesStructure)
{
    auto r = run(md::resnet50(), 1, false);
    EXPECT_EQ(r.stages, 1);
    EXPECT_DOUBLE_EQ(r.transferBytes, 0.0);
    EXPECT_NEAR(r.gpuEfficiency, 1.0, 1e-9);
}

TEST(ModelParallel, NaiveNeverFasterThanOneGpu)
{
    // Sequential stages + cut transfers: total time can only grow.
    auto one = run(md::resnet50(), 1, false);
    for (int stages : {2, 4}) {
        auto r = run(md::resnet50(), stages, false);
        EXPECT_GE(r.iterationUs, one.iterationUs * 0.99) << stages;
        EXPECT_LT(r.gpuEfficiency, 0.7) << stages;
    }
}

TEST(ModelParallel, PipeliningRecoversThroughput)
{
    auto naive = run(md::resnet50(), 4, false);
    td::ModelParallelConfig cfg;
    cfg.stages = 4;
    cfg.pipelined = true;
    cfg.microBatches = 8;
    auto piped = td::simulateModelParallel(md::resnet50(),
                                           tf::FrameworkId::MXNet,
                                           tg::quadroP4000(), 32, cfg);
    EXPECT_GT(piped.throughputSamples, 1.5 * naive.throughputSamples);
}

TEST(ModelParallel, StagesAreRoughlyBalanced)
{
    for (const auto *m : {&md::resnet50(), &md::inceptionV3()}) {
        auto r = run(*m, 4, false);
        EXPECT_LT(r.balanceRatio, 1.8) << m->name;
        EXPECT_EQ(r.stageUs.size(), 4u);
        for (double t : r.stageUs)
            EXPECT_GT(t, 0.0);
    }
}

TEST(ModelParallel, CutTransfersAccounted)
{
    auto r2 = run(md::resnet50(), 2, false);
    auto r4 = run(md::resnet50(), 4, false);
    EXPECT_GT(r2.transferBytes, 0.0);
    EXPECT_GT(r4.transferBytes, r2.transferBytes); // more cuts
    EXPECT_GT(r4.transferUs, 0.0);
}

TEST(ModelParallel, DataParallelismWinsForTheSuiteModels)
{
    // The quantitative form of the paper's Section 2.2 choice: for the
    // TBD models (which fit one GPU), data parallelism over PCIe beats
    // even pipelined model parallelism at equal GPU count.
    td::ClusterConfig dp{1, 4, td::infiniband100G()};
    td::ModelParallelConfig mp;
    mp.stages = 4;
    mp.pipelined = true;
    mp.microBatches = 8;
    for (const auto *m : {&md::resnet50(), &md::seq2seqNmt()}) {
        const auto fw = m->frameworks.front();
        auto data = td::simulateDataParallel(*m, fw, tg::quadroP4000(),
                                             32, dp);
        auto mod = td::simulateModelParallel(*m, fw, tg::quadroP4000(),
                                             32 * 4, mp);
        EXPECT_GT(data.throughputSamples, mod.throughputSamples)
            << m->name;
    }
}

TEST(ModelParallel, RejectsBadConfigs)
{
    td::ModelParallelConfig cfg;
    cfg.stages = 0;
    EXPECT_THROW(td::simulateModelParallel(md::resnet50(),
                                           tf::FrameworkId::MXNet,
                                           tg::quadroP4000(), 8, cfg),
                 tbd::util::FatalError);
    cfg.stages = 1000; // more stages than A3C has ops
    EXPECT_THROW(td::simulateModelParallel(md::a3c(),
                                           tf::FrameworkId::MXNet,
                                           tg::quadroP4000(), 8, cfg),
                 tbd::util::FatalError);
}
