#include "dist/link.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace td = tbd::dist;

TEST(Link, TransferTimeIsBytesOverBandwidthPlusLatency)
{
    td::LinkSpec link{"test", 10.0, 7.0}; // 10 GB/s, 7 us
    // 1 GB / 10 GB/s = 100 ms = 100000 us, + 7.
    EXPECT_NEAR(link.transferUs(1e9), 100007.0, 1.0);
}

TEST(Link, ZeroBandwidthIsFatal)
{
    td::LinkSpec link{"broken", 0.0, 0.0};
    EXPECT_THROW(link.transferUs(100.0), tbd::util::FatalError);
}

TEST(Link, PresetOrdering)
{
    // PCIe > InfiniBand-effective > 1 GbE in payload bandwidth.
    EXPECT_GT(td::pcie3x16().bandwidthGBs,
              td::infiniband100G().bandwidthGBs);
    EXPECT_GT(td::infiniband100G().bandwidthGBs,
              50.0 * td::ethernet1G().bandwidthGBs);
}

TEST(Link, InfinibandNearHundredGigabits)
{
    // 100 Gb/s line rate ~ 12.5 GB/s; effective payload a bit lower.
    EXPECT_GT(td::infiniband100G().bandwidthGBs, 9.0);
    EXPECT_LT(td::infiniband100G().bandwidthGBs, 12.5);
}
