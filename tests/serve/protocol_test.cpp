#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <cmath>

#include "check/golden.h"
#include "core/suite.h"
#include "perf/simulator.h"
#include "util/logging.h"

namespace serve = tbd::serve;
namespace util = tbd::util;

namespace {

serve::Request
sampleRequest()
{
    serve::Request request;
    request.id = "req-1";
    request.tenant = "team-a";
    request.model = "ResNet-50";
    request.framework = "TensorFlow";
    request.gpu = "Quadro P4000";
    request.batch = 4;
    request.lengthCv = 0.25;
    request.lengthSeed = 7;
    return request;
}

} // namespace

TEST(ServeProtocol, StatusCodesRoundTrip)
{
    const serve::Status all[] = {
        serve::Status::Ok,
        serve::Status::BadRequest,
        serve::Status::UnknownName,
        serve::Status::SimulationError,
        serve::Status::RejectedQuota,
        serve::Status::RejectedQueueFull,
        serve::Status::InternalError,
    };
    for (const serve::Status status : all) {
        EXPECT_EQ(serve::statusFromCode(serve::statusCode(status)),
                  status);
        EXPECT_STRNE(serve::statusName(status), "");
    }
    EXPECT_THROW(serve::statusFromCode(123), util::FatalError);
}

TEST(ServeProtocol, RequestRoundTripsThroughWireForm)
{
    const serve::Request request = sampleRequest();
    const serve::Request parsed =
        serve::decodeRequest(serve::encodeRequest(request));
    EXPECT_EQ(parsed.id, request.id);
    EXPECT_EQ(parsed.tenant, request.tenant);
    EXPECT_EQ(parsed.model, request.model);
    EXPECT_EQ(parsed.framework, request.framework);
    EXPECT_EQ(parsed.gpu, request.gpu);
    EXPECT_EQ(parsed.batch, request.batch);
    EXPECT_EQ(parsed.lengthCv, request.lengthCv);
    EXPECT_EQ(parsed.lengthSeed, request.lengthSeed);
}

TEST(ServeProtocol, RequestDefaultsMatchStructDefaults)
{
    const serve::Request parsed = serve::decodeRequest(
        "{\"id\":\"x\",\"model\":\"ResNet-50\"}");
    const serve::Request defaults;
    EXPECT_EQ(parsed.tenant, defaults.tenant);
    EXPECT_EQ(parsed.framework, defaults.framework);
    EXPECT_EQ(parsed.gpu, defaults.gpu);
    EXPECT_EQ(parsed.batch, defaults.batch);
    EXPECT_EQ(parsed.lengthCv, defaults.lengthCv);
    EXPECT_EQ(parsed.lengthSeed, defaults.lengthSeed);
}

TEST(ServeProtocol, MalformedRequestsThrow)
{
    // Not JSON at all.
    EXPECT_THROW(serve::decodeRequest("not json"), util::FatalError);
    // Wrong top-level type.
    EXPECT_THROW(serve::decodeRequest("[1,2,3]"), util::FatalError);
    // Unknown key (almost certainly a typo'd field).
    EXPECT_THROW(serve::decodeRequest(
                     "{\"id\":\"x\",\"model\":\"ResNet-50\","
                     "\"batchsize\":4}"),
                 util::FatalError);
    // Mistyped field.
    EXPECT_THROW(serve::decodeRequest(
                     "{\"id\":\"x\",\"model\":\"ResNet-50\","
                     "\"batch\":\"four\"}"),
                 util::FatalError);
    // Missing model.
    EXPECT_THROW(serve::decodeRequest("{\"id\":\"x\"}"),
                 util::FatalError);
}

TEST(ServeProtocol, FingerprintSeesEveryScalarField)
{
    tbd::perf::RunResult a{};
    const std::uint64_t base = serve::resultFingerprint(a);
    tbd::perf::RunResult b = a;
    b.iterationUs = 1.0;
    EXPECT_NE(serve::resultFingerprint(b), base);
    // A sign flip of zero is a bit-level change and must be seen.
    tbd::perf::RunResult c = a;
    c.iterationUs = -0.0;
    EXPECT_NE(serve::resultFingerprint(c), base);
}

TEST(ServeProtocol, SummaryRoundTripsBitwiseThroughResponseJson)
{
    // Doubles that don't have short decimal spellings must still
    // round-trip exactly (util::json emits 17 significant digits).
    serve::Response response;
    response.id = "r";
    response.status = serve::Status::Ok;
    response.result.model = "NMT";
    response.result.framework = "TensorFlow";
    response.result.gpu = "Quadro P4000";
    response.result.batch = 4;
    response.result.iterationUs = 1.0 / 3.0;
    response.result.throughputSamples = 2.0 / 7.0;
    response.result.gpuUtilization = 0.1 + 0.2; // 0.30000000000000004
    response.result.kernelsPerIteration = 514;
    response.result.memoryBytes[0] = 123456789;
    response.result.memoryTotal = 123456789;
    response.result.fingerprint = 0xdeadbeefcafef00dull;

    const serve::Response parsed =
        serve::decodeResponse(serve::encodeResponse(response));
    EXPECT_EQ(parsed.status, serve::Status::Ok);
    EXPECT_TRUE(parsed.result == response.result);
    // A single-ULP nudge must break equality (proves the comparison
    // is bitwise, not tolerance-based).
    serve::ResultSummary nudged = parsed.result;
    nudged.iterationUs =
        std::nextafter(nudged.iterationUs, 2.0);
    EXPECT_TRUE(nudged != response.result);
}

TEST(ServeProtocol, ErrorResponsesCarryNoResult)
{
    serve::Response response;
    response.id = "r";
    response.status = serve::Status::UnknownName;
    response.error = "unknown model 'X'";
    response.suggestion = "ResNet-50";
    const std::string wire = serve::encodeResponse(response);
    EXPECT_EQ(wire.find("\"result\""), std::string::npos);
    const serve::Response parsed = serve::decodeResponse(wire);
    EXPECT_EQ(parsed.status, serve::Status::UnknownName);
    EXPECT_EQ(parsed.error, response.error);
    EXPECT_EQ(parsed.suggestion, response.suggestion);
}

TEST(ServeProtocol, SummaryAgreesWithGoldenCapture)
{
    // toGoldenRecord(summarize(result)) must equal captureGolden for
    // the same run — the equivalence the golden-determinism test
    // leans on.
    serve::Request request = sampleRequest();
    request.lengthCv = 0.0;
    const tbd::perf::RunConfig config =
        tbd::core::toRunConfig(serve::toBenchmarkRequest(request));
    const tbd::perf::RunResult result =
        tbd::perf::PerfSimulator().run(config);
    const tbd::check::GoldenRecord via_serve =
        serve::toGoldenRecord(serve::summarize(result));
    const tbd::check::GoldenRecord direct =
        tbd::check::captureGolden(config, result);
    const tbd::check::GoldenDiff diff =
        tbd::check::compareGolden(direct, via_serve,
                                  /*relTol=*/0.0);
    EXPECT_TRUE(diff.ok()) << diff.summary();
}
