#include "serve/admission.h"

#include <gtest/gtest.h>

#include <utility>

namespace serve = tbd::serve;

namespace {

/** Controller on a manual clock: quota decisions become exact. */
struct ManualClockController
{
    double now = 0.0;
    serve::AdmissionController controller;

    explicit ManualClockController(serve::QuotaConfig quota = {},
                                   std::int64_t maxInflight = 0)
        : controller(quota, maxInflight)
    {
        controller.setClock([this] { return now; });
    }
};

} // namespace

TEST(ServeAdmission, DefaultQuotaAdmitsFreely)
{
    serve::AdmissionController controller;
    for (int i = 0; i < 100; ++i) {
        serve::AdmissionController::Ticket ticket;
        EXPECT_EQ(controller.admit("anyone", ticket),
                  serve::Admission::Admit);
    }
    EXPECT_EQ(controller.queueDepth(), 0); // all tickets released
    EXPECT_EQ(controller.stats().admitted, 100);
}

TEST(ServeAdmission, TokenBucketEnforcesBurstAndRefill)
{
    ManualClockController manual;
    manual.controller.setTenantQuota("t", {2.0, 1.0});

    serve::AdmissionController::Ticket tickets[4];
    EXPECT_EQ(manual.controller.admit("t", tickets[0]),
              serve::Admission::Admit);
    EXPECT_EQ(manual.controller.admit("t", tickets[1]),
              serve::Admission::Admit);
    // Bucket empty: explicit 429, not queueing.
    EXPECT_EQ(manual.controller.admit("t", tickets[2]),
              serve::Admission::RejectQuota);
    EXPECT_FALSE(tickets[2].held());

    // One second refills one token — exactly one more admit.
    manual.now += 1.0;
    EXPECT_EQ(manual.controller.admit("t", tickets[2]),
              serve::Admission::Admit);
    EXPECT_EQ(manual.controller.admit("t", tickets[3]),
              serve::Admission::RejectQuota);

    // Refill saturates at the burst, never beyond.
    manual.now += 1000.0;
    int admitted = 0;
    for (int i = 0; i < 5; ++i) {
        serve::AdmissionController::Ticket ticket;
        if (manual.controller.admit("t", ticket) ==
            serve::Admission::Admit)
            ++admitted;
    }
    EXPECT_EQ(admitted, 2);
    EXPECT_EQ(manual.controller.stats().rejectedQuota, 5);
}

TEST(ServeAdmission, ZeroRateBucketNeverRefills)
{
    ManualClockController manual;
    manual.controller.setTenantQuota("flood", {3.0, 0.0});
    int admitted = 0;
    for (int i = 0; i < 10; ++i) {
        serve::AdmissionController::Ticket ticket;
        if (manual.controller.admit("flood", ticket) ==
            serve::Admission::Admit)
            ++admitted;
        manual.now += 100.0;
    }
    EXPECT_EQ(admitted, 3);
}

TEST(ServeAdmission, QuotaIsPerTenant)
{
    ManualClockController manual;
    manual.controller.setTenantQuota("tight", {1.0, 0.0});
    serve::AdmissionController::Ticket a, b, c;
    EXPECT_EQ(manual.controller.admit("tight", a),
              serve::Admission::Admit);
    EXPECT_EQ(manual.controller.admit("tight", b),
              serve::Admission::RejectQuota);
    // Another tenant rides the (unlimited) default quota.
    EXPECT_EQ(manual.controller.admit("other", c),
              serve::Admission::Admit);
}

TEST(ServeAdmission, InflightBudgetBoundsTheQueue)
{
    serve::AdmissionController controller({}, /*maxInflight=*/2);
    serve::AdmissionController::Ticket a, b, c;
    EXPECT_EQ(controller.admit("t", a), serve::Admission::Admit);
    EXPECT_EQ(controller.admit("t", b), serve::Admission::Admit);
    EXPECT_EQ(controller.queueDepth(), 2);
    // Full: explicit 503.
    EXPECT_EQ(controller.admit("t", c),
              serve::Admission::RejectQueueFull);
    EXPECT_EQ(controller.stats().rejectedQueueFull, 1);
    // Releasing one slot readmits.
    a.release();
    EXPECT_EQ(controller.queueDepth(), 1);
    EXPECT_EQ(controller.admit("t", c), serve::Admission::Admit);
    EXPECT_EQ(controller.queueDepth(), 2);
}

TEST(ServeAdmission, QuotaIsCheckedBeforeTheInflightBudget)
{
    // An over-quota request must answer 429 even when the queue is
    // simultaneously full: the bucket check comes first.
    ManualClockController manual({}, /*maxInflight=*/2);
    manual.controller.setTenantQuota("tight", {1.0, 0.0});
    serve::AdmissionController::Ticket a, b, c, d;
    EXPECT_EQ(manual.controller.admit("tight", a),
              serve::Admission::Admit); // drains tight's one token
    EXPECT_EQ(manual.controller.admit("other", b),
              serve::Admission::Admit); // queue now full
    EXPECT_EQ(manual.controller.admit("tight", c),
              serve::Admission::RejectQuota);
    EXPECT_EQ(manual.controller.admit("other", d),
              serve::Admission::RejectQueueFull);
    EXPECT_EQ(manual.controller.stats().rejectedQuota, 1);
    EXPECT_EQ(manual.controller.stats().rejectedQueueFull, 1);
}

TEST(ServeAdmission, TicketReleaseIsIdempotentAndMoveSafe)
{
    serve::AdmissionController controller({}, 4);
    serve::AdmissionController::Ticket a;
    ASSERT_EQ(controller.admit("t", a), serve::Admission::Admit);
    EXPECT_TRUE(a.held());

    // Move transfers the slot; the source holds nothing.
    serve::AdmissionController::Ticket b = std::move(a);
    EXPECT_FALSE(a.held());
    EXPECT_TRUE(b.held());
    EXPECT_EQ(controller.queueDepth(), 1);

    b.release();
    b.release(); // idempotent
    EXPECT_FALSE(b.held());
    EXPECT_EQ(controller.queueDepth(), 0);

    // Destruction of a released ticket must not double-release.
    {
        serve::AdmissionController::Ticket c;
        ASSERT_EQ(controller.admit("t", c), serve::Admission::Admit);
    }
    EXPECT_EQ(controller.queueDepth(), 0);
}

TEST(ServeAdmission, RejectedRequestsNeverLeakSlots)
{
    ManualClockController manual({}, /*maxInflight=*/8);
    manual.controller.setTenantQuota("tight", {1.0, 0.0});
    {
        serve::AdmissionController::Ticket first;
        ASSERT_EQ(manual.controller.admit("tight", first),
                  serve::Admission::Admit);
        for (int i = 0; i < 20; ++i) {
            serve::AdmissionController::Ticket ticket;
            EXPECT_EQ(manual.controller.admit("tight", ticket),
                      serve::Admission::RejectQuota);
            EXPECT_FALSE(ticket.held());
        }
        EXPECT_EQ(manual.controller.queueDepth(), 1);
    }
    EXPECT_EQ(manual.controller.queueDepth(), 0);
}
