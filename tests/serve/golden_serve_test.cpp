/**
 * @file
 * Golden determinism through the serving path: every committed
 * tests/golden/ record must be reproduced bit-for-bit by a request
 * that travels the full socket pipeline — proof that the wire
 * protocol, the cache and the worker handoff add zero drift over the
 * library path the goldens were captured from.
 */

#include <gtest/gtest.h>

#include <string>

#include "check/golden.h"
#include "frameworks/framework.h"
#include "models/model_desc.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace serve = tbd::serve;
namespace check = tbd::check;
namespace models = tbd::models;

#ifndef TBD_GOLDEN_DIR
#define TBD_GOLDEN_DIR "tests/golden"
#endif

TEST(ServeGolden, SocketPathReproducesEveryCommittedGolden)
{
    serve::Server server;
    server.start();
    serve::Client client(server.port());

    int checked = 0;
    for (const models::ModelDesc *model : models::allModels()) {
        // The canonical configuration every golden was captured
        // from, expressed as a wire request.
        const tbd::perf::RunConfig config =
            check::canonicalConfig(*model);
        serve::Request request;
        request.id = model->name;
        request.model = model->name;
        request.framework =
            tbd::frameworks::frameworkName(config.framework);
        request.gpu = config.gpu.name;
        request.batch = config.batch;

        const serve::Response response = client.call(request);
        ASSERT_EQ(response.status, serve::Status::Ok)
            << model->name << ": " << response.error;

        const check::GoldenRecord served =
            serve::toGoldenRecord(response.result);
        const check::GoldenRecord expected = check::readGoldenFile(
            std::string(TBD_GOLDEN_DIR) + "/" +
            check::goldenFileName(served));
        const check::GoldenDiff diff =
            check::compareGolden(expected, served);
        EXPECT_TRUE(diff.ok())
            << "serving path drifted from the committed golden for "
            << model->name << ":\n"
            << diff.summary();
        ++checked;
    }
    server.stop();
    EXPECT_GE(checked, 9) << "golden coverage shrank";
}
