/**
 * @file
 * Concurrency soak over the serve pipeline — part of the TSan CI
 * subset (the ctest regex picks up every "serve." test). Eight
 * threads hammer the result cache, coalescing and admission from
 * every angle at once; the assertions are conservation laws that any
 * lost update, leaked slot or double count would break.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"
#include "serve/server.h"

namespace serve = tbd::serve;
namespace perf = tbd::perf;

namespace {

constexpr int kThreads = 8;

perf::RunResult
fakeResult(double marker)
{
    perf::RunResult result;
    result.iterationUs = marker;
    return result;
}

} // namespace

TEST(ServeSoak, ResultCacheConservesUnderContention)
{
    serve::ResultCache cache(/*maxEntries=*/64);
    constexpr int kIterations = 400;
    std::atomic<std::int64_t> computes{0};
    std::atomic<std::int64_t> answered{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            std::mt19937_64 rng(1000 + t);
            std::uniform_int_distribution<int> pick(0, 7);
            for (int i = 0; i < kIterations; ++i) {
                const std::string key =
                    "key-" + std::to_string(pick(rng));
                const auto outcome =
                    cache.getOrCompute(key, [&] {
                        computes.fetch_add(1);
                        return fakeResult(1.0);
                    });
                if (outcome.result != nullptr)
                    answered.fetch_add(1);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    const auto stats = cache.stats();
    // Every call is exactly one of hit/miss/coalesced.
    EXPECT_EQ(stats.hits + stats.misses + stats.coalesced,
              kThreads * kIterations);
    // Every compute was counted as a miss, and nothing failed.
    EXPECT_EQ(stats.misses, computes.load());
    EXPECT_EQ(answered.load(), kThreads * kIterations);
    EXPECT_LE(stats.entries, 64);
}

TEST(ServeSoak, AdmissionConservesUnderContention)
{
    serve::AdmissionController controller({}, /*maxInflight=*/6);
    controller.setTenantQuota("metered", {1e6, 1e6});
    constexpr int kIterations = 500;
    std::atomic<std::int64_t> admitted{0};
    std::atomic<std::int64_t> rejected{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIterations; ++i) {
                serve::AdmissionController::Ticket ticket;
                const std::string tenant =
                    (t % 2) != 0 ? "metered" : "free";
                switch (controller.admit(tenant, ticket)) {
                  case serve::Admission::Admit:
                    admitted.fetch_add(1);
                    // The bound holds at every instant a slot is
                    // held.
                    EXPECT_LE(controller.queueDepth(), 6);
                    break;
                  default:
                    rejected.fetch_add(1);
                    EXPECT_FALSE(ticket.held());
                    break;
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(admitted.load() + rejected.load(),
              kThreads * kIterations);
    EXPECT_EQ(controller.queueDepth(), 0) << "a slot leaked";
    const auto stats = controller.stats();
    EXPECT_EQ(stats.admitted, admitted.load());
    EXPECT_EQ(stats.rejectedQuota + stats.rejectedQueueFull,
              rejected.load());
}

TEST(ServeSoak, FullPipelineUnderContention)
{
    // In-process (no sockets): TSan watches the cache, coalescing,
    // admission and worker pool interplay directly.
    serve::ServerOptions options;
    options.threads = 4;
    options.maxInflight = 16;
    serve::Server server(options);
    server.setTenantQuota("throttled", {8.0, 0.0});

    constexpr int kIterations = 60;
    const char *const models[] = {"ResNet-50", "Inception-v3",
                                  "WGAN"};
    std::atomic<std::int64_t> ok{0}, quota_rejected{0}, other{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            std::mt19937_64 rng(42 + t);
            std::uniform_int_distribution<int> pick_model(0, 2);
            std::uniform_int_distribution<int> pick_batch(0, 2);
            std::uniform_int_distribution<int> pick_tenant(0, 9);
            for (int i = 0; i < kIterations; ++i) {
                serve::Request request;
                request.id = std::to_string(t) + "/" +
                             std::to_string(i);
                request.tenant = pick_tenant(rng) == 0
                                     ? "throttled"
                                     : "open";
                request.model = models[pick_model(rng)];
                request.batch = 4 << pick_batch(rng);
                const serve::Response response =
                    server.handle(request);
                if (response.status == serve::Status::Ok)
                    ok.fetch_add(1);
                else if (response.status ==
                         serve::Status::RejectedQuota)
                    quota_rejected.fetch_add(1);
                else
                    other.fetch_add(1);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(other.load(), 0) << "unexpected failure status";
    EXPECT_EQ(ok.load() + quota_rejected.load(),
              kThreads * kIterations);
    EXPECT_GT(ok.load(), 0);
    // burst 8, zero refill: at most 8 throttled requests ever pass.
    EXPECT_GE(quota_rejected.load(), 1);
    EXPECT_EQ(server.admission().queueDepth(), 0);
    const auto stats = server.cache().stats();
    // Only admitted requests reach the cache.
    EXPECT_EQ(stats.hits + stats.misses + stats.coalesced,
              ok.load());
    EXPECT_LE(stats.misses, 9) << "at most one miss per unique key";
}
