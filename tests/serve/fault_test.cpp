#include "serve/testing.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "serve/protocol.h"
#include "serve/server.h"
#include "util/logging.h"

namespace serve = tbd::serve;
namespace util = tbd::util;

namespace {

serve::Request
resnetRequest(const std::string &id)
{
    serve::Request request;
    request.id = id;
    request.model = "ResNet-50";
    request.batch = 4;
    return request;
}

/** A simulation slow enough to still be running when we disconnect:
 *  length variation with a fresh seed defeats every fast path. */
serve::Request
slowRequest(const std::string &id, std::uint64_t seed)
{
    serve::Request request;
    request.id = id;
    request.model = "Deep Speech 2";
    request.framework = "MXNet";
    request.batch = 1;
    request.lengthCv = 0.5;
    request.lengthSeed = seed;
    return request;
}

/** Clears the fail point however the test exits. */
class ServeFault : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        serve::testing::setFailPoint(serve::testing::FailPoint::None);
    }
};

} // namespace

TEST_F(ServeFault, NamesParse)
{
    using serve::testing::FailPoint;
    using serve::testing::failPointFromName;
    EXPECT_EQ(failPointFromName(""), FailPoint::None);
    EXPECT_EQ(failPointFromName(nullptr), FailPoint::None);
    EXPECT_EQ(failPointFromName("sim_error"),
              FailPoint::SimulationError);
    EXPECT_EQ(failPointFromName("queue_full"), FailPoint::QueueFull);
    EXPECT_THROW(failPointFromName("explode"), util::FatalError);
}

TEST_F(ServeFault, SimulationErrorAnswers422AndNeverCrashes)
{
    serve::Server server;
    serve::testing::setFailPoint(
        serve::testing::FailPoint::SimulationError);
    const serve::Response failed =
        server.handle(resnetRequest("f0"));
    EXPECT_EQ(failed.status, serve::Status::SimulationError);
    EXPECT_NE(failed.error.find("fail point"), std::string::npos);
    EXPECT_EQ(server.admission().queueDepth(), 0)
        << "failed request leaked its queue slot";

    // The error was not cached: clearing the fail point heals the
    // server completely.
    serve::testing::setFailPoint(serve::testing::FailPoint::None);
    const serve::Response healed =
        server.handle(resnetRequest("f1"));
    EXPECT_EQ(healed.status, serve::Status::Ok);
    EXPECT_FALSE(healed.cached);
}

TEST_F(ServeFault, SimulationErrorOverTheSocket)
{
    serve::Server server;
    server.start();
    serve::testing::setFailPoint(
        serve::testing::FailPoint::SimulationError);
    serve::Client client(server.port());
    const serve::Response failed = client.call(resnetRequest("s0"));
    EXPECT_EQ(failed.status, serve::Status::SimulationError);
    serve::testing::setFailPoint(serve::testing::FailPoint::None);
    EXPECT_EQ(client.call(resnetRequest("s1")).status,
              serve::Status::Ok);
    server.stop();
    EXPECT_EQ(server.admission().queueDepth(), 0);
}

TEST_F(ServeFault, QueueFullAnswers503WithoutTakingASlot)
{
    serve::Server server;
    serve::testing::setFailPoint(
        serve::testing::FailPoint::QueueFull);
    const serve::Response rejected =
        server.handle(resnetRequest("q0"));
    EXPECT_EQ(rejected.status, serve::Status::RejectedQueueFull);
    EXPECT_FALSE(rejected.error.empty());
    EXPECT_EQ(server.admission().queueDepth(), 0);
    EXPECT_GE(server.admission().stats().rejectedQueueFull, 1);

    serve::testing::setFailPoint(serve::testing::FailPoint::None);
    EXPECT_EQ(server.handle(resnetRequest("q1")).status,
              serve::Status::Ok);
}

TEST_F(ServeFault, ClientDisconnectMidRequestLeaksNothing)
{
    serve::Server server;
    server.start();
    {
        // Fire a slow request and slam the connection before the
        // answer can be written.
        serve::Client client(server.port());
        client.send(slowRequest("gone", 991));
        client.close();
    }
    // The simulation finishes into a dead socket; the slot must come
    // back and the server must stay healthy.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    while (server.admission().queueDepth() != 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(server.admission().queueDepth(), 0)
        << "disconnected request leaked its queue slot";
    EXPECT_TRUE(server.running());

    serve::Client fresh(server.port());
    EXPECT_EQ(fresh.call(resnetRequest("after")).status,
              serve::Status::Ok);
    server.stop();
}

TEST_F(ServeFault, StopWithRequestInFlightAnswersBeforeExit)
{
    serve::Server server;
    server.start();
    serve::Client client(server.port());
    client.send(slowRequest("racing", 992));
    // Wait until the request is admitted (a slot is held), so the
    // stop below races the *simulation*, not the socket read.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    while (server.admission().queueDepth() == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_GT(server.admission().queueDepth(), 0);
    // Stop while the simulation is still running: in-flight work
    // must finish and answer, not vanish.
    serve::Server *raw = &server;
    std::thread stopper([raw] { raw->stop(); });
    const serve::Response response = client.callLine("");
    stopper.join();
    // Either the worker answered the simulation, or the stop raced
    // ahead and the request was turned away with a clean 503 — but
    // never a hang, a crash, or a dropped line.
    EXPECT_TRUE(response.status == serve::Status::Ok ||
                response.status ==
                    serve::Status::RejectedQueueFull)
        << "got status " << serve::statusCode(response.status);
    EXPECT_EQ(server.admission().queueDepth(), 0);
}
