#include "serve/result_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "core/suite.h"
#include "util/logging.h"

namespace serve = tbd::serve;
namespace perf = tbd::perf;
namespace util = tbd::util;

namespace {

/** A distinguishable fake result (no real simulation needed). */
perf::RunResult
fakeResult(double marker)
{
    perf::RunResult result;
    result.modelName = "fake";
    result.iterationUs = marker;
    return result;
}

} // namespace

TEST(ServeResultCache, MissThenHitComputesOnce)
{
    serve::ResultCache cache;
    int computes = 0;
    const auto fn = [&] {
        ++computes;
        return fakeResult(1.0);
    };
    const auto first = cache.getOrCompute("k", fn);
    ASSERT_NE(first.result, nullptr);
    EXPECT_FALSE(first.hit);
    EXPECT_FALSE(first.coalesced);
    const auto second = cache.getOrCompute("k", fn);
    ASSERT_NE(second.result, nullptr);
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(computes, 1);
    // Both callers see the same immutable result object.
    EXPECT_EQ(first.result.get(), second.result.get());
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.coalesced, 0);
}

TEST(ServeResultCache, DistinctKeysComputeIndependently)
{
    serve::ResultCache cache;
    const auto a =
        cache.getOrCompute("a", [] { return fakeResult(1.0); });
    const auto b =
        cache.getOrCompute("b", [] { return fakeResult(2.0); });
    EXPECT_EQ(a.result->iterationUs, 1.0);
    EXPECT_EQ(b.result->iterationUs, 2.0);
    EXPECT_EQ(cache.stats().misses, 2);
}

TEST(ServeResultCache, ErrorsPropagateButAreNeverCached)
{
    serve::ResultCache cache;
    int computes = 0;
    const auto failing = [&]() -> perf::RunResult {
        ++computes;
        TBD_FATAL("forced failure");
    };
    const auto failed = cache.getOrCompute("k", failing);
    EXPECT_EQ(failed.result, nullptr);
    EXPECT_NE(failed.error.find("forced failure"), std::string::npos);
    // The key was not poisoned: the next request retries and can
    // succeed.
    const auto retried = cache.getOrCompute("k", [&] {
        ++computes;
        return fakeResult(3.0);
    });
    ASSERT_NE(retried.result, nullptr);
    EXPECT_FALSE(retried.hit);
    EXPECT_EQ(computes, 2);
    EXPECT_EQ(cache.stats().misses, 2);
}

TEST(ServeResultCache, FifoEvictionRespectsBound)
{
    serve::ResultCache cache(/*maxEntries=*/2);
    int computes = 0;
    const auto fn = [&] { return fakeResult(++computes); };
    cache.getOrCompute("a", fn);
    cache.getOrCompute("b", fn);
    cache.getOrCompute("c", fn); // evicts "a"
    auto stats = cache.stats();
    EXPECT_EQ(stats.entries, 2);
    EXPECT_EQ(stats.evictions, 1);
    EXPECT_TRUE(cache.getOrCompute("b", fn).hit);
    EXPECT_FALSE(cache.getOrCompute("a", fn).hit); // recomputed
}

TEST(ServeResultCache, ZeroBoundDisablesCachingEntirely)
{
    serve::ResultCache cache(/*maxEntries=*/0);
    int computes = 0;
    const auto fn = [&] { return fakeResult(++computes); };
    EXPECT_FALSE(cache.getOrCompute("k", fn).hit);
    EXPECT_FALSE(cache.getOrCompute("k", fn).hit);
    EXPECT_EQ(computes, 2);
    EXPECT_EQ(cache.stats().entries, 0);
}

TEST(ServeResultCache, CoalescedFollowerWaitsForLeader)
{
    serve::ResultCache cache;
    std::mutex mutex;
    std::condition_variable cv;
    bool release = false;

    // Leader: computes under our control so the in-flight window is
    // deterministic, not a race.
    std::thread leader([&] {
        cache.getOrCompute("k", [&] {
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait(lock, [&] { return release; });
            return fakeResult(7.0);
        });
    });

    // Wait until the leader is registered in flight.
    while (cache.stats().misses == 0)
        std::this_thread::yield();

    serve::ResultCache::Outcome follower_outcome;
    std::thread follower([&] {
        follower_outcome = cache.getOrCompute(
            "k", [&]() -> perf::RunResult {
                ADD_FAILURE() << "follower must not compute";
                return fakeResult(0.0);
            });
    });

    // The follower registers as coalesced BEFORE blocking; only then
    // release the leader.
    while (cache.stats().coalesced == 0)
        std::this_thread::yield();
    {
        std::lock_guard<std::mutex> lock(mutex);
        release = true;
    }
    cv.notify_all();
    leader.join();
    follower.join();

    ASSERT_NE(follower_outcome.result, nullptr);
    EXPECT_TRUE(follower_outcome.coalesced);
    EXPECT_FALSE(follower_outcome.hit);
    EXPECT_EQ(follower_outcome.result->iterationUs, 7.0);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.coalesced, 1);
    // N concurrent identical queries cost one simulation.
    EXPECT_EQ(stats.entries, 1);
}

TEST(ServeResultCache, DiskTierAnswersLeaderMissesWithoutComputing)
{
    serve::ResultCache cache;
    int computes = 0;
    int probes = 0;
    const auto fn = [&] {
        ++computes;
        return fakeResult(1.0);
    };
    const auto disk = [&]() -> std::shared_ptr<const perf::RunResult> {
        ++probes;
        return std::make_shared<perf::RunResult>(fakeResult(9.0));
    };

    const auto first = cache.getOrCompute("k", fn, disk);
    ASSERT_NE(first.result, nullptr);
    EXPECT_FALSE(first.hit);
    EXPECT_TRUE(first.diskHit);
    EXPECT_EQ(first.result->iterationUs, 9.0); // served from "disk"
    EXPECT_EQ(computes, 0);
    EXPECT_EQ(probes, 1);

    // The disk answer is now a resident entry: the next query is a
    // plain memory hit and the disk is not probed again.
    const auto second = cache.getOrCompute("k", fn, disk);
    EXPECT_TRUE(second.hit);
    EXPECT_FALSE(second.diskHit);
    EXPECT_EQ(probes, 1);

    const auto stats = cache.stats();
    EXPECT_EQ(stats.diskHits, 1);
    EXPECT_EQ(stats.misses, 1); // a disk hit is still a memory miss
    EXPECT_EQ(stats.hits, 1);
}

TEST(ServeResultCache, DiskMissFallsThroughToCompute)
{
    serve::ResultCache cache;
    int computes = 0;
    const auto outcome = cache.getOrCompute(
        "k",
        [&] {
            ++computes;
            return fakeResult(2.0);
        },
        []() -> std::shared_ptr<const perf::RunResult> {
            return nullptr; // nothing on disk
        });
    ASSERT_NE(outcome.result, nullptr);
    EXPECT_FALSE(outcome.diskHit);
    EXPECT_EQ(outcome.result->iterationUs, 2.0);
    EXPECT_EQ(computes, 1);
    EXPECT_EQ(cache.stats().diskHits, 0);
}

TEST(ServeResultCache, ClearResetsEntriesAndCounters)
{
    serve::ResultCache cache;
    cache.getOrCompute("k", [] { return fakeResult(1.0); });
    cache.clear();
    const auto stats = cache.stats();
    EXPECT_EQ(stats.entries, 0);
    EXPECT_EQ(stats.hits + stats.misses + stats.coalesced, 0);
    EXPECT_FALSE(
        cache.getOrCompute("k", [] { return fakeResult(2.0); }).hit);
}

TEST(ServeCacheKey, CoversEveryRequestField)
{
    tbd::core::BenchmarkRequest base;
    const std::string key = serve::cacheKey(base);

    auto differs = [&](auto mutate) {
        tbd::core::BenchmarkRequest request = base;
        mutate(request);
        return serve::cacheKey(request) != key;
    };
    EXPECT_TRUE(differs([](auto &r) { r.model = "NMT"; }));
    EXPECT_TRUE(differs([](auto &r) { r.framework = "MXNet"; }));
    EXPECT_TRUE(differs([](auto &r) { r.gpu = "TITAN Xp"; }));
    EXPECT_TRUE(differs([](auto &r) { r.batch = 64; }));
    EXPECT_TRUE(differs([](auto &r) { r.lengthCv = 0.5; }));
    EXPECT_TRUE(differs([](auto &r) { r.lengthSeed = 1; }));
    // Exact bit pattern: a one-ULP lengthCv change is a new key.
    EXPECT_TRUE(differs([](auto &r) {
        r.lengthCv = std::nextafter(r.lengthCv, 1.0);
    }));
}
