#include "serve/server.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "util/logging.h"

namespace serve = tbd::serve;
namespace util = tbd::util;

namespace {

serve::Request
resnetRequest(const std::string &id)
{
    serve::Request request;
    request.id = id;
    request.model = "ResNet-50";
    request.batch = 4;
    return request;
}

} // namespace

TEST(ServeServer, DirectPathSimulates)
{
    const serve::Response response =
        serve::simulateDirect(resnetRequest("d0"));
    ASSERT_EQ(response.status, serve::Status::Ok);
    EXPECT_EQ(response.result.model, "ResNet-50");
    EXPECT_GT(response.result.iterationUs, 0.0);
    EXPECT_NE(response.result.fingerprint, 0u);
}

TEST(ServeServer, UnknownModelAnswers404WithSuggestion)
{
    serve::Request request = resnetRequest("u0");
    request.model = "ResNet50"; // typo'd
    const serve::Response response = serve::simulateDirect(request);
    EXPECT_EQ(response.status, serve::Status::UnknownName);
    EXPECT_NE(response.error.find("ResNet50"), std::string::npos);
    EXPECT_EQ(response.suggestion, "ResNet-50");
}

TEST(ServeServer, HandleIsTheFullPipelineWithoutSockets)
{
    serve::Server server;
    const serve::Response first =
        server.handle(resnetRequest("h0"));
    ASSERT_EQ(first.status, serve::Status::Ok);
    EXPECT_FALSE(first.cached);
    const serve::Response second =
        server.handle(resnetRequest("h1"));
    ASSERT_EQ(second.status, serve::Status::Ok);
    EXPECT_TRUE(second.cached);
    EXPECT_TRUE(first.result == second.result);
    EXPECT_EQ(server.admission().queueDepth(), 0);
}

TEST(ServeServer, SocketAnswersAreBitwiseIdenticalToDirect)
{
    const serve::Response direct =
        serve::simulateDirect(resnetRequest("base"));
    ASSERT_EQ(direct.status, serve::Status::Ok);

    serve::Server server;
    server.start();
    serve::Client client(server.port());
    const serve::Response served =
        client.call(resnetRequest("s0"));
    ASSERT_EQ(served.status, serve::Status::Ok);
    EXPECT_TRUE(served.result == direct.result)
        << "served answer diverged from the library path";
    EXPECT_EQ(served.id, "s0");

    // Second call over the same connection: a cache hit, still
    // bitwise-identical.
    const serve::Response repeat =
        client.call(resnetRequest("s1"));
    ASSERT_EQ(repeat.status, serve::Status::Ok);
    EXPECT_TRUE(repeat.cached);
    EXPECT_TRUE(repeat.result == direct.result);
    server.stop();
}

TEST(ServeServer, MalformedLineAnswers400AndKeepsConnection)
{
    serve::Server server;
    server.start();
    serve::Client client(server.port());
    const serve::Response bad = client.callLine("this is not json");
    EXPECT_EQ(bad.status, serve::Status::BadRequest);
    EXPECT_FALSE(bad.error.empty());
    // The connection survived; a valid request still works.
    const serve::Response good = client.call(resnetRequest("m0"));
    EXPECT_EQ(good.status, serve::Status::Ok);
    server.stop();
}

TEST(ServeServer, UnknownJsonFieldAnswers400)
{
    serve::Server server;
    server.start();
    serve::Client client(server.port());
    const serve::Response response = client.callLine(
        "{\"id\":\"x\",\"model\":\"ResNet-50\",\"batchsize\":4}");
    EXPECT_EQ(response.status, serve::Status::BadRequest);
    server.stop();
}

TEST(ServeServer, QuotaRejectionTravelsTheWire)
{
    serve::Server server;
    server.setTenantQuota("tight", {1.0, 0.0});
    server.start();
    serve::Client client(server.port());
    serve::Request request = resnetRequest("q0");
    request.tenant = "tight";
    EXPECT_EQ(client.call(request).status, serve::Status::Ok);
    request.id = "q1";
    const serve::Response rejected = client.call(request);
    EXPECT_EQ(rejected.status, serve::Status::RejectedQuota);
    EXPECT_FALSE(rejected.error.empty());
    server.stop();
    EXPECT_EQ(server.admission().queueDepth(), 0);
}

TEST(ServeServer, ConcurrentClientsAllGetIdenticalAnswers)
{
    const serve::Response direct =
        serve::simulateDirect(resnetRequest("base"));
    serve::Server server;
    server.start();
    const int clients = 4, calls = 8;
    std::vector<int> mismatches(clients, 0);
    std::vector<std::thread> threads;
    for (int t = 0; t < clients; ++t) {
        threads.emplace_back([&, t] {
            serve::Client client(server.port());
            for (int i = 0; i < calls; ++i) {
                const serve::Response response = client.call(
                    resnetRequest(std::to_string(t) + "/" +
                                  std::to_string(i)));
                if (response.status != serve::Status::Ok ||
                    !(response.result == direct.result))
                    ++mismatches[t];
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    for (int t = 0; t < clients; ++t)
        EXPECT_EQ(mismatches[t], 0) << "client " << t;
    // One simulation total: everything else hit or coalesced.
    const auto stats = server.cache().stats();
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.hits + stats.coalesced + stats.misses,
              clients * calls);
    server.stop();
}

TEST(ServeServer, StopIsIdempotentAndStopsAccepting)
{
    serve::Server server;
    server.start();
    const int port = server.port();
    EXPECT_TRUE(server.running());
    server.stop();
    server.stop(); // idempotent
    EXPECT_FALSE(server.running());
    // New connections are refused (connect or first call fails).
    EXPECT_THROW(
        {
            serve::Client client(port);
            client.call(resnetRequest("x"));
        },
        util::FatalError);
}

TEST(ServeServer, OversizedLineClosesTheConnection)
{
    serve::Server server;
    server.start();
    serve::Client client(server.port());
    // 2 MiB of garbage with no newline blows the line bound; the
    // server sends a best-effort 400 and drops the connection rather
    // than buffering forever. The reset can race the 400's delivery,
    // so the client sees either — but never a hang or a crash.
    const std::string huge(2 * 1024 * 1024, 'x');
    bool got_response = false;
    try {
        const serve::Response bad = client.callLine(huge);
        got_response = true;
        EXPECT_EQ(bad.status, serve::Status::BadRequest);
        EXPECT_NE(bad.error.find("1 MiB"), std::string::npos);
    } catch (const util::FatalError &) {
        // Connection reset before the 400 arrived: equally final.
    }
    if (got_response) {
        // The connection is gone either way: the next call fails.
        EXPECT_THROW(client.call(resnetRequest("dead")),
                     util::FatalError);
    }
    // But the server itself survives.
    serve::Client fresh(server.port());
    EXPECT_EQ(fresh.call(resnetRequest("after")).status,
              serve::Status::Ok);
    server.stop();
}
