/**
 * @file
 * End-to-end functional training checks: the library's real math path
 * (tensor -> layers -> engine) driven through the public umbrella
 * header, coupled with the suite facade.
 */

#include <gtest/gtest.h>

#include "core/tbd.h"

using namespace tbd;

TEST(EndToEnd, UmbrellaHeaderExposesTheWholeApi)
{
    // Construct one object from every major subsystem through tbd.h.
    util::Rng rng(1);
    tensor::Tensor t(tensor::Shape{2, 2});
    layers::Activation act("relu", layers::ActKind::ReLU);
    engine::Network net("n");
    gpusim::GpuTimeline timeline(gpusim::quadroP4000());
    memprof::MemoryProfiler prof;
    data::CatchEnv env(5, 1);
    (void)frameworks::tensorflow();
    (void)models::resnet50();
    SUCCEED();
}

TEST(EndToEnd, ClassifierTrainsAndGeneralizes)
{
    // Train on one synthetic stream, evaluate on freshly drawn batches
    // from an identically-distributed stream (generalization, not
    // memorization).
    util::Rng rng(42);
    auto net = models::buildTinyResNet(rng, 3, 1, 8);
    engine::Adam opt(0.01f);
    engine::Session session(net, opt);
    data::SyntheticImages train(3, 1, 8, 100);
    layers::SoftmaxCrossEntropy ce;

    for (int i = 0; i < 80; ++i) {
        auto batch = train.nextBatch(16);
        session.step(batch.images,
                     [&](const tensor::Tensor &out,
                         engine::StepResult &r) {
                         r.loss = ce.forward(out, batch.labels);
                         return ce.backward();
                     });
    }

    // Held-out evaluation: same class templates (seed fixes them), new
    // noise draws.
    data::SyntheticImages held_out(3, 1, 8, 100);
    for (int i = 0; i < 10; ++i)
        held_out.nextBatch(16); // advance the stream away from training
    int hits = 0, total = 0;
    for (int b = 0; b < 4; ++b) {
        auto batch = held_out.nextBatch(16);
        tensor::Tensor out = net.forward(batch.images, false);
        for (std::int64_t n = 0; n < 16; ++n) {
            std::int64_t best = 0;
            for (std::int64_t c = 1; c < 3; ++c)
                if (out.at2(n, c) > out.at2(n, best))
                    best = c;
            hits += best == batch.labels[static_cast<std::size_t>(n)];
            ++total;
        }
    }
    EXPECT_GT(static_cast<double>(hits) / total, 0.7);
}

TEST(EndToEnd, SuiteAndFunctionalEngineAgreeOnModelIdentity)
{
    // The registry's ResNet-50 workload and the functional tiny ResNet
    // share the structural signature: conv -> bn -> relu bottleneck
    // blocks with projection shortcuts.
    auto workload = models::resnet50().describe(1);
    bool has_projection = false;
    for (const auto &op : workload.ops)
        has_projection |= op.name.find("_proj") != std::string::npos;
    EXPECT_TRUE(has_projection);

    util::Rng rng(1);
    auto net = models::buildTinyResNet(rng, 10, 3, 16);
    bool fn_projection = false;
    for (auto *p : net.params())
        fn_projection |= p->name.find("proj") != std::string::npos;
    EXPECT_TRUE(fn_projection);
}

TEST(EndToEnd, SamplingProfilerAgreesWithDirectSimulation)
{
    perf::RunConfig rc;
    rc.model = &models::inceptionV3();
    rc.framework = frameworks::FrameworkId::MXNet;
    rc.gpu = gpusim::quadroP4000();
    rc.batch = 16;

    perf::PerfSimulator sim;
    auto direct = sim.run(rc);
    auto sampled = analysis::SamplingProfiler(30).profile(rc);
    EXPECT_NEAR(sampled.result.throughputSamples,
                direct.throughputSamples,
                0.02 * direct.throughputSamples);
}
