/**
 * @file
 * Integration tests asserting the paper's thirteen observations
 * (Section 4) hold end-to-end in the reproduced system, exercising the
 * full stack: model registry -> workload -> lowering -> GPU timeline ->
 * metrics, memory model and distributed simulator.
 */

#include <gtest/gtest.h>

#include "core/tbd.h"

using namespace tbd;

namespace {

perf::RunResult
run(const models::ModelDesc &m, frameworks::FrameworkId f,
    std::int64_t batch, const gpusim::GpuSpec &gpu = gpusim::quadroP4000())
{
    perf::PerfSimulator sim;
    perf::RunConfig rc;
    rc.model = &m;
    rc.framework = f;
    rc.gpu = gpu;
    rc.batch = batch;
    return sim.run(rc);
}

using FI = frameworks::FrameworkId;

} // namespace

TEST(Observations, Obs1_ThroughputIncreasesWithMiniBatch)
{
    for (const auto *m : models::allModels()) {
        if (m->batchSweep.size() < 2)
            continue; // Faster R-CNN: single batch size
        const auto fw = m->frameworks.front();
        const auto lo = run(*m, fw, m->batchSweep.front());
        const auto hi = run(*m, fw, m->batchSweep.back());
        EXPECT_GT(hi.throughputSamples, lo.throughputSamples) << m->name;
    }
}

TEST(Observations, Obs2_RnnModelsDoNotSaturate)
{
    // Doubling the batch at the top of the sweep still buys >= 25% for
    // the RNN models but < 15% for the image classifiers.
    auto gain = [](const models::ModelDesc &m, FI f, std::int64_t b) {
        return run(m, f, b).throughputSamples /
               run(m, f, b / 2).throughputSamples;
    };
    EXPECT_GT(gain(models::seq2seqNmt(), FI::TensorFlow, 128), 1.2);
    EXPECT_GT(gain(models::deepSpeech2(), FI::MXNet, 4), 1.2);
    EXPECT_LT(gain(models::resnet50(), FI::MXNet, 64), 1.15);
    EXPECT_LT(gain(models::inceptionV3(), FI::MXNet, 64), 1.15);
}

TEST(Observations, Obs3_FrameworkRankingsDependOnApplication)
{
    // MXNet wins image classification; TensorFlow wins translation.
    EXPECT_GT(run(models::resnet50(), FI::MXNet, 32).throughputSamples,
              run(models::resnet50(), FI::TensorFlow, 32)
                  .throughputSamples);
    EXPECT_GT(
        run(models::seq2seqNmt(), FI::TensorFlow, 64).throughputSamples,
        run(models::sockeye(), FI::MXNet, 64).throughputSamples);
    // And TensorFlow's memory packing allows NMT batch 128 where
    // Sockeye is capped at 64 on the same 8 GiB GPU.
    const auto cap = gpusim::quadroP4000().memoryBytes();
    EXPECT_EQ(perf::maxFeasibleBatch(models::seq2seqNmt(),
                                     frameworks::tensorflow(), cap),
              128);
    EXPECT_EQ(perf::maxFeasibleBatch(models::sockeye(),
                                     frameworks::mxnet(), cap),
              64);
}

TEST(Observations, Obs4_LargeBatchesKeepTheGpuBusy)
{
    auto small = run(models::sockeye(), FI::MXNet, 4);
    auto large = run(models::sockeye(), FI::MXNet, 64);
    EXPECT_LT(small.gpuUtilization, large.gpuUtilization);
    EXPECT_GT(large.gpuUtilization, 0.9);
}

TEST(Observations, Obs5_LstmModelsUnderutilizeTheGpu)
{
    // At modest batches LSTM models trail CNNs in GPU utilization,
    // while the Transformer (attention, same application) does not.
    auto cnn = run(models::resnet50(), FI::MXNet, 8);
    auto lstm = run(models::sockeye(), FI::MXNet, 8);
    auto attn = run(models::transformer(), FI::TensorFlow, 1024);
    EXPECT_LT(lstm.gpuUtilization, cnn.gpuUtilization);
    EXPECT_GT(attn.gpuUtilization, 0.95);
}

TEST(Observations, Obs6_Fp32UtilizationGrowsWithBatch)
{
    auto r4 = run(models::resnet50(), FI::MXNet, 4);
    auto r64 = run(models::resnet50(), FI::MXNet, 64);
    EXPECT_GT(r64.fp32Utilization, r4.fp32Utilization);
}

TEST(Observations, Obs7_RnnFp32UtilizationIsLowEvenAtMaxBatch)
{
    auto nmt = run(models::seq2seqNmt(), FI::TensorFlow, 128);
    auto ds2 = run(models::deepSpeech2(), FI::MXNet, 4);
    auto cnn = run(models::resnet50(), FI::TensorFlow, 64);
    EXPECT_LT(nmt.fp32Utilization, 0.75 * cnn.fp32Utilization);
    EXPECT_LT(ds2.fp32Utilization, 0.35 * cnn.fp32Utilization);
}

TEST(Observations, Obs8_LongLowUtilizationKernelsExist)
{
    // Tables 5/6: even the optimized CNNs spend >= 10% of GPU time in
    // kernels with below-average FP32 utilization (batch norm heads
    // the list).
    for (auto fw : {FI::TensorFlow, FI::MXNet}) {
        auto r = run(models::resnet50(), fw, 32);
        auto low = analysis::longestLowUtilKernels(r.kernelTrace, 5);
        ASSERT_GE(low.size(), 3u);
        double share = 0.0;
        for (const auto &agg : low)
            share += agg.durationShare;
        EXPECT_GT(share, 0.10);
        EXPECT_NE(low[0].name.find("bn_") == std::string::npos &&
                      low[1].name.find("bn_") == std::string::npos &&
                      low[2].name.find("bn_") == std::string::npos,
                  true)
            << "batch-norm kernels should appear in the report";
    }
}

TEST(Observations, Obs9_CpuUtilizationIsLow)
{
    // Under 15% for all but one model; under 8% for all but two
    // (Fig. 7). The exceptions: A3C (emulator) and TF Faster R-CNN.
    int above8 = 0, above15 = 0;
    for (const auto *m : models::allModels()) {
        for (auto fw : m->frameworks) {
            auto r = run(*m, fw, m->batchSweep.back());
            above8 += r.cpuUtilization > 0.08;
            above15 += r.cpuUtilization > 0.15;
        }
    }
    EXPECT_LE(above15, 1); // A3C only
    EXPECT_LE(above8, 2);  // A3C + TF Faster R-CNN
}

TEST(Observations, Obs10_TitanXpFasterButLowerUtilization)
{
    for (const auto *m : {&models::resnet50(), &models::inceptionV3()}) {
        auto p4 = run(*m, FI::MXNet, 32);
        auto xp = run(*m, FI::MXNet, 32, gpusim::titanXp());
        EXPECT_GT(xp.throughputSamples, p4.throughputSamples) << m->name;
        EXPECT_LT(xp.fp32Utilization, p4.fp32Utilization) << m->name;
    }
}

TEST(Observations, Obs11_FeatureMapsDominateMemory)
{
    for (const auto *m : models::allModels()) {
        auto r = run(*m, m->frameworks.front(), m->batchSweep.back());
        const double fm =
            r.memory.fraction(memprof::MemCategory::FeatureMaps);
        const double weights =
            r.memory.fraction(memprof::MemCategory::Weights);
        EXPECT_GT(fm, weights) << m->name;
        EXPECT_GT(fm, 0.45) << m->name;
    }
}

TEST(Observations, Obs12_BatchBacksOffCheaply)
{
    // Halving the batch from the saturation point loses little
    // throughput but frees a large fraction of memory.
    auto full = run(models::resnet50(), FI::MXNet, 64);
    auto half = run(models::resnet50(), FI::MXNet, 32);
    EXPECT_GT(half.throughputSamples, 0.9 * full.throughputSamples);
    EXPECT_LT(static_cast<double>(half.memory.total()),
              0.65 * static_cast<double>(full.memory.total()));
}

TEST(Observations, Obs13_NetworkBandwidthGovernsScalability)
{
    dist::ClusterConfig eth{2, 1, dist::ethernet1G()};
    dist::ClusterConfig ib{2, 1, dist::infiniband100G()};
    dist::ClusterConfig quad{1, 4, dist::infiniband100G()};
    auto single = run(models::resnet50(), FI::MXNet, 32);
    auto r_eth = dist::simulateDataParallel(
        models::resnet50(), FI::MXNet, gpusim::quadroP4000(), 32, eth);
    auto r_ib = dist::simulateDataParallel(
        models::resnet50(), FI::MXNet, gpusim::quadroP4000(), 32, ib);
    auto r_quad = dist::simulateDataParallel(
        models::resnet50(), FI::MXNet, gpusim::quadroP4000(), 32, quad);
    EXPECT_LT(r_eth.throughputSamples, single.throughputSamples);
    EXPECT_GT(r_ib.throughputSamples, 1.7 * single.throughputSamples);
    EXPECT_GT(r_quad.scalingEfficiency, 0.85);
}
