#include "layers/norm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "layer_test_util.h"

namespace tl = tbd::layers;
namespace tt = tbd::tensor;
using tbd::testutil::checkLayerGradients;
using tbd::testutil::randn;

TEST(BatchNorm2d, NormalizesPerChannelInTraining)
{
    tl::BatchNorm2d bn("bn", 3);
    tt::Tensor x = randn(tt::Shape{4, 3, 5, 5}, 1, 3.0f);
    tt::Tensor y = bn.forward(x, true);
    // Each channel of the output should be ~N(0, 1) (gamma=1, beta=0).
    const auto plane = 5 * 5;
    for (std::int64_t c = 0; c < 3; ++c) {
        double sum = 0.0, sq = 0.0;
        for (std::int64_t n = 0; n < 4; ++n) {
            for (std::int64_t i = 0; i < plane; ++i) {
                const float v = y.at((n * 3 + c) * plane + i);
                sum += v;
                sq += static_cast<double>(v) * v;
            }
        }
        const double count = 4.0 * plane;
        EXPECT_NEAR(sum / count, 0.0, 1e-4);
        EXPECT_NEAR(sq / count, 1.0, 1e-2);
    }
}

TEST(BatchNorm2d, InferenceUsesRunningStats)
{
    tl::BatchNorm2d bn("bn", 2, /*momentum=*/0.0f);
    tt::Tensor x = randn(tt::Shape{8, 2, 4, 4}, 2, 2.0f);
    bn.forward(x, true); // momentum 0: running stats = batch stats
    tt::Tensor y_train = bn.forward(x, true);
    tt::Tensor y_eval = bn.forward(x, false);
    for (std::int64_t i = 0; i < y_train.numel(); ++i)
        EXPECT_NEAR(y_eval.at(i), y_train.at(i), 5e-3);
}

TEST(BatchNorm2d, GradientMatchesNumeric)
{
    tl::BatchNorm2d bn("bn", 2);
    checkLayerGradients(bn, randn(tt::Shape{3, 2, 3, 3}, 3), 99, 3e-2);
}

TEST(BatchNorm2d, GammaBetaAreParams)
{
    tl::BatchNorm2d bn("bn", 7);
    EXPECT_EQ(bn.params().size(), 2u);
    EXPECT_EQ(bn.paramCount(), 14);
}

TEST(BatchNorm2d, RejectsWrongChannels)
{
    tl::BatchNorm2d bn("bn", 3);
    EXPECT_THROW(bn.forward(randn(tt::Shape{1, 4, 2, 2}, 1), true),
                 tbd::util::FatalError);
}

TEST(LayerNorm, NormalizesRows)
{
    tl::LayerNorm ln("ln", 16);
    tt::Tensor x = randn(tt::Shape{4, 16}, 5, 4.0f);
    tt::Tensor y = ln.forward(x, false);
    for (std::int64_t r = 0; r < 4; ++r) {
        double sum = 0.0, sq = 0.0;
        for (std::int64_t j = 0; j < 16; ++j) {
            sum += y.at2(r, j);
            sq += static_cast<double>(y.at2(r, j)) * y.at2(r, j);
        }
        EXPECT_NEAR(sum / 16.0, 0.0, 1e-4);
        EXPECT_NEAR(sq / 16.0, 1.0, 2e-2);
    }
}

TEST(LayerNorm, GradientMatchesNumeric)
{
    tl::LayerNorm ln("ln", 6);
    checkLayerGradients(ln, randn(tt::Shape{3, 4, 6}, 6), 100, 3e-2);
}

TEST(LayerNorm, WorksOnRank3TransformerShapes)
{
    tl::LayerNorm ln("ln", 8);
    tt::Tensor y = ln.forward(randn(tt::Shape{2, 5, 8}, 7), false);
    EXPECT_EQ(y.shape(), tt::Shape({2, 5, 8}));
}
