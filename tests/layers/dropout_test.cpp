#include "layers/dropout.h"

#include <gtest/gtest.h>

#include "layer_test_util.h"

namespace tl = tbd::layers;
namespace tt = tbd::tensor;
using tbd::testutil::randn;

TEST(Dropout, InferencePassesThrough)
{
    tl::Dropout drop("d", 0.5f, tbd::util::Rng(1));
    tt::Tensor x = randn(tt::Shape{100}, 2);
    tt::Tensor y = drop.forward(x, false);
    for (std::int64_t i = 0; i < x.numel(); ++i)
        EXPECT_FLOAT_EQ(y.at(i), x.at(i));
}

TEST(Dropout, TrainingDropsApproxRate)
{
    tl::Dropout drop("d", 0.3f, tbd::util::Rng(3));
    tt::Tensor x(tt::Shape{20000}, 1.0f);
    tt::Tensor y = drop.forward(x, true);
    std::int64_t zeros = 0;
    for (std::int64_t i = 0; i < y.numel(); ++i)
        zeros += y.at(i) == 0.0f;
    const double rate = static_cast<double>(zeros) / y.numel();
    EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Dropout, InvertedScalingPreservesExpectation)
{
    tl::Dropout drop("d", 0.5f, tbd::util::Rng(4));
    tt::Tensor x(tt::Shape{50000}, 1.0f);
    tt::Tensor y = drop.forward(x, true);
    EXPECT_NEAR(y.sum() / y.numel(), 1.0, 0.03);
}

TEST(Dropout, BackwardUsesSameMask)
{
    tl::Dropout drop("d", 0.5f, tbd::util::Rng(5));
    tt::Tensor x(tt::Shape{64}, 1.0f);
    tt::Tensor y = drop.forward(x, true);
    tt::Tensor dy(tt::Shape{64}, 1.0f);
    tt::Tensor dx = drop.backward(dy);
    for (std::int64_t i = 0; i < 64; ++i)
        EXPECT_FLOAT_EQ(dx.at(i), y.at(i)); // mask * 1 both times
}

TEST(Dropout, ZeroRateIsIdentityInTraining)
{
    tl::Dropout drop("d", 0.0f, tbd::util::Rng(6));
    tt::Tensor x = randn(tt::Shape{16}, 7);
    tt::Tensor y = drop.forward(x, true);
    for (std::int64_t i = 0; i < 16; ++i)
        EXPECT_FLOAT_EQ(y.at(i), x.at(i));
}

TEST(Dropout, RejectsRateOutOfRange)
{
    EXPECT_THROW(tl::Dropout("d", 1.0f, tbd::util::Rng(1)),
                 tbd::util::FatalError);
    EXPECT_THROW(tl::Dropout("d", -0.1f, tbd::util::Rng(1)),
                 tbd::util::FatalError);
}
