#include "layers/embedding.h"

#include <gtest/gtest.h>

#include "layer_test_util.h"

namespace tl = tbd::layers;
namespace tt = tbd::tensor;

TEST(Embedding, LooksUpRows)
{
    tbd::util::Rng rng(1);
    tl::Embedding emb("e", 10, 4, rng);
    tt::Tensor ids(tt::Shape{2, 3},
                   std::vector<float>{0, 1, 2, 7, 8, 9});
    tt::Tensor y = emb.forward(ids, false);
    EXPECT_EQ(y.shape(), tt::Shape({2, 3, 4}));
    // Row for token 7 equals table row 7.
    for (std::int64_t j = 0; j < 4; ++j)
        EXPECT_FLOAT_EQ(y.at((3 + 0) * 4 + j),
                        emb.params()[0]->value.at2(7, j));
}

TEST(Embedding, GradientScatterAddsDuplicates)
{
    tbd::util::Rng rng(2);
    tl::Embedding emb("e", 5, 2, rng);
    tt::Tensor ids(tt::Shape{1, 3}, std::vector<float>{2, 2, 4});
    emb.forward(ids, true);
    tt::Tensor dy(tt::Shape{1, 3, 2}, 1.0f);
    emb.backward(dy);
    tl::Param *table = emb.params()[0];
    EXPECT_FLOAT_EQ(table->grad.at2(2, 0), 2.0f); // token 2 used twice
    EXPECT_FLOAT_EQ(table->grad.at2(4, 0), 1.0f);
    EXPECT_FLOAT_EQ(table->grad.at2(0, 0), 0.0f);
}

TEST(Embedding, RejectsOutOfVocabIds)
{
    tbd::util::Rng rng(3);
    tl::Embedding emb("e", 5, 2, rng);
    tt::Tensor bad(tt::Shape{1}, std::vector<float>{5});
    EXPECT_THROW(emb.forward(bad, false), tbd::util::FatalError);
}

TEST(Embedding, ParamCount)
{
    tbd::util::Rng rng(4);
    tl::Embedding emb("e", 100, 16, rng);
    EXPECT_EQ(emb.paramCount(), 1600);
}
