#include "layers/pool.h"

#include <gtest/gtest.h>

#include "layer_test_util.h"

namespace tl = tbd::layers;
namespace tt = tbd::tensor;
using tbd::testutil::checkLayerGradients;
using tbd::testutil::randn;

TEST(MaxPool2d, OutputShape)
{
    tl::MaxPool2d pool("p", 3, 2, 1);
    tt::Tensor y = pool.forward(randn(tt::Shape{2, 4, 8, 8}, 1), false);
    EXPECT_EQ(y.shape(), tt::Shape({2, 4, 4, 4}));
}

TEST(MaxPool2d, GradientMatchesNumeric)
{
    tl::MaxPool2d pool("p", 2, 2);
    // Distinct values so the argmax is stable under perturbation.
    tt::Tensor x(tt::Shape{1, 2, 4, 4});
    for (std::int64_t i = 0; i < x.numel(); ++i)
        x.at(i) = static_cast<float>(i % 7) + 0.1f * static_cast<float>(i);
    checkLayerGradients(pool, x, 3, 2e-2, 1e-3);
}

TEST(AvgPool2d, GradientMatchesNumeric)
{
    tl::AvgPool2d pool("p", 2, 2);
    checkLayerGradients(pool, randn(tt::Shape{2, 2, 4, 4}, 4));
}

TEST(GlobalAvgPool, ReducesToChannels)
{
    tl::GlobalAvgPool pool("gap");
    tt::Tensor x(tt::Shape{2, 3, 4, 4}, 2.0f);
    tt::Tensor y = pool.forward(x, false);
    EXPECT_EQ(y.shape(), tt::Shape({2, 3}));
    EXPECT_FLOAT_EQ(y.at(0), 2.0f);
}

TEST(GlobalAvgPool, GradientMatchesNumeric)
{
    tl::GlobalAvgPool pool("gap");
    checkLayerGradients(pool, randn(tt::Shape{2, 3, 3, 3}, 5));
}

TEST(Flatten, RoundTripsShape)
{
    tl::Flatten fl("fl");
    tt::Tensor x = randn(tt::Shape{2, 3, 4, 5}, 6);
    tt::Tensor y = fl.forward(x, true);
    EXPECT_EQ(y.shape(), tt::Shape({2, 60}));
    tt::Tensor dx = fl.backward(y);
    EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Pooling, BackwardBeforeForwardThrows)
{
    tl::MaxPool2d pool("p", 2, 2);
    EXPECT_THROW(pool.backward(tt::Tensor(tt::Shape{1, 1, 1, 1})),
                 tbd::util::FatalError);
}
