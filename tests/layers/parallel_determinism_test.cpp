/**
 * @file
 * Determinism of the threaded layer kernels: Conv2d and BatchNorm2d
 * forward/backward must be bitwise-identical to the serial reference
 * at every thread count, including the accumulated parameter
 * gradients.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "layers/conv.h"
#include "layers/norm.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tl = tbd::layers;
namespace tt = tbd::tensor;
namespace tu = tbd::util;

namespace {

tt::Tensor
randn(tt::Shape shape, std::uint64_t seed)
{
    tu::Rng rng(seed);
    tt::Tensor t(std::move(shape));
    t.fillNormal(rng, 0.0f, 1.0f);
    return t;
}

bool
bitwiseEqual(const tt::Tensor &a, const tt::Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.numel()) *
                           sizeof(float)) == 0;
}

struct TrainStep
{
    tt::Tensor y;   ///< forward output
    tt::Tensor dx;  ///< input gradient
    std::vector<tt::Tensor> grads; ///< parameter gradients, in order
};

// One zeroGrads + training forward + backward of `layer`, capturing
// everything the threaded kernels write.
TrainStep
step(tl::Layer &layer, const tt::Tensor &x, const tt::Tensor &dy)
{
    layer.zeroGrads();
    TrainStep s;
    s.y = layer.forward(x, true);
    s.dx = layer.backward(dy);
    for (auto *p : layer.params())
        s.grads.push_back(p->grad.clone());
    return s;
}

void
expectStepsEqual(const TrainStep &a, const TrainStep &b,
                 std::size_t threads)
{
    EXPECT_TRUE(bitwiseEqual(a.y, b.y))
        << "forward mismatch at " << threads << " threads";
    EXPECT_TRUE(bitwiseEqual(a.dx, b.dx))
        << "input-grad mismatch at " << threads << " threads";
    ASSERT_EQ(a.grads.size(), b.grads.size());
    for (std::size_t i = 0; i < a.grads.size(); ++i)
        EXPECT_TRUE(bitwiseEqual(a.grads[i], b.grads[i]))
            << "param grad " << i << " mismatch at " << threads
            << " threads";
}

void
expectLayerDeterministic(tl::Layer &layer, const tt::Tensor &x,
                         const tt::Tensor &dy)
{
    tu::ThreadPool serial(1);
    TrainStep reference;
    {
        tu::ThreadPool::Scope scope(serial);
        reference = step(layer, x, dy);
    }
    for (std::size_t threads : {2u, 3u, 8u}) {
        tu::ThreadPool pool(threads);
        tu::ThreadPool::Scope scope(pool);
        const TrainStep parallel = step(layer, x, dy);
        expectStepsEqual(reference, parallel, threads);
    }
}

} // namespace

TEST(ParallelDeterminism, Conv2dTrainStepBitwiseEqual)
{
    tu::Rng rng(1);
    tl::Conv2d conv("conv", 5, 7, 3, 1, 1, rng);
    const tt::Tensor x = randn(tt::Shape{6, 5, 9, 9}, 2);
    const tt::Tensor dy = randn(tt::Shape{6, 7, 9, 9}, 3);
    expectLayerDeterministic(conv, x, dy);
}

TEST(ParallelDeterminism, Conv2dStridedBitwiseEqual)
{
    tu::Rng rng(4);
    tl::Conv2d conv("conv", 4, 6, 5, 2, 2, rng);
    const tt::Tensor x = randn(tt::Shape{3, 4, 17, 17}, 5);
    const tt::Tensor dy = randn(tt::Shape{3, 6, 9, 9}, 6);
    expectLayerDeterministic(conv, x, dy);
}

TEST(ParallelDeterminism, BatchNormTrainStepBitwiseEqual)
{
    tl::BatchNorm2d bn("bn", 13);
    const tt::Tensor x = randn(tt::Shape{4, 13, 6, 6}, 7);
    const tt::Tensor dy = randn(tt::Shape{4, 13, 6, 6}, 8);
    expectLayerDeterministic(bn, x, dy);
}

TEST(ParallelDeterminism, BatchNormRunningStatsMatchSerial)
{
    // The running mean/var updates are per-channel too; check the
    // inference path (which consumes them) agrees after training under
    // different thread counts.
    const tt::Tensor x = randn(tt::Shape{4, 9, 5, 5}, 9);

    auto trainThenInfer = [&](std::size_t threads) {
        tl::BatchNorm2d bn("bn", 9);
        tu::ThreadPool pool(threads);
        tu::ThreadPool::Scope scope(pool);
        for (int i = 0; i < 3; ++i)
            bn.forward(x, true);
        return bn.forward(x, false);
    };
    const tt::Tensor reference = trainThenInfer(1);
    for (std::size_t threads : {2u, 5u}) {
        EXPECT_TRUE(bitwiseEqual(reference, trainThenInfer(threads)))
            << "inference mismatch at " << threads << " threads";
    }
}
