#include "layers/attention.h"

#include <gtest/gtest.h>

#include "layer_test_util.h"

namespace tl = tbd::layers;
namespace tt = tbd::tensor;
using tbd::testutil::checkLayerGradients;
using tbd::testutil::randn;

TEST(MultiHeadAttention, OutputShape)
{
    tbd::util::Rng rng(1);
    tl::MultiHeadAttention mha("mha", 8, 2, rng);
    tt::Tensor y = mha.forward(randn(tt::Shape{2, 5, 8}, 2), false);
    EXPECT_EQ(y.shape(), tt::Shape({2, 5, 8}));
}

TEST(MultiHeadAttention, RejectsIndivisibleHeads)
{
    tbd::util::Rng rng(1);
    EXPECT_THROW(tl::MultiHeadAttention("m", 10, 3, rng),
                 tbd::util::FatalError);
}

TEST(MultiHeadAttention, GradientMatchesNumeric)
{
    tbd::util::Rng rng(3);
    tl::MultiHeadAttention mha("mha", 6, 2, rng);
    checkLayerGradients(mha, randn(tt::Shape{2, 3, 6}, 4, 0.5f), 53, 3e-2);
}

TEST(MultiHeadAttention, CausalGradientMatchesNumeric)
{
    tbd::util::Rng rng(5);
    tl::MultiHeadAttention mha("mha", 4, 2, rng, /*causal=*/true);
    checkLayerGradients(mha, randn(tt::Shape{1, 4, 4}, 6, 0.5f), 54, 3e-2);
}

TEST(MultiHeadAttention, CausalMaskBlocksFuture)
{
    // With a causal mask, output at t=0 must not depend on input at t>0.
    tbd::util::Rng rng(7);
    tl::MultiHeadAttention mha("mha", 4, 1, rng, /*causal=*/true);
    tt::Tensor a = randn(tt::Shape{1, 3, 4}, 8);
    tt::Tensor b = a.clone();
    b.at(2 * 4 + 1) = 100.0f; // change t=2
    tt::Tensor ya = mha.forward(a, false);
    tt::Tensor yb = mha.forward(b, false);
    for (std::int64_t j = 0; j < 4; ++j)
        EXPECT_NEAR(ya.at(j), yb.at(j), 1e-5); // t=0 row unchanged
}

TEST(MultiHeadAttention, NonCausalSeesFuture)
{
    tbd::util::Rng rng(9);
    tl::MultiHeadAttention mha("mha", 4, 1, rng, /*causal=*/false);
    tt::Tensor a = randn(tt::Shape{1, 3, 4}, 10);
    tt::Tensor b = a.clone();
    b.at(2 * 4 + 1) = 100.0f;
    tt::Tensor ya = mha.forward(a, false);
    tt::Tensor yb = mha.forward(b, false);
    double diff = 0.0;
    for (std::int64_t j = 0; j < 4; ++j)
        diff += std::abs(ya.at(j) - yb.at(j));
    EXPECT_GT(diff, 1e-4);
}

TEST(MultiHeadAttention, FourProjectionParams)
{
    tbd::util::Rng rng(1);
    tl::MultiHeadAttention mha("mha", 8, 2, rng);
    EXPECT_EQ(mha.params().size(), 4u);
    EXPECT_EQ(mha.paramCount(), 4 * 8 * 8);
}
