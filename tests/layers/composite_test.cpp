#include "layers/composite.h"

#include <gtest/gtest.h>

#include "layers/activations.h"
#include "layers/conv.h"
#include "layers/dense.h"
#include "layer_test_util.h"

namespace tl = tbd::layers;
namespace tt = tbd::tensor;
using tbd::testutil::checkLayerGradients;
using tbd::testutil::randn;

namespace {

tl::LayerPtr
makeDense(const char *name, std::int64_t in, std::int64_t out,
          std::uint64_t seed)
{
    tbd::util::Rng rng(seed);
    return std::make_unique<tl::FullyConnected>(name, in, out, rng);
}

} // namespace

TEST(Sequential, RunsChildrenInOrder)
{
    tl::Sequential seq("seq");
    seq.add(makeDense("a", 4, 6, 1));
    seq.add(std::make_unique<tl::Activation>("r", tl::ActKind::Tanh));
    seq.add(makeDense("b", 6, 2, 2));
    tt::Tensor y = seq.forward(randn(tt::Shape{3, 4}, 3), false);
    EXPECT_EQ(y.shape(), tt::Shape({3, 2}));
    EXPECT_EQ(seq.size(), 3u);
}

TEST(Sequential, CollectsAllParams)
{
    tl::Sequential seq("seq");
    seq.add(makeDense("a", 4, 6, 1)); // 4*6+6 = 30
    seq.add(makeDense("b", 6, 2, 2)); // 6*2+2 = 14
    EXPECT_EQ(seq.paramCount(), 44);
}

TEST(Sequential, GradientMatchesNumeric)
{
    tl::Sequential seq("seq");
    seq.add(makeDense("a", 4, 5, 1));
    seq.add(std::make_unique<tl::Activation>("t", tl::ActKind::Tanh));
    seq.add(makeDense("b", 5, 3, 2));
    checkLayerGradients(seq, randn(tt::Shape{2, 4}, 9));
}

TEST(Residual, IdentityShortcutAddsInput)
{
    // Body is a tanh; y = tanh(x) + x.
    auto body = std::make_unique<tl::Activation>("t", tl::ActKind::Tanh);
    tl::Residual res("res", std::move(body));
    tt::Tensor x(tt::Shape{2, 3}, 0.0f);
    tt::Tensor y = res.forward(x, false);
    for (std::int64_t i = 0; i < y.numel(); ++i)
        EXPECT_FLOAT_EQ(y.at(i), 0.0f);
}

TEST(Residual, GradientMatchesNumericIdentityShortcut)
{
    auto body = std::make_unique<tl::Sequential>("body");
    body->add(makeDense("a", 4, 4, 11));
    body->add(std::make_unique<tl::Activation>("t", tl::ActKind::Tanh));
    tl::Residual res("res", std::move(body));
    checkLayerGradients(res, randn(tt::Shape{2, 4}, 12));
}

TEST(Residual, GradientMatchesNumericProjectionShortcut)
{
    auto body = makeDense("body", 4, 6, 13);
    auto shortcut = makeDense("short", 4, 6, 14);
    tl::Residual res("res", std::move(body), std::move(shortcut));
    checkLayerGradients(res, randn(tt::Shape{2, 4}, 15));
}

TEST(Residual, RejectsShapeMismatch)
{
    auto body = makeDense("body", 4, 6, 16);
    tl::Residual res("res", std::move(body)); // identity shortcut: 4 != 6
    EXPECT_THROW(res.forward(randn(tt::Shape{2, 4}, 17), false),
                 tbd::util::FatalError);
}

TEST(ConcatBranches, ConcatenatesChannels)
{
    tbd::util::Rng rng(1);
    std::vector<tl::LayerPtr> branches;
    branches.push_back(
        std::make_unique<tl::Conv2d>("b1", 2, 3, 1, 1, 0, rng));
    branches.push_back(
        std::make_unique<tl::Conv2d>("b2", 2, 5, 3, 1, 1, rng));
    tl::ConcatBranches cat("cat", std::move(branches));
    tt::Tensor y = cat.forward(randn(tt::Shape{2, 2, 4, 4}, 2), false);
    EXPECT_EQ(y.shape(), tt::Shape({2, 8, 4, 4}));
}

TEST(ConcatBranches, GradientMatchesNumeric)
{
    tbd::util::Rng rng(3);
    std::vector<tl::LayerPtr> branches;
    branches.push_back(
        std::make_unique<tl::Conv2d>("b1", 2, 2, 1, 1, 0, rng));
    branches.push_back(
        std::make_unique<tl::Conv2d>("b2", 2, 3, 3, 1, 1, rng));
    tl::ConcatBranches cat("cat", std::move(branches));
    checkLayerGradients(cat, randn(tt::Shape{1, 2, 3, 3}, 4, 0.5f));
}
