#include "layers/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/gradcheck.h"
#include "layer_test_util.h"

namespace tl = tbd::layers;
namespace tt = tbd::tensor;
using tbd::testutil::randn;

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC)
{
    tl::SoftmaxCrossEntropy ce;
    tt::Tensor logits(tt::Shape{2, 4}); // all zeros
    const double loss = ce.forward(logits, {0, 3});
    EXPECT_NEAR(loss, std::log(4.0), 1e-5);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectIsLowLoss)
{
    tl::SoftmaxCrossEntropy ce;
    tt::Tensor logits(tt::Shape{1, 3}, std::vector<float>{10, 0, 0});
    EXPECT_LT(ce.forward(logits, {0}), 0.01);
    EXPECT_DOUBLE_EQ(ce.accuracy(), 1.0);
}

TEST(SoftmaxCrossEntropy, GradientMatchesNumeric)
{
    tl::SoftmaxCrossEntropy ce;
    tt::Tensor logits = randn(tt::Shape{3, 5}, 1);
    std::vector<std::int64_t> labels = {1, 4, 0};
    ce.forward(logits, labels);
    tt::Tensor analytic = ce.backward();
    auto loss = [&]() { return ce.forward(logits, labels); };
    auto res = tt::checkGradient(logits, loss, analytic, 1e-3, 0);
    EXPECT_TRUE(res.ok(1e-2)) << res.maxRelError;
}

TEST(SoftmaxCrossEntropy, LabelSmoothingGradientMatchesNumeric)
{
    tl::SoftmaxCrossEntropy ce(0.1f);
    tt::Tensor logits = randn(tt::Shape{2, 4}, 2);
    std::vector<std::int64_t> labels = {0, 2};
    ce.forward(logits, labels);
    tt::Tensor analytic = ce.backward();
    auto loss = [&]() { return ce.forward(logits, labels); };
    auto res = tt::checkGradient(logits, loss, analytic, 1e-3, 0);
    EXPECT_TRUE(res.ok(1e-2)) << res.maxRelError;
}

TEST(SoftmaxCrossEntropy, RejectsBadLabel)
{
    tl::SoftmaxCrossEntropy ce;
    tt::Tensor logits(tt::Shape{1, 3});
    EXPECT_THROW(ce.forward(logits, {3}), tbd::util::FatalError);
}

TEST(MseLoss, KnownValueAndGradient)
{
    tl::MseLoss mse;
    tt::Tensor pred(tt::Shape{2}, std::vector<float>{1.0f, 3.0f});
    tt::Tensor target(tt::Shape{2}, std::vector<float>{0.0f, 0.0f});
    EXPECT_DOUBLE_EQ(mse.forward(pred, target), 5.0);
    tt::Tensor g = mse.backward();
    EXPECT_FLOAT_EQ(g.at(0), 1.0f); // 2*(1-0)/2
    EXPECT_FLOAT_EQ(g.at(1), 3.0f);
}

TEST(CtcLoss, PerfectAlignmentHasLowLoss)
{
    // T=3, C=3 (blank=0). Target "1 2". Make logits strongly favor the
    // path 1,2,blank.
    tt::Tensor logits(tt::Shape{1, 3, 3});
    logits.at(0 * 3 + 1) = 10.0f; // t0 -> 1
    logits.at(1 * 3 + 2) = 10.0f; // t1 -> 2
    logits.at(2 * 3 + 0) = 10.0f; // t2 -> blank
    tl::CtcLoss ctc;
    const double loss = ctc.forward(logits, {{1, 2}});
    EXPECT_LT(loss, 0.01);
}

TEST(CtcLoss, UniformLogitsLossMatchesPathCount)
{
    // With uniform distributions every length-T path has prob C^-T;
    // loss = -log(#valid paths / C^T).
    tt::Tensor logits(tt::Shape{1, 2, 2}); // T=2, C=2, target "1"
    tl::CtcLoss ctc;
    const double loss = ctc.forward(logits, {{1}});
    // Valid paths for label "1" with T=2: (1,1), (0,1), (1,0) -> 3/4.
    EXPECT_NEAR(loss, -std::log(3.0 / 4.0), 1e-6);
}

TEST(CtcLoss, GradientMatchesNumeric)
{
    tt::Tensor logits = randn(tt::Shape{2, 5, 4}, 3);
    std::vector<std::vector<std::int64_t>> targets = {{1, 2}, {3, 3}};
    tl::CtcLoss ctc;
    ctc.forward(logits, targets);
    tt::Tensor analytic = ctc.backward();
    auto loss = [&]() { return ctc.forward(logits, targets); };
    auto res = tt::checkGradient(logits, loss, analytic, 1e-3, 64);
    EXPECT_TRUE(res.ok(1e-2)) << res.maxRelError;
}

TEST(CtcLoss, RepeatedLabelNeedsSeparatorBlank)
{
    // Label "1 1" with T=2 is infeasible (needs 1, blank, 1).
    tt::Tensor logits(tt::Shape{1, 2, 2});
    tl::CtcLoss ctc;
    EXPECT_THROW(ctc.forward(logits, {{1, 1}}), tbd::util::FatalError);
}

TEST(CtcLoss, RejectsBlankInTarget)
{
    tt::Tensor logits(tt::Shape{1, 4, 3});
    tl::CtcLoss ctc;
    EXPECT_THROW(ctc.forward(logits, {{0}}), tbd::util::FatalError);
}

TEST(WassersteinLoss, SignedMeanAndConstantGradient)
{
    tl::WassersteinLoss w;
    tt::Tensor pred(tt::Shape{4}, std::vector<float>{1, 2, 3, 4});
    EXPECT_DOUBLE_EQ(w.forward(pred, +1.0f), 2.5);
    tt::Tensor g = w.backward();
    for (std::int64_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(g.at(i), 0.25f);
    EXPECT_DOUBLE_EQ(w.forward(pred, -1.0f), -2.5);
}

TEST(PolicyValueLoss, PolicyColumnsGradientMatchesNumeric)
{
    // The value column intentionally carries a stop-gradient in the
    // policy term, so only the policy logits are numerically checkable
    // against the full loss.
    tl::PolicyValueLoss pv(0.5f, 0.01f);
    tt::Tensor head = randn(tt::Shape{3, 5}, 4); // 4 actions + value
    std::vector<std::int64_t> actions = {0, 2, 3};
    std::vector<float> returns = {1.0f, -0.5f, 2.0f};
    pv.forward(head, actions, returns);
    tt::Tensor analytic = pv.backward();

    const double eps = 1e-3;
    for (std::int64_t n = 0; n < 3; ++n) {
        for (std::int64_t a = 0; a < 4; ++a) { // skip the value column
            const float orig = head.at2(n, a);
            head.at2(n, a) = orig + static_cast<float>(eps);
            const double up = pv.forward(head, actions, returns);
            head.at2(n, a) = orig - static_cast<float>(eps);
            const double down = pv.forward(head, actions, returns);
            head.at2(n, a) = orig;
            const double numeric = (up - down) / (2.0 * eps);
            EXPECT_NEAR(numeric, analytic.at2(n, a), 2e-3)
                << "entry (" << n << ", " << a << ")";
        }
    }
}

TEST(PolicyValueLoss, PolicyGradientPushesTowardRewardedAction)
{
    tl::PolicyValueLoss pv(0.5f, 0.0f);
    tt::Tensor head(tt::Shape{1, 3}); // 2 actions + value, all zero
    // Return 1 with V=0 -> positive advantage for action 0.
    pv.forward(head, {0}, {1.0f});
    tt::Tensor g = pv.backward();
    EXPECT_LT(g.at(0), 0.0f); // gradient descent raises logit of action 0
    EXPECT_GT(g.at(1), 0.0f);
    EXPECT_LT(g.at(2), 0.0f); // value head pulled toward the return
}

TEST(PolicyValueLoss, ValueHeadGradientIsExact)
{
    tl::PolicyValueLoss pv(0.5f, 0.0f);
    tt::Tensor head(tt::Shape{1, 3});
    head.at(2) = 0.5f; // V = 0.5, R = 2 -> adv = 1.5
    pv.forward(head, {0}, {2.0f});
    tt::Tensor g = pv.backward();
    EXPECT_NEAR(g.at(2), -0.5f * 1.5f, 1e-6);
}
