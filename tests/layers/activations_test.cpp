#include "layers/activations.h"

#include <gtest/gtest.h>

#include "layer_test_util.h"

namespace tl = tbd::layers;
namespace tt = tbd::tensor;
using tbd::testutil::checkLayerGradients;
using tbd::testutil::randn;

class ActivationGradTest : public ::testing::TestWithParam<tl::ActKind>
{
};

TEST_P(ActivationGradTest, GradientMatchesNumeric)
{
    tl::Activation act("act", GetParam());
    // Keep inputs away from the ReLU kink at 0 so the central
    // difference never straddles the non-differentiable point.
    tt::Tensor x = randn(tt::Shape{4, 9}, 17);
    for (std::int64_t i = 0; i < x.numel(); ++i) {
        if (std::abs(x.at(i)) < 0.1f)
            x.at(i) = x.at(i) < 0.0f ? -0.1f : 0.1f;
    }
    checkLayerGradients(act, x, 99, 2e-2, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ActivationGradTest,
                         ::testing::Values(tl::ActKind::ReLU,
                                           tl::ActKind::LeakyReLU,
                                           tl::ActKind::Sigmoid,
                                           tl::ActKind::Tanh),
                         [](const auto &info) {
                             return tl::actKindName(info.param);
                         });

TEST(Activation, ReluClampsNegative)
{
    tl::Activation act("relu", tl::ActKind::ReLU);
    tt::Tensor x(tt::Shape{3}, std::vector<float>{-2.0f, 0.0f, 3.0f});
    tt::Tensor y = act.forward(x, false);
    EXPECT_FLOAT_EQ(y.at(0), 0.0f);
    EXPECT_FLOAT_EQ(y.at(1), 0.0f);
    EXPECT_FLOAT_EQ(y.at(2), 3.0f);
}

TEST(Activation, SigmoidRange)
{
    tl::Activation act("sig", tl::ActKind::Sigmoid);
    tt::Tensor x(tt::Shape{2}, std::vector<float>{-100.0f, 100.0f});
    tt::Tensor y = act.forward(x, false);
    EXPECT_NEAR(y.at(0), 0.0f, 1e-6);
    EXPECT_NEAR(y.at(1), 1.0f, 1e-6);
}

TEST(Activation, LeakyReluSlope)
{
    tl::Activation act("lrelu", tl::ActKind::LeakyReLU, 0.1f);
    tt::Tensor x(tt::Shape{1}, std::vector<float>{-10.0f});
    EXPECT_FLOAT_EQ(act.forward(x, false).at(0), -1.0f);
}

TEST(Activation, BackwardWithoutForwardThrows)
{
    tl::Activation act("relu", tl::ActKind::ReLU);
    tt::Tensor dy(tt::Shape{2});
    EXPECT_THROW(act.backward(dy), tbd::util::FatalError);
}

TEST(Activation, HasNoParams)
{
    tl::Activation act("relu", tl::ActKind::ReLU);
    EXPECT_TRUE(act.params().empty());
    EXPECT_EQ(act.paramCount(), 0);
}
