/**
 * @file
 * Shared gradient-checking harness for layer tests: verifies both the
 * input gradient and every parameter gradient of a layer against
 * central differences of a weighted-sum loss.
 */

#ifndef TBD_TESTS_LAYERS_LAYER_TEST_UTIL_H
#define TBD_TESTS_LAYERS_LAYER_TEST_UTIL_H

#include <gtest/gtest.h>

#include "layers/layer.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace tbd::testutil {

/** Loss = sum(weights * layer(x)); returns its value. */
inline double
weightedLoss(layers::Layer &layer, const tensor::Tensor &x,
             const tensor::Tensor &weights)
{
    tensor::Tensor y = layer.forward(x, /*training=*/true);
    double s = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i)
        s += static_cast<double>(y.at(i)) * weights.at(i);
    return s;
}

/**
 * Gradient-check a layer's input gradient and all parameter gradients.
 * @param layer  Layer under test.
 * @param x      Input point (mutated transiently during the check).
 * @param seed   Seed for the upstream weighting.
 * @param tol    Relative-error tolerance.
 * @param eps    Finite-difference step.
 */
inline void
checkLayerGradients(layers::Layer &layer, tensor::Tensor x,
                    std::uint64_t seed = 99, double tol = 2e-2,
                    double eps = 1e-2)
{
    util::Rng rng(seed);
    tensor::Tensor y0 = layer.forward(x, true);
    tensor::Tensor w(y0.shape());
    w.fillNormal(rng, 0.0f, 1.0f);

    layer.zeroGrads();
    layer.forward(x, true);
    tensor::Tensor dx = layer.backward(w);

    auto loss = [&]() { return weightedLoss(layer, x, w); };

    auto input_res = tensor::checkGradient(x, loss, dx, eps, 48);
    EXPECT_TRUE(input_res.ok(tol))
        << layer.name() << " input grad rel err " << input_res.maxRelError;

    for (layers::Param *p : layer.params()) {
        auto res = tensor::checkGradient(p->value, loss, p->grad, eps, 32);
        EXPECT_TRUE(res.ok(tol))
            << p->name << " grad rel err " << res.maxRelError;
    }
}

/** Random normal tensor helper. */
inline tensor::Tensor
randn(tensor::Shape shape, std::uint64_t seed, float stddev = 1.0f)
{
    util::Rng rng(seed);
    tensor::Tensor t(std::move(shape));
    t.fillNormal(rng, 0.0f, stddev);
    return t;
}

} // namespace tbd::testutil

#endif // TBD_TESTS_LAYERS_LAYER_TEST_UTIL_H
