#include "layers/conv.h"

#include <gtest/gtest.h>

#include "layer_test_util.h"

namespace tl = tbd::layers;
namespace tt = tbd::tensor;
using tbd::testutil::checkLayerGradients;
using tbd::testutil::randn;

TEST(Conv2d, OutputShapeStride1SamePad)
{
    tbd::util::Rng rng(1);
    tl::Conv2d conv("c", 3, 8, 3, 1, 1, rng);
    tt::Tensor y = conv.forward(randn(tt::Shape{2, 3, 6, 6}, 2), false);
    EXPECT_EQ(y.shape(), tt::Shape({2, 8, 6, 6}));
}

TEST(Conv2d, OutputShapeStride2)
{
    tbd::util::Rng rng(1);
    tl::Conv2d conv("c", 4, 16, 3, 2, 1, rng);
    tt::Tensor y = conv.forward(randn(tt::Shape{1, 4, 8, 8}, 2), false);
    EXPECT_EQ(y.shape(), tt::Shape({1, 16, 4, 4}));
}

TEST(Conv2d, IdentityKernelPassesThrough)
{
    tbd::util::Rng rng(1);
    tl::Conv2d conv("c", 1, 1, 1, 1, 0, rng);
    // Set the single 1x1 weight to 1.
    conv.params()[0]->value.fill(1.0f);
    tt::Tensor x = randn(tt::Shape{1, 1, 4, 4}, 3);
    tt::Tensor y = conv.forward(x, false);
    for (std::int64_t i = 0; i < x.numel(); ++i)
        EXPECT_NEAR(y.at(i), x.at(i), 1e-6);
}

TEST(Conv2d, KnownSumKernel)
{
    tbd::util::Rng rng(1);
    tl::Conv2d conv("c", 1, 1, 2, 1, 0, rng);
    conv.params()[0]->value.fill(1.0f); // sums each 2x2 patch
    tt::Tensor x(tt::Shape{1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
    tt::Tensor y = conv.forward(x, false);
    ASSERT_EQ(y.numel(), 1);
    EXPECT_FLOAT_EQ(y.at(0), 10.0f);
}

TEST(Conv2d, GradientMatchesNumeric)
{
    tbd::util::Rng rng(5);
    tl::Conv2d conv("c", 2, 3, 3, 1, 1, rng);
    checkLayerGradients(conv, randn(tt::Shape{2, 2, 5, 5}, 6, 0.5f));
}

TEST(Conv2d, GradientMatchesNumericStridedWithBias)
{
    tbd::util::Rng rng(7);
    tl::Conv2d conv("c", 2, 4, 3, 2, 1, rng, /*useBias=*/true);
    EXPECT_EQ(conv.params().size(), 2u);
    checkLayerGradients(conv, randn(tt::Shape{2, 2, 6, 6}, 8, 0.5f));
}

TEST(Conv2d, ParamCount)
{
    tbd::util::Rng rng(1);
    tl::Conv2d conv("c", 16, 32, 3, 1, 1, rng);
    EXPECT_EQ(conv.paramCount(), 32 * 16 * 3 * 3);
}

TEST(Conv2d, RejectsWrongChannelCount)
{
    tbd::util::Rng rng(1);
    tl::Conv2d conv("c", 3, 8, 3, 1, 1, rng);
    EXPECT_THROW(conv.forward(randn(tt::Shape{1, 4, 6, 6}, 1), false),
                 tbd::util::FatalError);
}

TEST(Conv2d, RectangularKernelOutputShape)
{
    // Deep-Speech-2-style time-frequency filter (scaled down).
    tbd::util::Rng rng(11);
    tl::Conv2d conv("c", 1, 4, tl::ConvSpec{5, 3, 2, 1, 2, 1}, rng);
    tt::Tensor y = conv.forward(randn(tt::Shape{2, 1, 12, 8}, 12), false);
    // outH = (12 + 4 - 5)/2 + 1 = 6; outW = (8 + 2 - 3)/1 + 1 = 8.
    EXPECT_EQ(y.shape(), tt::Shape({2, 4, 6, 8}));
}

TEST(Conv2d, RectangularGradientMatchesNumeric)
{
    tbd::util::Rng rng(13);
    tl::Conv2d conv("c", 2, 3, tl::ConvSpec{3, 1, 1, 1, 1, 0}, rng);
    checkLayerGradients(conv, randn(tt::Shape{2, 2, 5, 4}, 14, 0.5f));
}

TEST(Conv2d, FactorizedPairMatchesInceptionPattern)
{
    // 1x3 followed by 3x1 keeps the spatial size (Inception-v3's
    // factorized convolutions).
    tbd::util::Rng rng(15);
    tl::Conv2d a("a", 2, 2, tl::ConvSpec{1, 3, 1, 1, 0, 1}, rng);
    tl::Conv2d b("b", 2, 2, tl::ConvSpec{3, 1, 1, 1, 1, 0}, rng);
    tt::Tensor x = randn(tt::Shape{1, 2, 6, 6}, 16);
    tt::Tensor y = b.forward(a.forward(x, false), false);
    EXPECT_EQ(y.shape(), x.shape());
}
