#include "layers/recurrent.h"

#include <gtest/gtest.h>

#include "layer_test_util.h"

namespace tl = tbd::layers;
namespace tt = tbd::tensor;
using tbd::testutil::checkLayerGradients;
using tbd::testutil::randn;

class RecurrentGradTest : public ::testing::TestWithParam<tl::CellKind>
{
};

TEST_P(RecurrentGradTest, SequenceGradientMatchesNumeric)
{
    tbd::util::Rng rng(1);
    tl::Recurrent rnn("rnn", GetParam(), 3, 4, rng, true);
    checkLayerGradients(rnn, randn(tt::Shape{2, 5, 3}, 2, 0.5f), 50, 3e-2);
}

TEST_P(RecurrentGradTest, LastStateGradientMatchesNumeric)
{
    tbd::util::Rng rng(3);
    tl::Recurrent rnn("rnn", GetParam(), 3, 4, rng, false);
    checkLayerGradients(rnn, randn(tt::Shape{2, 4, 3}, 4, 0.5f), 51, 3e-2);
}

INSTANTIATE_TEST_SUITE_P(AllCells, RecurrentGradTest,
                         ::testing::Values(tl::CellKind::Vanilla,
                                           tl::CellKind::Gru,
                                           tl::CellKind::Lstm),
                         [](const auto &info) {
                             return tl::cellKindName(info.param);
                         });

TEST(Recurrent, OutputShapes)
{
    tbd::util::Rng rng(1);
    tl::Recurrent seq("a", tl::CellKind::Lstm, 6, 8, rng, true);
    tl::Recurrent last("b", tl::CellKind::Lstm, 6, 8, rng, false);
    tt::Tensor x = randn(tt::Shape{3, 7, 6}, 2);
    EXPECT_EQ(seq.forward(x, false).shape(), tt::Shape({3, 7, 8}));
    EXPECT_EQ(last.forward(x, false).shape(), tt::Shape({3, 8}));
}

TEST(Recurrent, ParamCounts)
{
    tbd::util::Rng rng(1);
    tl::Recurrent lstm("l", tl::CellKind::Lstm, 10, 20, rng);
    // wx: 10*80, wh: 20*80, bx: 80, bh: 80.
    EXPECT_EQ(lstm.paramCount(), 10 * 80 + 20 * 80 + 160);
    tl::Recurrent gru("g", tl::CellKind::Gru, 10, 20, rng);
    EXPECT_EQ(gru.paramCount(), 10 * 60 + 20 * 60 + 120);
    tl::Recurrent rnn("r", tl::CellKind::Vanilla, 10, 20, rng);
    EXPECT_EQ(rnn.paramCount(), 10 * 20 + 20 * 20 + 40);
}

TEST(Recurrent, LstmStateCarriesInformationAcrossTime)
{
    // An LSTM must distinguish sequences that differ only in early
    // steps; a memoryless map cannot.
    tbd::util::Rng rng(5);
    tl::Recurrent lstm("l", tl::CellKind::Lstm, 2, 4, rng, false);
    tt::Tensor a(tt::Shape{1, 3, 2}, 0.0f);
    tt::Tensor b(tt::Shape{1, 3, 2}, 0.0f);
    b.at(0) = 5.0f; // differs only at t=0
    tt::Tensor ya = lstm.forward(a, false);
    tt::Tensor yb = lstm.forward(b, false);
    double diff = 0.0;
    for (std::int64_t i = 0; i < ya.numel(); ++i)
        diff += std::abs(ya.at(i) - yb.at(i));
    EXPECT_GT(diff, 1e-4);
}

TEST(Recurrent, RejectsWrongInputWidth)
{
    tbd::util::Rng rng(1);
    tl::Recurrent rnn("r", tl::CellKind::Gru, 3, 4, rng);
    EXPECT_THROW(rnn.forward(randn(tt::Shape{2, 5, 4}, 1), false),
                 tbd::util::FatalError);
}

TEST(Bidirectional, OutputShapeAndGradient)
{
    tbd::util::Rng rng(1);
    tl::Bidirectional bi("bi", tl::CellKind::Gru, 3, 4, rng);
    tt::Tensor x = randn(tt::Shape{2, 4, 3}, 2, 0.5f);
    EXPECT_EQ(bi.forward(x, false).shape(), tt::Shape({2, 4, 4}));
    checkLayerGradients(bi, x, 52, 3e-2);
}

TEST(Bidirectional, SeesFutureContext)
{
    // The backward direction must react to late-step changes at t=0.
    tbd::util::Rng rng(9);
    tl::Bidirectional bi("bi", tl::CellKind::Vanilla, 1, 2, rng);
    tt::Tensor a(tt::Shape{1, 4, 1}, 0.0f);
    tt::Tensor b = a.clone();
    b.at(3) = 3.0f; // change the last step
    tt::Tensor ya = bi.forward(a, false);
    tt::Tensor yb = bi.forward(b, false);
    // Output at t=0 must differ (only the reverse pass can carry it).
    double diff = 0.0;
    for (std::int64_t j = 0; j < 2; ++j)
        diff += std::abs(ya.at(j) - yb.at(j));
    EXPECT_GT(diff, 1e-5);
}
