#include "layers/dense.h"

#include <gtest/gtest.h>

#include "layer_test_util.h"

namespace tl = tbd::layers;
namespace tt = tbd::tensor;
using tbd::testutil::checkLayerGradients;
using tbd::testutil::randn;

TEST(FullyConnected, OutputShape2d)
{
    tbd::util::Rng rng(1);
    tl::FullyConnected fc("fc", 8, 5, rng);
    tt::Tensor y = fc.forward(randn(tt::Shape{3, 8}, 2), false);
    EXPECT_EQ(y.shape(), tt::Shape({3, 5}));
}

TEST(FullyConnected, PreservesLeadingAxes)
{
    tbd::util::Rng rng(1);
    tl::FullyConnected fc("fc", 8, 5, rng);
    tt::Tensor y = fc.forward(randn(tt::Shape{2, 4, 8}, 2), false);
    EXPECT_EQ(y.shape(), tt::Shape({2, 4, 5}));
}

TEST(FullyConnected, FlattensConvFeatures)
{
    tbd::util::Rng rng(1);
    tl::FullyConnected fc("fc", 2 * 3 * 3, 4, rng);
    tt::Tensor y = fc.forward(randn(tt::Shape{5, 2, 3, 3}, 2), false);
    EXPECT_EQ(y.shape(), tt::Shape({5, 4}));
}

TEST(FullyConnected, GradientMatchesNumeric)
{
    tbd::util::Rng rng(3);
    tl::FullyConnected fc("fc", 6, 4, rng);
    checkLayerGradients(fc, randn(tt::Shape{3, 6}, 4));
}

TEST(FullyConnected, GradientMatchesNumericNoBias)
{
    tbd::util::Rng rng(5);
    tl::FullyConnected fc("fc", 5, 3, rng, /*useBias=*/false);
    EXPECT_EQ(fc.params().size(), 1u);
    checkLayerGradients(fc, randn(tt::Shape{2, 5}, 6));
}

TEST(FullyConnected, ParamCount)
{
    tbd::util::Rng rng(1);
    tl::FullyConnected fc("fc", 10, 7, rng);
    EXPECT_EQ(fc.paramCount(), 10 * 7 + 7);
}

TEST(FullyConnected, GradientAccumulatesAcrossSteps)
{
    tbd::util::Rng rng(7);
    tl::FullyConnected fc("fc", 3, 2, rng);
    tt::Tensor x = randn(tt::Shape{2, 3}, 8);
    tt::Tensor dy(tt::Shape{2, 2}, 1.0f);

    fc.forward(x, true);
    fc.backward(dy);
    const float once = fc.params()[0]->grad.at(0);
    fc.forward(x, true);
    fc.backward(dy);
    EXPECT_NEAR(fc.params()[0]->grad.at(0), 2.0f * once, 1e-5);

    fc.zeroGrads();
    EXPECT_FLOAT_EQ(fc.params()[0]->grad.at(0), 0.0f);
}

TEST(FullyConnected, RejectsIndivisibleInput)
{
    tbd::util::Rng rng(1);
    tl::FullyConnected fc("fc", 7, 2, rng);
    EXPECT_THROW(fc.forward(randn(tt::Shape{3, 5}, 1), false),
                 tbd::util::FatalError);
}
