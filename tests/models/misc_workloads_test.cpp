#include "models/misc_workloads.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace md = tbd::models;

TEST(FasterRcnn, OnlyBatchOneSupported)
{
    EXPECT_NO_THROW(md::fasterRcnnWorkload(1));
    EXPECT_THROW(md::fasterRcnnWorkload(2), tbd::util::FatalError);
}

TEST(FasterRcnn, ContainsRpnRoiAndHeads)
{
    auto w = md::fasterRcnnWorkload(1);
    bool has_rpn = false, has_roi = false, has_cls = false;
    for (const auto &op : w.ops) {
        has_rpn |= op.name == "rpn_conv";
        has_roi |= op.type == md::OpType::RoiPool;
        has_cls |= op.name == "cls_score";
    }
    EXPECT_TRUE(has_rpn);
    EXPECT_TRUE(has_roi);
    EXPECT_TRUE(has_cls);
}

TEST(FasterRcnn, HeavierThanClassificationPerImage)
{
    // A 600x850 detection image costs far more than a 224x224 crop.
    auto w = md::fasterRcnnWorkload(1);
    EXPECT_GT(w.totalFwdFlops(), 5e10);
}

TEST(Wgan, CriticStepHasRealFakeAndGradientPenaltyPasses)
{
    auto w = md::wganWorkload(16);
    int critic_stems = 0, gen_fcs = 0, gp_passes = 0;
    for (const auto &op : w.ops) {
        if (op.name.find("stem") != std::string::npos &&
            op.name.find("critic_step") != std::string::npos) {
            ++critic_stems;
        }
        if (op.name.find("gen_fc") != std::string::npos)
            ++gen_fcs;
        if (op.name.find("_gp_") != std::string::npos &&
            op.name.find("stem") != std::string::npos) {
            ++gp_passes;
        }
    }
    // One critic step: real + fake + gradient-penalty critic passes.
    EXPECT_EQ(critic_stems, 3);
    EXPECT_EQ(gp_passes, 1);
    // The generator runs forward once to synthesize the fakes.
    EXPECT_EQ(gen_fcs, 1);
}

TEST(Wgan, WorkScalesWithBatch)
{
    auto w8 = md::wganWorkload(8);
    auto w32 = md::wganWorkload(32);
    EXPECT_NEAR(w32.totalFwdFlops() / w8.totalFwdFlops(), 4.0, 0.3);
}

TEST(A3c, FourLayerNetworkIsTiny)
{
    auto w = md::a3cWorkload(32);
    // ~1.3M params (fc dominates), far smaller than the CNN models.
    EXPECT_LT(w.totalParams(), 3e6);
    int convs = 0, gemms = 0;
    for (const auto &op : w.ops) {
        convs += op.type == md::OpType::Conv2d;
        gemms += op.type == md::OpType::Gemm;
    }
    EXPECT_EQ(convs, 2);
    EXPECT_EQ(gemms, 3); // fc + policy + value
}

TEST(A3c, PerSampleComputeIsSmall)
{
    auto w = md::a3cWorkload(1);
    EXPECT_LT(w.totalFwdFlops(), 1e8); // tens of MFLOPs per state
}
