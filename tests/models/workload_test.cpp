#include "models/workload.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace md = tbd::models;

TEST(Workload, ConvOpFlopsFormula)
{
    // 2 * N * outC * outH * outW * inC * k * k.
    auto op = md::convOp("c", 2, 3, 8, 16, 3, 1, 1);
    EXPECT_DOUBLE_EQ(op.fwdFlops, 2.0 * 2 * 16 * 8 * 8 * 3 * 3 * 3);
    EXPECT_EQ(op.params, 16 * 3 * 3 * 3);
    EXPECT_EQ(op.outputElems, 2 * 16 * 8 * 8);
}

TEST(Workload, ConvOpStrideShrinksOutput)
{
    auto op = md::convOp("c", 1, 4, 224, 8, 7, 2, 3);
    EXPECT_EQ(op.outputElems, 8 * 112 * 112);
}

TEST(Workload, RectangularConvOp)
{
    auto op = md::convOp("c", 1, 1, 10, 20, 2, 3, 5, 1, 1, 1, 2);
    // outH = (10+2-3)/1+1 = 10, outW = (20+4-5)/1+1 = 20.
    EXPECT_EQ(op.outputElems, 2 * 10 * 20);
}

TEST(Workload, GemmOpCounts)
{
    auto op = md::gemmOp("g", 32, 100, 10);
    EXPECT_DOUBLE_EQ(op.fwdFlops, 2.0 * 32 * 100 * 10);
    EXPECT_EQ(op.params, 100 * 10 + 10);
}

TEST(Workload, RnnOpLstmGateStructure)
{
    auto op = md::rnnOp("r", md::RnnKind::Lstm, 4, 10, 8, 16);
    EXPECT_EQ(op.timeSteps, 10);
    EXPECT_EQ(op.stepWidth, 4 * 4 * 16);
    // params: 4*16*(8+16) weight + 2*4*16 bias.
    EXPECT_EQ(op.params, 4 * 16 * (8 + 16) + 2 * 4 * 16);
    EXPECT_GT(op.fwdFlops, 0.0);
}

TEST(Workload, BidirectionalDoublesWork)
{
    auto uni = md::rnnOp("u", md::RnnKind::Gru, 2, 5, 8, 8, 1);
    auto bi = md::rnnOp("b", md::RnnKind::Gru, 2, 5, 8, 8, 2);
    EXPECT_DOUBLE_EQ(bi.fwdFlops, 2.0 * uni.fwdFlops);
    EXPECT_EQ(bi.timeSteps, 2 * uni.timeSteps);
    EXPECT_EQ(bi.params, 2 * uni.params);
}

TEST(Workload, AttentionQuadraticInSteps)
{
    auto shortSeq = md::attentionOp("a", 1, 16, 64, 4);
    auto longSeq = md::attentionOp("a", 1, 32, 64, 4);
    // Score term grows 4x, projection term 2x.
    EXPECT_GT(longSeq.fwdFlops, 2.0 * shortSeq.fwdFlops);
}

TEST(Workload, AppendWithPrefix)
{
    md::Workload a, b;
    a.add(md::gemmOp("g", 1, 2, 3));
    b.add(md::gemmOp("h", 1, 2, 3));
    a.append(b, "x_");
    ASSERT_EQ(a.ops.size(), 2u);
    EXPECT_EQ(a.ops[1].name, "x_h");
    EXPECT_DOUBLE_EQ(a.totalFwdFlops(), 2.0 * a.ops[0].fwdFlops);
}

TEST(Workload, EmbeddingParamsAreTableSized)
{
    auto op = md::embeddingOp("e", 100, 17188, 512);
    EXPECT_EQ(op.params, 17188 * 512);
    EXPECT_EQ(op.outputElems, 100 * 512);
}

TEST(Workload, OpTypeNames)
{
    EXPECT_STREQ(md::opTypeName(md::OpType::Conv2d), "conv2d");
    EXPECT_STREQ(md::opTypeName(md::OpType::Rnn), "rnn");
    EXPECT_STREQ(md::opTypeName(md::OpType::Attention), "attention");
}
