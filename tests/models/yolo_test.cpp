#include "models/yolo.h"

#include <gtest/gtest.h>

#include "models/cnn_workloads.h"
#include "models/misc_workloads.h"
#include "util/logging.h"

namespace md = tbd::models;

TEST(Yolo9000, RegisteredAsExtensionNotInTable2)
{
    EXPECT_EQ(md::extensionModels().size(), 1u);
    EXPECT_EQ(md::extensionModels()[0]->name, "YOLO9000");
    // Table 2 stays faithful to the paper: YOLO is not in allModels().
    for (const auto *m : md::allModels())
        EXPECT_NE(m->name, "YOLO9000");
    EXPECT_THROW(md::modelByName("YOLO9000"), tbd::util::FatalError);
}

TEST(Yolo9000, DarknetNineteenConvolutions)
{
    auto w = md::yolo9000Workload(1);
    int backbone_convs = 0;
    for (const auto &op : w.ops) {
        if (op.type == md::OpType::Conv2d &&
            op.name.rfind("conv", 0) == 0) {
            ++backbone_convs;
        }
    }
    EXPECT_EQ(backbone_convs, 18); // Darknet-19 = 18 convs + 1 in head
}

TEST(Yolo9000, ParameterCountMatchesLiterature)
{
    // Darknet-19 + YOLOv2 head: ~50M parameters (the 3072->1024 head
    // conv alone is 28M).
    auto w = md::yolo9000Workload(1);
    EXPECT_NEAR(static_cast<double>(w.totalParams()), 50e6, 10e6);
}

TEST(Yolo9000, FasterThanFasterRcnnPerImage)
{
    // The paper's motivation for adding YOLO: "It can perform inference
    // faster than Faster R-CNN". Training cost per image shows the same
    // ordering (416x416 single-shot vs 600x850 two-stage).
    auto yolo = md::yolo9000Workload(1);
    auto frcnn = md::fasterRcnnWorkload(1);
    EXPECT_LT(yolo.totalFwdFlops(), frcnn.totalFwdFlops());
}

TEST(Yolo9000, PassthroughConcatPresent)
{
    auto w = md::yolo9000Workload(2);
    bool reorg = false;
    for (const auto &op : w.ops)
        reorg |= op.name == "passthrough_reorg";
    EXPECT_TRUE(reorg);
}

TEST(Yolo9000, WorkScalesWithBatch)
{
    auto w4 = md::yolo9000Workload(4);
    auto w16 = md::yolo9000Workload(16);
    EXPECT_NEAR(w16.totalFwdFlops() / w4.totalFwdFlops(), 4.0, 0.2);
}
