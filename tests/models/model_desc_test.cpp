#include "models/model_desc.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace md = tbd::models;
namespace tf = tbd::frameworks;

TEST(ModelRegistry, EightModelsLikeTable2)
{
    // Table 2 rows: ResNet-50, Inception-v3, Seq2Seq (NMT + Sockeye
    // implementations), Transformer, Faster R-CNN, Deep Speech 2,
    // WGAN, A3C. We register NMT and Sockeye separately => 9 entries
    // covering 8 models.
    EXPECT_EQ(md::allModels().size(), 9u);
}

TEST(ModelRegistry, LookupByName)
{
    EXPECT_EQ(md::modelByName("ResNet-50").layerCount, 50);
    EXPECT_THROW(md::modelByName("AlexNet"), tbd::util::FatalError);
}

TEST(ModelRegistry, FrameworkAvailabilityMatchesTable2)
{
    EXPECT_TRUE(md::resnet50().supports(tf::FrameworkId::CNTK));
    EXPECT_TRUE(md::inceptionV3().supports(tf::FrameworkId::TensorFlow));
    EXPECT_FALSE(md::seq2seqNmt().supports(tf::FrameworkId::MXNet));
    EXPECT_FALSE(md::sockeye().supports(tf::FrameworkId::TensorFlow));
    EXPECT_FALSE(md::transformer().supports(tf::FrameworkId::CNTK));
    EXPECT_TRUE(md::fasterRcnn().supports(tf::FrameworkId::MXNet));
    EXPECT_FALSE(md::deepSpeech2().supports(tf::FrameworkId::CNTK));
    EXPECT_TRUE(md::wgan().supports(tf::FrameworkId::TensorFlow));
    EXPECT_TRUE(md::a3c().supports(tf::FrameworkId::MXNet));
}

TEST(ModelRegistry, ApplicationDomainsCoverTable2)
{
    std::set<std::string> domains;
    for (const auto *m : md::allModels())
        domains.insert(m->application);
    EXPECT_EQ(domains.size(), 6u); // six application domains
}

TEST(ModelRegistry, DatasetsAttached)
{
    for (const auto *m : md::allModels()) {
        ASSERT_NE(m->dataset, nullptr) << m->name;
        EXPECT_FALSE(m->batchSweep.empty()) << m->name;
        ASSERT_TRUE(static_cast<bool>(m->describe)) << m->name;
    }
}

TEST(ModelRegistry, DeepSpeechMeasuresAudioSeconds)
{
    const auto &ds2 = md::deepSpeech2();
    EXPECT_EQ(ds2.throughputUnit, "audio seconds/s");
    EXPECT_NEAR(ds2.unitsPerSample, 12.6, 1e-9);
}

TEST(ModelRegistry, FasterRcnnHasHostProposalWork)
{
    const auto &frcnn = md::fasterRcnn();
    const auto tf_us = frcnn.perFrameworkHostUsPerIter.at(
        tf::FrameworkId::TensorFlow);
    const auto mx_us =
        frcnn.perFrameworkHostUsPerIter.at(tf::FrameworkId::MXNet);
    EXPECT_GT(tf_us, mx_us); // Fig. 7: TF 13.25% vs MXNet 3.64%
    EXPECT_EQ(frcnn.batchSweep, std::vector<std::int64_t>{1});
}

TEST(ModelRegistry, A3cDoesEnvironmentWorkOnCpu)
{
    EXPECT_GT(md::a3c().cpuWorkUsPerSample, 0.0);
    EXPECT_GT(md::a3c().cpuWorkerThreads, 0);
}

TEST(ModelRegistry, WorkloadsGenerateAtSweepBatches)
{
    for (const auto *m : md::allModels()) {
        const auto b = m->batchSweep.front();
        auto w = m->describe(b);
        EXPECT_FALSE(w.ops.empty()) << m->name;
        EXPECT_GT(w.totalFwdFlops(), 0.0) << m->name;
    }
}
