#include "models/seq_workloads.h"

#include <gtest/gtest.h>

namespace md = tbd::models;

namespace {

double
rnnFlopsShare(const md::Workload &w)
{
    double rnn = 0.0;
    for (const auto &op : w.ops)
        if (op.type == md::OpType::Rnn)
            rnn += op.fwdFlops;
    return rnn / w.totalFwdFlops();
}

} // namespace

TEST(Seq2Seq, DominatedByLstmAndVocabProjection)
{
    auto w = md::seq2seqWorkload(64);
    double rnn = 0.0, gemm = 0.0;
    for (const auto &op : w.ops) {
        if (op.type == md::OpType::Rnn)
            rnn += op.fwdFlops;
        if (op.type == md::OpType::Gemm)
            gemm += op.fwdFlops;
    }
    EXPECT_GT((rnn + gemm) / w.totalFwdFlops(), 0.8);
    EXPECT_GT(rnn, 0.0);
}

TEST(Seq2Seq, EmbeddingParamsDominateParameterCount)
{
    // Two 17188x512 embeddings plus the 512x17188 projection.
    auto w = md::seq2seqWorkload(1);
    EXPECT_GT(w.totalParams(), 3 * 17188 * 512);
}

TEST(Seq2Seq, FourLstmLayersWithSequentialSteps)
{
    auto w = md::seq2seqWorkload(32);
    int lstms = 0;
    for (const auto &op : w.ops) {
        if (op.type == md::OpType::Rnn) {
            ++lstms;
            EXPECT_EQ(op.timeSteps, 25); // bucketed IWSLT length
        }
    }
    EXPECT_EQ(lstms, 4); // 2 encoder + 2 decoder
}

TEST(Transformer, NoRecurrentOps)
{
    // Observation 5's counterpoint: the Transformer replaces recurrence
    // with attention, so nothing in it serializes across time steps.
    auto w = md::transformerWorkload(2048);
    for (const auto &op : w.ops) {
        EXPECT_NE(op.type, md::OpType::Rnn) << op.name;
        EXPECT_EQ(op.timeSteps, 1) << op.name;
    }
}

TEST(Transformer, EighteenAttentionBlocks)
{
    auto w = md::transformerWorkload(1024);
    int attn = 0;
    for (const auto &op : w.ops)
        attn += op.type == md::OpType::Attention;
    EXPECT_EQ(attn, 6 + 2 * 6); // enc self + dec self + dec cross
}

TEST(Transformer, TokenBatchControlsWork)
{
    auto small = md::transformerWorkload(256);
    auto large = md::transformerWorkload(4096);
    EXPECT_NEAR(large.totalFwdFlops() / small.totalFwdFlops(), 16.0, 1.0);
}

TEST(DeepSpeech2, TwoConvsAndFiveBidirectionalGrus)
{
    auto w = md::deepSpeech2Workload(2);
    int convs = 0, rnns = 0;
    for (const auto &op : w.ops) {
        convs += op.type == md::OpType::Conv2d;
        if (op.type == md::OpType::Rnn) {
            ++rnns;
            EXPECT_GT(op.timeSteps, 1000); // bidirectional, ~630 frames
        }
    }
    EXPECT_EQ(convs, 2);
    EXPECT_EQ(rnns, 5);
}

TEST(DeepSpeech2, RnnDominatesCompute)
{
    // The premise of Observations 2 and 7.
    EXPECT_GT(rnnFlopsShare(md::deepSpeech2Workload(4)), 0.6);
}

TEST(DeepSpeech2, WorkScalesWithAudioDuration)
{
    auto shortUtt = md::deepSpeech2Workload(1, 6.0);
    auto longUtt = md::deepSpeech2Workload(1, 12.0);
    EXPECT_NEAR(longUtt.totalFwdFlops() / shortUtt.totalFwdFlops(), 2.0,
                0.2);
}
