#include "models/functional.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/catch_env.h"
#include "data/synthetic.h"
#include "engine/optimizer.h"
#include "engine/session.h"
#include "layers/loss.h"

namespace md = tbd::models;
namespace td = tbd::data;
namespace te = tbd::engine;
namespace tl = tbd::layers;
namespace tt = tbd::tensor;

TEST(FunctionalModels, TinyResNetLearnsSyntheticImages)
{
    tbd::util::Rng rng(7);
    auto net = md::buildTinyResNet(rng, 4, 1, 8);
    te::Adam opt(0.01f);
    te::Session session(net, opt);
    td::SyntheticImages data(4, 1, 8, 11);
    tl::SoftmaxCrossEntropy ce;

    double first_loss = 0.0, last_acc = 0.0;
    for (int i = 0; i < 60; ++i) {
        auto batch = data.nextBatch(16);
        auto res = session.step(
            batch.images, [&](const tt::Tensor &out, te::StepResult &r) {
                r.loss = ce.forward(out, batch.labels);
                r.metric = ce.accuracy();
                return ce.backward();
            });
        if (i == 0)
            first_loss = res.loss;
        last_acc = res.metric;
    }
    EXPECT_LT(session.recentLoss(10), first_loss);
    EXPECT_GT(last_acc, 0.7);
}

TEST(FunctionalModels, TinyInceptionLearnsSyntheticImages)
{
    tbd::util::Rng rng(9);
    auto net = md::buildTinyInception(rng, 3, 1, 8);
    te::Adam opt(0.01f);
    te::Session session(net, opt);
    td::SyntheticImages data(3, 1, 8, 13);
    tl::SoftmaxCrossEntropy ce;

    double last_acc = 0.0;
    for (int i = 0; i < 60; ++i) {
        auto batch = data.nextBatch(16);
        auto res = session.step(
            batch.images, [&](const tt::Tensor &out, te::StepResult &r) {
                r.loss = ce.forward(out, batch.labels);
                r.metric = ce.accuracy();
                return ce.backward();
            });
        last_acc = res.metric;
    }
    EXPECT_GT(last_acc, 0.7);
}

TEST(FunctionalModels, TinySeq2SeqLearnsShiftLanguage)
{
    tbd::util::Rng rng(3);
    const std::int64_t vocab = 12, seq = 6;
    auto net = md::buildTinySeq2Seq(rng, vocab, 8, 24, 1);
    te::Adam opt(0.02f);
    te::Session session(net, opt);
    td::SyntheticTranslation data(vocab, seq, 5);
    tl::SoftmaxCrossEntropy ce;

    double last_acc = 0.0;
    for (int i = 0; i < 80; ++i) {
        auto batch = data.nextBatch(8);
        // Per-token classification: flatten [N, T, V] -> [N*T, V].
        std::vector<std::int64_t> flat;
        for (const auto &ids : batch.tgtIds)
            flat.insert(flat.end(), ids.begin(), ids.end());
        auto res = session.step(
            batch.src, [&](const tt::Tensor &out, te::StepResult &r) {
                tt::Tensor out2 =
                    out.reshaped(tt::Shape{8 * seq, vocab});
                r.loss = ce.forward(out2, flat);
                r.metric = ce.accuracy();
                return ce.backward().reshaped(out.shape());
            });
        last_acc = res.metric;
    }
    EXPECT_GT(last_acc, 0.9); // the shift rule is fully learnable
}

TEST(FunctionalModels, TinyTransformerLearnsShiftLanguage)
{
    tbd::util::Rng rng(4);
    const std::int64_t vocab = 10, seq = 5;
    auto net = md::buildTinyTransformer(rng, vocab, 16, 2, 1);
    te::Adam opt(0.01f);
    te::Session session(net, opt);
    td::SyntheticTranslation data(vocab, seq, 6);
    tl::SoftmaxCrossEntropy ce;

    double last_acc = 0.0;
    for (int i = 0; i < 100; ++i) {
        auto batch = data.nextBatch(8);
        std::vector<std::int64_t> flat;
        for (const auto &ids : batch.tgtIds)
            flat.insert(flat.end(), ids.begin(), ids.end());
        auto res = session.step(
            batch.src, [&](const tt::Tensor &out, te::StepResult &r) {
                tt::Tensor out2 = out.reshaped(tt::Shape{8 * seq, vocab});
                r.loss = ce.forward(out2, flat);
                r.metric = ce.accuracy();
                return ce.backward().reshaped(out.shape());
            });
        last_acc = res.metric;
    }
    EXPECT_GT(last_acc, 0.85);
}

TEST(FunctionalModels, TinyDeepSpeechCtcLossDecreases)
{
    tbd::util::Rng rng(5);
    const std::int64_t alphabet = 6, frames = 20, feat = 8;
    auto net = md::buildTinyDeepSpeech(rng, feat, alphabet, 24);
    te::Adam opt(0.01f);
    te::Session session(net, opt);
    td::SyntheticAudio data(alphabet, frames, feat, 3, 7);
    tl::CtcLoss ctc;

    double first = 0.0, last = 0.0;
    for (int i = 0; i < 40; ++i) {
        auto batch = data.nextBatch(4);
        auto res = session.step(
            batch.features,
            [&](const tt::Tensor &out, te::StepResult &r) {
                r.loss = ctc.forward(out, batch.labels);
                return ctc.backward();
            });
        if (i == 0)
            first = res.loss;
        last = res.loss;
    }
    EXPECT_LT(last, 0.7 * first);
}

TEST(FunctionalModels, WganCriticSeparatesRealFromFake)
{
    tbd::util::Rng rng(6);
    auto critic = md::buildTinyCritic(rng, 1, 8);
    auto generator = md::buildTinyGenerator(rng, 8, 1, 8);
    te::Adam copt(0.005f);
    tl::WassersteinLoss wloss;

    // "Real" images: a bright blob; "fake": generator output (random
    // at init). Train the critic only, Wasserstein-style.
    tbd::util::Rng data_rng(8);
    double final_gap = 0.0;
    for (int i = 0; i < 80; ++i) {
        tt::Tensor real(tt::Shape{8, 1, 8, 8});
        real.fillNormal(data_rng, 1.5f, 0.3f);
        tt::Tensor z(tt::Shape{8, 8});
        z.fillNormal(data_rng, 0.0f, 1.0f);
        tt::Tensor fake =
            generator.forward(z, false).reshaped(tt::Shape{8, 1, 8, 8});

        critic.zeroGrads();
        tt::Tensor d_real = critic.forward(real, true);
        wloss.forward(d_real, -1.0f); // maximize D(real)
        critic.backward(wloss.backward());
        tt::Tensor d_fake = critic.forward(fake, true);
        wloss.forward(d_fake, +1.0f); // minimize D(fake)
        critic.backward(wloss.backward());
        copt.step(critic.params());

        final_gap = d_real.sum() / 8.0 - d_fake.sum() / 8.0;
    }
    EXPECT_GT(final_gap, 0.5);
}

TEST(FunctionalModels, A3cLearnsCatch)
{
    tbd::util::Rng rng(10);
    td::CatchEnv env(5, 20);
    auto net = md::buildA3CNet(rng, 5, td::CatchEnv::kActions);
    te::Adam opt(0.01f);
    tl::PolicyValueLoss pv(0.5f, 0.01f);
    tbd::util::Rng action_rng(21);

    auto run_episodes = [&](int episodes, bool train) {
        double total = 0.0;
        for (int e = 0; e < episodes; ++e) {
            std::vector<tt::Tensor> obs_seq;
            std::vector<std::int64_t> actions;
            tt::Tensor obs = env.reset();
            float reward = 0.0f;
            bool done = false;
            while (!done) {
                tt::Tensor in =
                    obs.reshaped(tt::Shape{1, 1, 5, 5});
                tt::Tensor head = net.forward(in, false);
                // Sample from the policy.
                double mx = head.at(0);
                for (std::int64_t a = 1; a < 3; ++a)
                    mx = std::max(mx, static_cast<double>(head.at(a)));
                double denom = 0.0;
                double probs[3];
                for (std::int64_t a = 0; a < 3; ++a) {
                    probs[a] = std::exp(head.at(a) - mx);
                    denom += probs[a];
                }
                double u = action_rng.uniform() * denom;
                std::int64_t act = 0;
                for (; act < 2; ++act) {
                    if (u < probs[act])
                        break;
                    u -= probs[act];
                }
                obs_seq.push_back(in);
                actions.push_back(act);
                auto out = env.step(static_cast<td::CatchEnv::Action>(act));
                obs = out.observation;
                reward = out.reward;
                done = out.done;
            }
            total += reward;
            if (train) {
                // Monte-Carlo return for every step of the episode.
                const auto steps =
                    static_cast<std::int64_t>(obs_seq.size());
                tt::Tensor batch(tt::Shape{steps, 1, 5, 5});
                for (std::int64_t s = 0; s < steps; ++s)
                    for (std::int64_t j = 0; j < 25; ++j)
                        batch.at(s * 25 + j) = obs_seq[s].at(j);
                std::vector<float> returns(steps, reward);
                net.zeroGrads();
                tt::Tensor head = net.forward(batch, true);
                pv.forward(head, actions, returns);
                net.backward(pv.backward());
                opt.step(net.params());
            }
        }
        return total / episodes;
    };

    run_episodes(400, /*train=*/true);
    const double trained = run_episodes(60, /*train=*/false);
    // Random policy averages ~ -0.5; a trained agent should catch most.
    EXPECT_GT(trained, 0.3);
}
