#include "models/cnn_workloads.h"

#include <gtest/gtest.h>

namespace md = tbd::models;

TEST(ResNet50, ParameterCountMatchesLiterature)
{
    // ResNet-50 has ~25.5M parameters.
    auto w = md::resnet50Workload(1);
    EXPECT_NEAR(static_cast<double>(w.totalParams()), 25.5e6, 1.5e6);
}

TEST(ResNet50, ForwardFlopsMatchLiterature)
{
    // ~4.1 GMACs per 224x224 image = ~8.2 GFLOPs in the 2-FLOPs-per-MAC
    // convention this library uses throughout.
    auto w = md::resnet50Workload(1);
    EXPECT_NEAR(w.totalFwdFlops(), 8.2e9, 0.8e9);
}

TEST(ResNet50, FlopsScaleLinearlyWithBatch)
{
    auto w1 = md::resnet50Workload(1);
    auto w32 = md::resnet50Workload(32);
    EXPECT_NEAR(w32.totalFwdFlops() / w1.totalFwdFlops(), 32.0, 0.5);
    EXPECT_EQ(w32.totalParams(), w1.totalParams());
}

TEST(ResNet50, ActivationFootprintMatchesLiterature)
{
    // Stored activations: tens of millions of elements per image.
    auto w = md::resnet50Workload(1);
    EXPECT_GT(w.totalActivations(), 25e6);
    EXPECT_LT(w.totalActivations(), 80e6);
}

TEST(ResNet50, HasFiftyThreeConvLayers)
{
    auto w = md::resnet50Workload(1);
    int convs = 0, bns = 0;
    for (const auto &op : w.ops) {
        convs += op.type == md::OpType::Conv2d;
        bns += op.type == md::OpType::BatchNorm;
    }
    // 1 stem + 16 blocks * 3 + 4 projections = 53 convolutions.
    EXPECT_EQ(convs, 53);
    EXPECT_EQ(bns, convs); // every conv is batch-normalized
}

TEST(ResNet101Stack, DeeperThanResNet50Stack)
{
    auto r101 = md::resnet101ConvStack(1, 600, 850);
    int convs = 0;
    for (const auto &op : r101.ops)
        convs += op.type == md::OpType::Conv2d;
    // 1 + (3+4+23)*3 + 3 projections = 94 convs through conv4.
    EXPECT_EQ(convs, 94);
}

TEST(InceptionV3, ParameterCountMatchesLiterature)
{
    // Inception-v3 has ~23.8M parameters (we model ~the same within
    // the tolerance of the simplified auxiliary-free architecture).
    auto w = md::inceptionV3Workload(1);
    EXPECT_NEAR(static_cast<double>(w.totalParams()), 23.8e6, 3.0e6);
}

TEST(InceptionV3, ForwardFlopsMatchLiterature)
{
    // ~5.7 GMACs per 299x299 image = ~11.4 GFLOPs (2 FLOPs per MAC).
    auto w = md::inceptionV3Workload(1);
    EXPECT_NEAR(w.totalFwdFlops(), 11.4e9, 2.0e9);
}

TEST(InceptionV3, MoreFlopsPerImageThanResNet50)
{
    // This ordering is why Inception-v3 throughput < ResNet-50
    // throughput at equal batch in Fig. 4.
    EXPECT_GT(md::inceptionV3Workload(8).totalFwdFlops(),
              md::resnet50Workload(8).totalFwdFlops());
}
