#include "check/invariants.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "models/model_desc.h"
#include "util/logging.h"

namespace tc = tbd::check;
namespace tg = tbd::gpusim;
namespace tp = tbd::perf;
namespace mp = tbd::memprof;
namespace md = tbd::models;

namespace {

tp::RunConfig
resnetConfig()
{
    tp::RunConfig config;
    config.model = &md::resnet50();
    config.framework = tbd::frameworks::FrameworkId::TensorFlow;
    config.gpu = tg::quadroP4000();
    config.batch = 4;
    return config;
}

tp::RunResult
runResnet()
{
    return tp::PerfSimulator().run(resnetConfig());
}

bool
hasRule(const tc::CheckReport &report, const std::string &rule)
{
    for (const auto &v : report.violations)
        if (v.rule == rule)
            return true;
    return false;
}

/** A well-formed two-kernel trace to corrupt in the negative tests. */
std::vector<tg::KernelExec>
wellFormedTrace(const tg::GpuSpec &gpu)
{
    const double peak = gpu.peakFlops();
    tg::KernelExec a;
    a.name = "k0";
    a.startUs = 10.0;
    a.durationUs = 5.0;
    a.flops = 0.25 * peak * a.durationUs * 1e-6;
    a.fp32Util = a.flops / (peak * a.durationUs * 1e-6);
    tg::KernelExec b = a;
    b.name = "k1";
    b.startUs = 15.0;
    return {a, b};
}

} // namespace

TEST(CheckInvariants, RealSimulationPassesAllValidators)
{
    const auto config = resnetConfig();
    const auto result = runResnet();
    const auto report = tc::validateRunResult(config, result);
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(CheckInvariants, EveryTimelinePassesOnRealTraces)
{
    const auto result = runResnet();
    const auto report =
        tc::validateTimeline(result.kernelTrace, tg::quadroP4000());
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(CheckInvariants, LiveTimelineStatsPass)
{
    tg::GpuTimeline timeline(tg::quadroP4000());
    tg::KernelDesc k;
    k.name = "probe";
    k.flops = 1e9;
    k.bytes = 1e6;
    k.parallelism = 1e5;
    timeline.launch(k, 5.0);
    timeline.launch(k, 5.0);
    timeline.hostCompute(10.0);
    timeline.sync();
    const auto report =
        tc::validateStats(timeline.stats(), timeline.gpu());
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(CheckInvariants, DetectsOverlappingKernels)
{
    auto trace = wellFormedTrace(tg::quadroP4000());
    trace[1].startUs = trace[0].startUs + 1.0; // inside kernel 0
    const auto report =
        tc::validateTimeline(trace, tg::quadroP4000());
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(hasRule(report, "timeline.overlap")) << report.summary();
}

TEST(CheckInvariants, DetectsOutOfOrderKernels)
{
    auto trace = wellFormedTrace(tg::quadroP4000());
    std::swap(trace[0], trace[1]);
    const auto report =
        tc::validateTimeline(trace, tg::quadroP4000());
    EXPECT_TRUE(hasRule(report, "timeline.order")) << report.summary();
}

TEST(CheckInvariants, DetectsNonFiniteDurations)
{
    auto trace = wellFormedTrace(tg::quadroP4000());
    trace[1].durationUs = -2.0;
    EXPECT_TRUE(hasRule(tc::validateTimeline(trace, tg::quadroP4000()),
                        "timeline.finite"));
}

TEST(CheckInvariants, DetectsInconsistentFp32Utilization)
{
    auto trace = wellFormedTrace(tg::quadroP4000());
    trace[0].fp32Util *= 1.01; // drifted by 1%
    EXPECT_TRUE(hasRule(tc::validateTimeline(trace, tg::quadroP4000()),
                        "timeline.fp32_consistency"));
}

TEST(CheckInvariants, DetectsBusyExceedingSpan)
{
    tg::TimelineStats stats;
    stats.elapsedUs = 100.0;
    stats.gpuBusyUs = 150.0;
    EXPECT_TRUE(hasRule(tc::validateStats(stats, tg::quadroP4000()),
                        "stats.span"));
}

TEST(CheckInvariants, DetectsCapacityOverflow)
{
    mp::MemoryBreakdown memory;
    memory.peakBytes[0] = 600;
    memory.peakBytes[2] = 500;
    EXPECT_TRUE(tc::validateMemory(memory, 2000).ok());
    EXPECT_TRUE(
        hasRule(tc::validateMemory(memory, 1000), "memory.capacity"));
    // Capacity 0 means unlimited, like the profiler itself.
    EXPECT_TRUE(tc::validateMemory(memory, 0).ok());
}

TEST(CheckInvariants, DetectsPerturbedThroughput)
{
    const auto config = resnetConfig();
    auto result = runResnet();
    result.throughputSamples *= 1.01;
    const auto report = tc::validateRunResult(config, result);
    EXPECT_TRUE(hasRule(report, "result.throughput"))
        << report.summary();
}

TEST(CheckInvariants, DetectsUtilizationOutOfRange)
{
    const auto config = resnetConfig();
    auto result = runResnet();
    result.gpuUtilization = 1.5;
    result.cpuUtilization = -0.1;
    const auto report = tc::validateRunResult(config, result);
    EXPECT_TRUE(hasRule(report, "result.gpu_util_range"));
    EXPECT_TRUE(hasRule(report, "result.cpu_util_range"));
}

TEST(CheckInvariants, DetectsDroppedSampleIterations)
{
    const auto config = resnetConfig();
    auto result = runResnet();
    result.sampleIterationUs.pop_back();
    EXPECT_TRUE(hasRule(tc::validateRunResult(config, result),
                        "result.sample_count"));
}

TEST(CheckInvariants, SimulationsAreDeterministic)
{
    const auto report = tc::validateDeterminism(resnetConfig());
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(CheckInvariants, AuditHookReceivesEveryRun)
{
    int calls = 0;
    auto previous = tp::setRunAudit(
        [&](const tp::RunConfig &, const tp::RunResult &) { ++calls; });
    runResnet();
    runResnet();
    tp::setRunAudit(std::move(previous));
    EXPECT_EQ(calls, 2);
}

TEST(CheckInvariants, InstalledAuditAcceptsValidRuns)
{
    // installSimulatorAudit is process-global and idempotent; valid
    // simulations must sail through it un-thrown.
    tc::installSimulatorAudit();
    EXPECT_NO_THROW(runResnet());
}

TEST(CheckInvariants, AuditEnabledFollowsEnvironment)
{
    const char *saved = std::getenv("TBD_CHECK");
    const std::string savedValue = saved ? saved : "";

    ::unsetenv("TBD_CHECK");
    EXPECT_FALSE(tc::auditEnabled());
    ::setenv("TBD_CHECK", "0", 1);
    EXPECT_FALSE(tc::auditEnabled());
    ::setenv("TBD_CHECK", "1", 1);
    EXPECT_TRUE(tc::auditEnabled());

    if (saved)
        ::setenv("TBD_CHECK", savedValue.c_str(), 1);
    else
        ::unsetenv("TBD_CHECK");
}
