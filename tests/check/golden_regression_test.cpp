#include "check/golden.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "check/invariants.h"
#include "models/model_desc.h"
#include "util/logging.h"

namespace tc = tbd::check;
namespace md = tbd::models;
namespace util = tbd::util;

#ifndef TBD_GOLDEN_DIR
#define TBD_GOLDEN_DIR "tests/golden"
#endif

namespace {

std::string
goldenPath(const tc::GoldenRecord &record)
{
    return std::string(TBD_GOLDEN_DIR) + "/" +
           tc::goldenFileName(record);
}

std::string
tempPath(const std::string &name)
{
    const char *dir = std::getenv("TMPDIR");
    return std::string(dir ? dir : "/tmp") + "/" + name;
}

} // namespace

/**
 * The tentpole regression gate: every registered workload's canonical
 * simulation must match its committed golden record bit-for-bit on
 * integers and within kGoldenRelTol on derived floats.
 */
class GoldenRegression
    : public ::testing::TestWithParam<const md::ModelDesc *>
{
};

TEST_P(GoldenRegression, MatchesCommittedGolden)
{
    const md::ModelDesc &model = *GetParam();
    const tc::GoldenRecord actual = tc::captureCanonical(model);
    const tc::GoldenRecord expected =
        tc::readGoldenFile(goldenPath(actual));
    const tc::GoldenDiff diff = tc::compareGolden(expected, actual);
    EXPECT_TRUE(diff.ok())
        << "golden drift for " << model.name << ":\n"
        << diff.summary()
        << "if intentional, run: tbd_golden rebaseline";
}

TEST_P(GoldenRegression, CanonicalRunSatisfiesInvariants)
{
    const md::ModelDesc &model = *GetParam();
    const tbd::perf::RunConfig config = tc::canonicalConfig(model);
    const tbd::perf::RunResult result =
        tbd::perf::PerfSimulator().run(config);
    const tc::CheckReport report = tc::validateRunResult(config, result);
    EXPECT_TRUE(report.ok()) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, GoldenRegression,
    ::testing::ValuesIn(md::allModels()),
    [](const ::testing::TestParamInfo<const md::ModelDesc *> &info) {
        std::string name;
        for (char c : info.param->name)
            name += std::isalnum(static_cast<unsigned char>(c))
                        ? c
                        : '_';
        return name;
    });

TEST(GoldenHarness, FileRoundTripPreservesEveryField)
{
    const tc::GoldenRecord record =
        tc::captureCanonical(md::resnet50());
    const std::string path = tempPath("tbd_golden_roundtrip.json");
    tc::writeGoldenFile(path, record);
    const tc::GoldenRecord reread = tc::readGoldenFile(path);
    std::remove(path.c_str());

    const tc::GoldenDiff diff =
        tc::compareGolden(record, reread, /*relTol=*/0.0);
    EXPECT_TRUE(diff.ok()) << diff.summary();
    EXPECT_EQ(record.memoryBytes, reread.memoryBytes);
    EXPECT_EQ(record.kernelsPerIteration, reread.kernelsPerIteration);
}

TEST(GoldenHarness, OnePercentPerturbationIsDetected)
{
    // The acceptance bar for the tolerance choice: a 1% drift in any
    // derived float (or one byte of memory) must fail the diff.
    const tc::GoldenRecord expected =
        tc::captureCanonical(md::resnet50());

    tc::GoldenRecord actual = expected;
    actual.iterationUs *= 1.01;
    EXPECT_FALSE(tc::compareGolden(expected, actual).ok());

    actual = expected;
    actual.fp32Utilization *= 0.99;
    EXPECT_FALSE(tc::compareGolden(expected, actual).ok());

    actual = expected;
    actual.memoryBytes[0] += 1;
    EXPECT_FALSE(tc::compareGolden(expected, actual).ok());

    actual = expected;
    actual.kernelsPerIteration += 1;
    EXPECT_FALSE(tc::compareGolden(expected, actual).ok());
}

TEST(GoldenHarness, TinyFloatNoiseIsTolerated)
{
    const tc::GoldenRecord expected =
        tc::captureCanonical(md::resnet50());
    tc::GoldenRecord actual = expected;
    actual.iterationUs *= 1.0 + 1e-12;
    actual.throughputSamples *= 1.0 - 1e-12;
    EXPECT_TRUE(tc::compareGolden(expected, actual).ok());
}

TEST(GoldenHarness, IdentityFieldsCompareExactly)
{
    const tc::GoldenRecord expected =
        tc::captureCanonical(md::resnet50());
    tc::GoldenRecord actual = expected;
    actual.framework = "MXNet";
    const tc::GoldenDiff diff = tc::compareGolden(expected, actual);
    ASSERT_FALSE(diff.ok());
    EXPECT_EQ(diff.fields[0].field, "framework");
}

TEST(GoldenHarness, MissingFileThrowsFatal)
{
    EXPECT_THROW(tc::readGoldenFile("/nonexistent/golden.json"),
                 util::FatalError);
}

TEST(GoldenHarness, MalformedFileThrowsFatal)
{
    const std::string path = tempPath("tbd_golden_malformed.json");
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("{\"schema\": 1, \"model\": ", f);
        std::fclose(f);
    }
    EXPECT_THROW(tc::readGoldenFile(path), util::FatalError);
    std::remove(path.c_str());
}

TEST(GoldenHarness, WrongSchemaVersionThrowsFatal)
{
    tbd::util::json::Value doc =
        tc::goldenToJson(tc::captureCanonical(md::resnet50()));
    doc.set("schema", tbd::util::json::Value(99.0));
    EXPECT_THROW(tc::goldenFromJson(doc), util::FatalError);
}

TEST(GoldenHarness, FileNameSlugsAreStable)
{
    tc::GoldenRecord record;
    record.model = "Faster R-CNN";
    record.framework = "TensorFlow";
    record.batch = 1;
    EXPECT_EQ(tc::goldenFileName(record),
              "faster-r-cnn_tensorflow_b1.json");
}
