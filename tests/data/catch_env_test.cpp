#include "data/catch_env.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace td = tbd::data;

TEST(CatchEnv, EpisodeLengthAndTermination)
{
    td::CatchEnv env(7, 1);
    env.reset();
    int steps = 0;
    bool done = false;
    while (!done) {
        auto out = env.step(td::CatchEnv::Action::Stay);
        done = out.done;
        ++steps;
        ASSERT_LE(steps, 10);
    }
    EXPECT_EQ(steps, env.episodeLength());
}

TEST(CatchEnv, RewardOnlyAtTerminal)
{
    td::CatchEnv env(7, 2);
    env.reset();
    for (std::int64_t i = 0; i < env.episodeLength() - 1; ++i) {
        auto out = env.step(td::CatchEnv::Action::Stay);
        EXPECT_EQ(out.reward, 0.0f);
        EXPECT_FALSE(out.done);
    }
    auto last = env.step(td::CatchEnv::Action::Stay);
    EXPECT_TRUE(last.done);
    EXPECT_TRUE(last.reward == 1.0f || last.reward == -1.0f);
}

TEST(CatchEnv, PerfectPolicyAlwaysCatches)
{
    td::CatchEnv env(7, 3);
    for (int episode = 0; episode < 20; ++episode) {
        auto obs = env.reset();
        // Find ball and paddle columns from the observation.
        float reward = 0.0f;
        bool done = false;
        while (!done) {
            std::int64_t ball = -1, paddle = -1;
            for (std::int64_t j = 0; j < 7 * 7; ++j) {
                if (obs.at(j) == 1.0f)
                    ball = j % 7;
                if (j >= 6 * 7 && obs.at(j) == 0.5f)
                    paddle = j % 7;
            }
            auto act = td::CatchEnv::Action::Stay;
            if (paddle < ball)
                act = td::CatchEnv::Action::Right;
            else if (paddle > ball)
                act = td::CatchEnv::Action::Left;
            auto out = env.step(act);
            obs = out.observation;
            reward = out.reward;
            done = out.done;
        }
        EXPECT_EQ(reward, 1.0f) << "episode " << episode;
    }
}

TEST(CatchEnv, SteppingFinishedEpisodeIsFatal)
{
    td::CatchEnv env(5, 4);
    env.reset();
    while (!env.step(td::CatchEnv::Action::Stay).done) {
    }
    EXPECT_THROW(env.step(td::CatchEnv::Action::Stay),
                 tbd::util::FatalError);
}

TEST(CatchEnv, ObservationEncodesBallAndPaddle)
{
    td::CatchEnv env(5, 5);
    auto obs = env.reset();
    int balls = 0, paddles = 0;
    for (std::int64_t j = 0; j < 25; ++j) {
        balls += obs.at(j) == 1.0f;
        paddles += obs.at(j) == 0.5f;
    }
    EXPECT_EQ(balls, 1);
    EXPECT_EQ(paddles, 1);
}
