#include "data/bucketing.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/logging.h"

namespace td = tbd::data;

TEST(LengthSampler, RespectsBoundsAndMean)
{
    td::LengthSampler sampler(25.0, 0.2, 20, 30, 1); // IWSLT-like
    double sum = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        const auto len = sampler.sample();
        EXPECT_GE(len, 20);
        EXPECT_LE(len, 30);
        sum += static_cast<double>(len);
    }
    EXPECT_NEAR(sum / n, 25.0, 0.5);
}

TEST(LengthSampler, ZeroCvIsDeterministic)
{
    td::LengthSampler sampler(25.0, 0.0, 20, 30, 2);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(sampler.sample(), 25);
}

TEST(LengthSampler, BatchSampling)
{
    td::LengthSampler sampler(10.0, 0.3, 1, 40, 3);
    auto lengths = sampler.sample(64);
    EXPECT_EQ(lengths.size(), 64u);
    EXPECT_THROW(sampler.sample(0), tbd::util::FatalError);
}

TEST(Bucketing, AssignsToSmallestFittingBound)
{
    std::vector<std::int64_t> lengths = {5, 10, 11, 20, 3};
    auto report = td::assignBuckets(lengths, {10, 20});
    ASSERT_EQ(report.buckets.size(), 2u);
    EXPECT_EQ(report.buckets[0].samples, 3); // 5, 10, 3
    EXPECT_EQ(report.buckets[1].samples, 2); // 11, 20
    EXPECT_EQ(report.buckets[0].realTokens, 18);
    EXPECT_EQ(report.buckets[0].paddedTokens, 30);
    EXPECT_EQ(report.buckets[1].paddedTokens, 40);
}

TEST(Bucketing, EfficiencyAccounting)
{
    std::vector<std::int64_t> lengths = {10, 10, 20, 20};
    auto report = td::assignBuckets(lengths, {10, 20});
    // Both buckets perfectly packed.
    EXPECT_DOUBLE_EQ(report.overallEfficiency(), 1.0);
    EXPECT_EQ(report.totalPaddedTokens(), 60);
}

TEST(Bucketing, BeatsPadToMax)
{
    // The reason the paper's Seq2Seq implementations bucket: padding
    // everything to the longest sentence wastes far more tokens.
    td::LengthSampler sampler(25.0, 0.2, 10, 50, 4);
    auto lengths = sampler.sample(512);
    auto bucketed = td::assignBuckets(lengths, {15, 20, 25, 30, 40, 50});
    const double naive = td::padToMaxEfficiency(lengths);
    EXPECT_GT(bucketed.overallEfficiency(), naive);
    EXPECT_GT(bucketed.overallEfficiency(), 0.85);
}

TEST(Bucketing, RejectsUncoveredLengths)
{
    EXPECT_THROW(td::assignBuckets({25}, {10, 20}),
                 tbd::util::FatalError);
    EXPECT_THROW(td::assignBuckets({}, {10}), tbd::util::FatalError);
    EXPECT_THROW(td::assignBuckets({5}, {20, 10}),
                 tbd::util::FatalError);
}
