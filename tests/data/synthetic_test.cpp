#include "data/synthetic.h"

#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace td = tbd::data;
namespace tt = tbd::tensor;

TEST(SyntheticImages, BatchShapesAndLabels)
{
    td::SyntheticImages gen(10, 3, 8, 1);
    auto batch = gen.nextBatch(16);
    EXPECT_EQ(batch.images.shape(), tt::Shape({16, 3, 8, 8}));
    ASSERT_EQ(batch.labels.size(), 16u);
    for (auto l : batch.labels) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, 10);
    }
}

TEST(SyntheticImages, SameSeedSameBatches)
{
    td::SyntheticImages a(4, 1, 6, 7), b(4, 1, 6, 7);
    auto ba = a.nextBatch(8), bb = b.nextBatch(8);
    EXPECT_EQ(ba.labels, bb.labels);
    for (std::int64_t i = 0; i < ba.images.numel(); ++i)
        EXPECT_FLOAT_EQ(ba.images.at(i), bb.images.at(i));
}

TEST(SyntheticImages, ClassesAreSeparable)
{
    // Same-class images must be closer to each other than cross-class,
    // otherwise nothing could ever learn from this data.
    td::SyntheticImages gen(2, 1, 8, 3);
    std::vector<tt::Tensor> class0, class1;
    while (class0.size() < 4 || class1.size() < 4) {
        auto b = gen.nextBatch(8);
        for (std::size_t i = 0; i < b.labels.size(); ++i) {
            const std::int64_t plane = 64;
            tt::Tensor img(tt::Shape{plane});
            for (std::int64_t j = 0; j < plane; ++j)
                img.at(j) =
                    b.images.at(static_cast<std::int64_t>(i) * plane + j);
            (b.labels[i] == 0 ? class0 : class1).push_back(img);
        }
    }
    auto dist = [](const tt::Tensor &a, const tt::Tensor &b) {
        double d = 0.0;
        for (std::int64_t i = 0; i < a.numel(); ++i) {
            const double delta = a.at(i) - b.at(i);
            d += delta * delta;
        }
        return d;
    };
    const double within = dist(class0[0], class0[1]);
    const double across = dist(class0[0], class1[0]);
    EXPECT_LT(within, across);
}

TEST(SyntheticTranslation, ShiftRuleHolds)
{
    td::SyntheticTranslation gen(50, 12, 2);
    auto batch = gen.nextBatch(4);
    EXPECT_EQ(batch.src.shape(), tt::Shape({4, 12}));
    for (std::int64_t i = 0; i < batch.src.numel(); ++i) {
        const auto s = static_cast<std::int64_t>(batch.src.at(i));
        const auto t = static_cast<std::int64_t>(batch.tgt.at(i));
        EXPECT_EQ(t, (s + 1) % 50);
    }
}

TEST(SyntheticTranslation, TargetIdsMatchTensor)
{
    td::SyntheticTranslation gen(20, 5, 3);
    auto batch = gen.nextBatch(3);
    for (std::size_t n = 0; n < 3; ++n)
        for (std::int64_t t = 0; t < 5; ++t)
            EXPECT_EQ(batch.tgtIds[n][static_cast<std::size_t>(t)],
                      static_cast<std::int64_t>(
                          batch.tgt.at(static_cast<std::int64_t>(n) * 5 +
                                       t)));
}

TEST(SyntheticAudio, LabelsAvoidBlankAndImmediateRepeats)
{
    td::SyntheticAudio gen(8, 30, 6, 5, 4);
    auto batch = gen.nextBatch(6);
    EXPECT_EQ(batch.features.shape(), tt::Shape({6, 30, 6}));
    for (const auto &label : batch.labels) {
        ASSERT_EQ(label.size(), 5u);
        for (std::size_t i = 0; i < label.size(); ++i) {
            EXPECT_GE(label[i], 1);
            EXPECT_LE(label[i], 8);
            if (i > 0) {
                EXPECT_NE(label[i], label[i - 1]);
            }
        }
    }
}

TEST(SyntheticAudio, RejectsInfeasibleFrameCount)
{
    EXPECT_THROW(td::SyntheticAudio(8, 5, 6, 5, 1),
                 tbd::util::FatalError);
}

TEST(SyntheticTranslation, SameSeedSameBatches)
{
    td::SyntheticTranslation a(50, 12, 9), b(50, 12, 9);
    auto ba = a.nextBatch(4), bb = b.nextBatch(4);
    EXPECT_EQ(ba.tgtIds, bb.tgtIds);
    for (std::int64_t i = 0; i < ba.src.numel(); ++i)
        EXPECT_EQ(ba.src.at(i), bb.src.at(i));
}

TEST(SyntheticAudio, SameSeedSameBatches)
{
    td::SyntheticAudio a(8, 30, 6, 5, 11), b(8, 30, 6, 5, 11);
    auto ba = a.nextBatch(4), bb = b.nextBatch(4);
    EXPECT_EQ(ba.labels, bb.labels);
    for (std::int64_t i = 0; i < ba.features.numel(); ++i)
        EXPECT_FLOAT_EQ(ba.features.at(i), bb.features.at(i));
}

// Seed-stability goldens: the integer label streams of each generator
// are pinned to exact values, so a refactor that silently reorders RNG
// draws (and thereby changes every "same data" comparison across the
// suite) fails here first.
TEST(SyntheticImages, GoldenLabelStream)
{
    td::SyntheticImages gen(4, 1, 6, 7);
    const auto batch = gen.nextBatch(8);
    const std::vector<std::int64_t> expected{2, 0, 3, 2, 1, 2, 0, 3};
    EXPECT_EQ(batch.labels, expected);
}

TEST(SyntheticTranslation, GoldenTargetIds)
{
    td::SyntheticTranslation gen(20, 5, 3);
    const auto batch = gen.nextBatch(2);
    const std::vector<std::vector<std::int64_t>> expected{
        {18, 1, 8, 4, 3}, {4, 14, 8, 8, 16}};
    EXPECT_EQ(batch.tgtIds, expected);
}

TEST(SyntheticAudio, GoldenLabelStream)
{
    td::SyntheticAudio gen(8, 30, 6, 5, 4);
    const auto batch = gen.nextBatch(2);
    const std::vector<std::vector<std::int64_t>> expected{
        {2, 5, 1, 5, 1}, {5, 3, 2, 4, 6}};
    EXPECT_EQ(batch.labels, expected);
}

TEST(SyntheticImages, GenerationUnaffectedByThreadPoolActivity)
{
    // Batches drawn while the TBD_THREADS-sized pool is busy with
    // sibling generators must equal batches drawn in isolation.
    td::SyntheticImages quiet(4, 1, 6, 7);
    const auto expected = quiet.nextBatch(8);

    td::SyntheticImages noisy(4, 1, 6, 7);
    tbd::util::parallelFor(
        0, 8, 1, [](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t j = lo; j < hi; ++j) {
                td::SyntheticImages sibling(
                    4, 1, 6, static_cast<std::uint64_t>(j) + 100);
                (void)sibling.nextBatch(4);
            }
        });
    const auto actual = noisy.nextBatch(8);

    EXPECT_EQ(expected.labels, actual.labels);
    for (std::int64_t i = 0; i < expected.images.numel(); ++i)
        EXPECT_FLOAT_EQ(expected.images.at(i), actual.images.at(i));
}
