#include "data/synthetic.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace td = tbd::data;
namespace tt = tbd::tensor;

TEST(SyntheticImages, BatchShapesAndLabels)
{
    td::SyntheticImages gen(10, 3, 8, 1);
    auto batch = gen.nextBatch(16);
    EXPECT_EQ(batch.images.shape(), tt::Shape({16, 3, 8, 8}));
    ASSERT_EQ(batch.labels.size(), 16u);
    for (auto l : batch.labels) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, 10);
    }
}

TEST(SyntheticImages, SameSeedSameBatches)
{
    td::SyntheticImages a(4, 1, 6, 7), b(4, 1, 6, 7);
    auto ba = a.nextBatch(8), bb = b.nextBatch(8);
    EXPECT_EQ(ba.labels, bb.labels);
    for (std::int64_t i = 0; i < ba.images.numel(); ++i)
        EXPECT_FLOAT_EQ(ba.images.at(i), bb.images.at(i));
}

TEST(SyntheticImages, ClassesAreSeparable)
{
    // Same-class images must be closer to each other than cross-class,
    // otherwise nothing could ever learn from this data.
    td::SyntheticImages gen(2, 1, 8, 3);
    std::vector<tt::Tensor> class0, class1;
    while (class0.size() < 4 || class1.size() < 4) {
        auto b = gen.nextBatch(8);
        for (std::size_t i = 0; i < b.labels.size(); ++i) {
            const std::int64_t plane = 64;
            tt::Tensor img(tt::Shape{plane});
            for (std::int64_t j = 0; j < plane; ++j)
                img.at(j) =
                    b.images.at(static_cast<std::int64_t>(i) * plane + j);
            (b.labels[i] == 0 ? class0 : class1).push_back(img);
        }
    }
    auto dist = [](const tt::Tensor &a, const tt::Tensor &b) {
        double d = 0.0;
        for (std::int64_t i = 0; i < a.numel(); ++i) {
            const double delta = a.at(i) - b.at(i);
            d += delta * delta;
        }
        return d;
    };
    const double within = dist(class0[0], class0[1]);
    const double across = dist(class0[0], class1[0]);
    EXPECT_LT(within, across);
}

TEST(SyntheticTranslation, ShiftRuleHolds)
{
    td::SyntheticTranslation gen(50, 12, 2);
    auto batch = gen.nextBatch(4);
    EXPECT_EQ(batch.src.shape(), tt::Shape({4, 12}));
    for (std::int64_t i = 0; i < batch.src.numel(); ++i) {
        const auto s = static_cast<std::int64_t>(batch.src.at(i));
        const auto t = static_cast<std::int64_t>(batch.tgt.at(i));
        EXPECT_EQ(t, (s + 1) % 50);
    }
}

TEST(SyntheticTranslation, TargetIdsMatchTensor)
{
    td::SyntheticTranslation gen(20, 5, 3);
    auto batch = gen.nextBatch(3);
    for (std::size_t n = 0; n < 3; ++n)
        for (std::int64_t t = 0; t < 5; ++t)
            EXPECT_EQ(batch.tgtIds[n][static_cast<std::size_t>(t)],
                      static_cast<std::int64_t>(
                          batch.tgt.at(static_cast<std::int64_t>(n) * 5 +
                                       t)));
}

TEST(SyntheticAudio, LabelsAvoidBlankAndImmediateRepeats)
{
    td::SyntheticAudio gen(8, 30, 6, 5, 4);
    auto batch = gen.nextBatch(6);
    EXPECT_EQ(batch.features.shape(), tt::Shape({6, 30, 6}));
    for (const auto &label : batch.labels) {
        ASSERT_EQ(label.size(), 5u);
        for (std::size_t i = 0; i < label.size(); ++i) {
            EXPECT_GE(label[i], 1);
            EXPECT_LE(label[i], 8);
            if (i > 0)
                EXPECT_NE(label[i], label[i - 1]);
        }
    }
}

TEST(SyntheticAudio, RejectsInfeasibleFrameCount)
{
    EXPECT_THROW(td::SyntheticAudio(8, 5, 6, 5, 1),
                 tbd::util::FatalError);
}
