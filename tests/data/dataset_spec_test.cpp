#include "data/dataset_spec.h"

#include <gtest/gtest.h>

namespace td = tbd::data;

TEST(DatasetSpec, Table3RowCount)
{
    EXPECT_EQ(td::allDatasets().size(), 6u);
}

TEST(DatasetSpec, ImagenetMatchesTable3)
{
    const auto &d = td::imagenet1k();
    EXPECT_EQ(d.sampleCount, 1200000);
    EXPECT_NE(d.shapeDesc.find("3x256x256"), std::string::npos);
}

TEST(DatasetSpec, IwsltVocabularyNoted)
{
    const auto &d = td::iwslt15();
    EXPECT_EQ(d.sampleCount, 133000);
    EXPECT_NE(d.special.find("17188"), std::string::npos);
    EXPECT_NEAR(d.meanSeqLen, 25.0, 1e-9);
}

TEST(DatasetSpec, VocAnnotationCount)
{
    const auto &d = td::pascalVoc2007();
    EXPECT_EQ(d.sampleCount, 5011);
    EXPECT_NE(d.special.find("12608"), std::string::npos);
}

TEST(DatasetSpec, BytesPerSampleArePositive)
{
    for (const auto *d : td::allDatasets()) {
        EXPECT_GT(d->bytesPerSample, 0.0) << d->name;
        EXPECT_GE(d->prepUsPerSample, 0.0) << d->name;
    }
}

TEST(DatasetSpec, AtariPrepDominates)
{
    // The A3C CPU-utilization outlier (Fig. 7) comes from emulator cost.
    EXPECT_GT(td::atari2600().prepUsPerSample,
              3.0 * td::imagenet1k().prepUsPerSample);
}
