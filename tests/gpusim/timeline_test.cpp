#include "gpusim/timeline.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace tg = tbd::gpusim;

namespace {

tg::KernelDesc
kernelWithDuration(double targetUs)
{
    // Saturating compute kernel sized so duration ~= targetUs + tail.
    tg::KernelDesc k;
    k.name = "k";
    k.flops = (targetUs - tg::kKernelTailUs) * 1e-6 *
              tg::quadroP4000().peakFlops() * 0.5;
    k.parallelism = 1e9;
    k.computeEff = 0.5;
    return k;
}

} // namespace

TEST(Timeline, LongKernelsKeepGpuBusy)
{
    tg::GpuTimeline tl(tg::quadroP4000());
    // 100 kernels of ~500us, launch cost 5us: launches hide behind
    // execution, so utilization approaches 1.
    for (int i = 0; i < 100; ++i)
        tl.launch(kernelWithDuration(500.0), 5.0);
    tl.sync();
    auto s = tl.stats();
    EXPECT_GT(s.gpuUtilization(), 0.97);
    EXPECT_EQ(s.kernelCount, 100);
}

TEST(Timeline, ShortKernelsAreLaunchBound)
{
    tg::GpuTimeline tl(tg::quadroP4000());
    // Kernels shorter than their launch cost: the GPU starves. This is
    // the LSTM mechanism behind the paper's Observation 5.
    for (int i = 0; i < 1000; ++i)
        tl.launch(kernelWithDuration(3.0), 10.0);
    tl.sync();
    auto s = tl.stats();
    EXPECT_LT(s.gpuUtilization(), 0.5);
}

TEST(Timeline, HostComputeDelaysKernels)
{
    tg::GpuTimeline tl(tg::quadroP4000());
    tl.hostCompute(10000.0);
    tl.launch(kernelWithDuration(100.0), 5.0);
    tl.sync();
    auto s = tl.stats();
    EXPECT_GT(s.elapsedUs, 10000.0);
    EXPECT_LT(s.gpuUtilization(), 0.05);
}

TEST(Timeline, StatsAccumulateFlops)
{
    tg::GpuTimeline tl(tg::quadroP4000());
    auto k = kernelWithDuration(100.0);
    tl.launch(k, 5.0);
    tl.launch(k, 5.0);
    tl.sync();
    EXPECT_DOUBLE_EQ(tl.stats().totalFlops, 2.0 * k.flops);
}

TEST(Timeline, BeginIntervalDropsWarmup)
{
    tg::GpuTimeline tl(tg::quadroP4000());
    for (int i = 0; i < 10; ++i)
        tl.launch(kernelWithDuration(200.0), 5.0);
    tl.beginInterval(); // discard warm-up (sampling methodology 3.4.2)
    for (int i = 0; i < 3; ++i)
        tl.launch(kernelWithDuration(200.0), 5.0);
    tl.sync();
    auto s = tl.stats();
    EXPECT_EQ(s.kernelCount, 3);
    EXPECT_NEAR(s.gpuBusyUs, 3 * 200.0, 30.0);
    EXPECT_GT(s.gpuUtilization(), 0.9);
}

TEST(Timeline, ExecutionsRecordStartTimesInOrder)
{
    tg::GpuTimeline tl(tg::quadroP4000());
    tl.launch(kernelWithDuration(50.0), 5.0);
    tl.launch(kernelWithDuration(50.0), 5.0);
    const auto &ex = tl.executions();
    ASSERT_EQ(ex.size(), 2u);
    EXPECT_GE(ex[1].startUs, ex[0].startUs + ex[0].durationUs);
}

TEST(Timeline, ReplayedIterationIsBitwiseIdenticalToEventLoop)
{
    // Run three identical iterations through the event loop on one
    // timeline; on another, run the first iteration and replay the
    // remaining two from its delta. Every stat must match EXACTLY —
    // replay is defined as performing the same floating-point ops.
    const auto iteration = [](tg::GpuTimeline &tl) {
        tl.hostCompute(12.5);
        tl.launch(kernelWithDuration(40.0), 7.0);
        tl.launch(kernelWithDuration(3.0), 9.0);
        tl.launch(kernelWithDuration(150.0), 5.0);
        tl.sync();
    };

    tg::GpuTimeline looped(tg::quadroP4000());
    for (int i = 0; i < 3; ++i)
        iteration(looped);

    tg::GpuTimeline replayed(tg::quadroP4000());
    iteration(replayed);
    const tg::IterationDelta delta = replayed.lastIterationDelta();
    replayed.applyIterationDelta(delta);
    replayed.applyIterationDelta(delta);

    const auto a = looped.stats();
    const auto b = replayed.stats();
    EXPECT_EQ(a.elapsedUs, b.elapsedUs);
    EXPECT_EQ(a.gpuBusyUs, b.gpuBusyUs);
    EXPECT_EQ(a.cpuBusyUs, b.cpuBusyUs);
    EXPECT_EQ(a.totalFlops, b.totalFlops);
    EXPECT_EQ(a.kernelCount, b.kernelCount);
}

TEST(Timeline, ApplyDeltaRequiresDrainedTimeline)
{
    tg::GpuTimeline tl(tg::quadroP4000());
    tl.launch(kernelWithDuration(50.0), 5.0);
    tl.sync();
    const tg::IterationDelta delta = tl.lastIterationDelta();
    EXPECT_TRUE(tl.atSyncPoint());

    tl.launch(kernelWithDuration(50.0), 5.0); // in flight again
    EXPECT_FALSE(tl.atSyncPoint());
    EXPECT_THROW(tl.applyIterationDelta(delta), tbd::util::FatalError);
}

TEST(Timeline, TraceLimitCapsRecordingButNotStats)
{
    tg::GpuTimeline tl(tg::quadroP4000());
    tl.setTraceLimit(3);
    EXPECT_FALSE(tl.traceComplete());
    for (int i = 0; i < 10; ++i)
        tl.launch(kernelWithDuration(50.0), 5.0);
    tl.sync();
    EXPECT_EQ(tl.executions().size(), 3u);
    EXPECT_TRUE(tl.traceComplete());
    // Aggregates still see all ten launches.
    EXPECT_EQ(tl.stats().kernelCount, 10);

    // The recorded prefix is exactly what an unlimited timeline records.
    tg::GpuTimeline full(tg::quadroP4000());
    for (int i = 0; i < 10; ++i)
        full.launch(kernelWithDuration(50.0), 5.0);
    full.sync();
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(tl.executions()[i].startUs, full.executions()[i].startUs);
        EXPECT_EQ(tl.executions()[i].durationUs,
                  full.executions()[i].durationUs);
    }
}

TEST(Timeline, Fp32UtilizationOfMixedTimeline)
{
    tg::GpuTimeline tl(tg::quadroP4000());
    // One compute kernel at 50% eff + one zero-flop memory kernel of
    // equal duration: aggregate FP32 util should be ~25%.
    tl.launch(kernelWithDuration(500.0), 2.0);
    tg::KernelDesc mem;
    mem.name = "memcpyish";
    mem.flops = 0.0;
    mem.bytes = 500.0e-6 * tg::quadroP4000().memoryBwGBs * 1e9 * 0.7;
    mem.parallelism = 1e9;
    mem.memoryEff = 0.7;
    tl.launch(mem, 2.0);
    tl.sync();
    auto s = tl.stats();
    EXPECT_NEAR(s.fp32Utilization(tl.gpu()), 0.25, 0.03);
}
