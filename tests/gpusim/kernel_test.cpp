#include "gpusim/kernel.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace tg = tbd::gpusim;

namespace {

tg::KernelDesc
bigComputeKernel()
{
    tg::KernelDesc k;
    k.name = "sgemm";
    k.category = tg::KernelCategory::Gemm;
    k.flops = 1e10; // 10 GFLOP
    k.bytes = 1e6;
    k.parallelism = 1e8; // saturating
    k.computeEff = 0.6;
    return k;
}

} // namespace

TEST(KernelTiming, ComputeBoundDuration)
{
    const auto &gpu = tg::quadroP4000();
    auto t = tg::timeKernel(gpu, bigComputeKernel());
    // 1e10 / (5.3e12 * 0.6) ~= 3.14 ms (saturated).
    EXPECT_EQ(t.limiter, tg::Limiter::Compute);
    EXPECT_NEAR(t.durationUs, 3150.0, 100.0);
}

TEST(KernelTiming, Fp32UtilApproachesEffWhenSaturated)
{
    const auto &gpu = tg::quadroP4000();
    auto t = tg::timeKernel(gpu, bigComputeKernel());
    EXPECT_NEAR(t.fp32Util, 0.6, 0.02);
}

TEST(KernelTiming, SmallKernelsCannotSaturate)
{
    const auto &gpu = tg::quadroP4000();
    tg::KernelDesc k = bigComputeKernel();
    k.parallelism = gpu.saturationThreads(); // sat factor = 0.5
    auto t = tg::timeKernel(gpu, k);
    EXPECT_NEAR(t.fp32Util, 0.3, 0.02);
}

TEST(KernelTiming, MemoryBoundKernel)
{
    const auto &gpu = tg::quadroP4000();
    tg::KernelDesc k;
    k.name = "bn_fw";
    k.category = tg::KernelCategory::BatchNorm;
    k.flops = 1e7;
    k.bytes = 1e9; // 1 GB of traffic
    k.parallelism = 1e8;
    k.memoryEff = 0.8;
    auto t = tg::timeKernel(gpu, k);
    EXPECT_EQ(t.limiter, tg::Limiter::Memory);
    // 1e9 / (243e9 * 0.8) = 5.14 ms.
    EXPECT_NEAR(t.durationUs, 5144.0, 60.0);
    EXPECT_LT(t.fp32Util, 0.01); // memory-bound => low FP32 util
}

TEST(KernelTiming, TinyKernelPaysFixedTail)
{
    const auto &gpu = tg::quadroP4000();
    tg::KernelDesc k;
    k.name = "tiny";
    k.flops = 100.0;
    k.bytes = 100.0;
    k.parallelism = 32;
    auto t = tg::timeKernel(gpu, k);
    EXPECT_EQ(t.limiter, tg::Limiter::Tail);
    EXPECT_GE(t.durationUs, tg::kKernelTailUs);
}

TEST(KernelTiming, SameKernelLowerUtilOnTitanXp)
{
    // Observation 10: identical work achieves a smaller fraction of
    // peak on the wider GPU.
    tg::KernelDesc k = bigComputeKernel();
    k.parallelism = 2.0e5; // mid-size kernel
    auto p4000 = tg::timeKernel(tg::quadroP4000(), k);
    auto xp = tg::timeKernel(tg::titanXp(), k);
    EXPECT_LT(xp.fp32Util, p4000.fp32Util);
    // ... but it still finishes faster in absolute terms.
    EXPECT_LT(xp.durationUs, p4000.durationUs);
}

TEST(KernelTiming, RejectsInvalidEfficiency)
{
    tg::KernelDesc k = bigComputeKernel();
    k.computeEff = 0.0;
    EXPECT_THROW(tg::timeKernel(tg::quadroP4000(), k),
                 tbd::util::FatalError);
}

TEST(KernelTiming, CategoryNamesAreStable)
{
    EXPECT_STREQ(tg::kernelCategoryName(tg::KernelCategory::Gemm), "gemm");
    EXPECT_STREQ(tg::kernelCategoryName(tg::KernelCategory::BatchNorm),
                 "batch_norm");
    EXPECT_STREQ(tg::kernelCategoryName(tg::KernelCategory::Update),
                 "update");
}
