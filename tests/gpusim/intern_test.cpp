#include "gpusim/intern.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace tg = tbd::gpusim;

TEST(Intern, SameStringYieldsSameId)
{
    const tg::NameId a = tg::internKernelName("sgemm_128x128(fc1)");
    const tg::NameId b = tg::internKernelName("sgemm_128x128(fc1)");
    EXPECT_EQ(a, b);
    EXPECT_EQ(tg::internedKernelName(a), "sgemm_128x128(fc1)");
}

TEST(Intern, DistinctStringsYieldDistinctIds)
{
    const tg::NameId a = tg::internKernelName("intern_distinct_a");
    const tg::NameId b = tg::internKernelName("intern_distinct_b");
    EXPECT_NE(a, b);
}

TEST(Intern, EmptyNameIsIdZero)
{
    EXPECT_EQ(tg::internKernelName(""), 0u);
    EXPECT_EQ(tg::internedKernelName(0), "");
    EXPECT_TRUE(tg::KernelName().empty());
}

TEST(Intern, KernelNameConvertsAndCompares)
{
    tg::KernelName k = std::string("relu_kernel(conv1_act)");
    EXPECT_EQ(k.str(), "relu_kernel(conv1_act)");
    // Implicit conversion keeps string-consuming call sites compiling.
    const std::string &as_string = k;
    EXPECT_EQ(as_string, "relu_kernel(conv1_act)");

    tg::KernelName same("relu_kernel(conv1_act)");
    tg::KernelName other("relu_kernel(conv2_act)");
    EXPECT_EQ(k, same);
    EXPECT_NE(k, other);
    EXPECT_LT(k, other); // lexicographic, not id order

    std::ostringstream oss;
    oss << k;
    EXPECT_EQ(oss.str(), "relu_kernel(conv1_act)");
}

TEST(Intern, ConcurrentInterningIsConsistent)
{
    // Many threads intern the same name set concurrently; every thread
    // must observe identical string->id assignments and every id must
    // round-trip to its string.
    constexpr int kThreads = 8;
    constexpr int kNames = 64;
    std::vector<std::vector<tg::NameId>> per_thread(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &per_thread] {
            auto &ids = per_thread[static_cast<std::size_t>(t)];
            ids.reserve(kNames);
            for (int i = 0; i < kNames; ++i)
                ids.push_back(tg::internKernelName(
                    "concurrent_intern_" + std::to_string(i)));
        });
    }
    for (auto &thread : threads)
        thread.join();

    std::set<tg::NameId> distinct;
    for (int i = 0; i < kNames; ++i) {
        const tg::NameId expected = per_thread[0][static_cast<std::size_t>(i)];
        for (int t = 1; t < kThreads; ++t)
            EXPECT_EQ(per_thread[static_cast<std::size_t>(t)]
                                [static_cast<std::size_t>(i)],
                      expected);
        EXPECT_EQ(tg::internedKernelName(expected),
                  "concurrent_intern_" + std::to_string(i));
        distinct.insert(expected);
    }
    EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kNames));
    EXPECT_GE(tg::internedKernelNameCount(),
              static_cast<std::size_t>(kNames));
}

TEST(Intern, UnknownIdThrows)
{
    EXPECT_THROW(tg::internedKernelName(0x7fffffffu), tbd::util::FatalError);
}
