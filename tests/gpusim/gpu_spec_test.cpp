#include "gpusim/gpu_spec.h"

#include <gtest/gtest.h>

namespace tg = tbd::gpusim;

TEST(GpuSpec, P4000MatchesTable4)
{
    const auto &gpu = tg::quadroP4000();
    EXPECT_EQ(gpu.multiprocessors, 14);
    EXPECT_EQ(gpu.coreCount, 1792);
    EXPECT_DOUBLE_EQ(gpu.maxClockMHz, 1480.0);
    EXPECT_DOUBLE_EQ(gpu.memoryGiB, 8.0);
    EXPECT_DOUBLE_EQ(gpu.memoryBwGBs, 243.0);
    EXPECT_EQ(gpu.memoryBusType, "GDDR5");
}

TEST(GpuSpec, TitanXpMatchesTable4)
{
    const auto &gpu = tg::titanXp();
    EXPECT_EQ(gpu.multiprocessors, 30);
    EXPECT_EQ(gpu.coreCount, 3840);
    EXPECT_DOUBLE_EQ(gpu.maxClockMHz, 1582.0);
    EXPECT_DOUBLE_EQ(gpu.memoryGiB, 12.0);
    EXPECT_DOUBLE_EQ(gpu.memoryBwGBs, 547.6);
}

TEST(GpuSpec, PeakFlopsFormula)
{
    // P4000: 2 * 1792 * 1.48 GHz = 5.304 TFLOPS.
    EXPECT_NEAR(tg::quadroP4000().peakFlops(), 5.304e12, 1e9);
    // TITAN Xp: 2 * 3840 * 1.582 GHz = 12.15 TFLOPS.
    EXPECT_NEAR(tg::titanXp().peakFlops(), 12.15e12, 1e10);
}

TEST(GpuSpec, TitanXpIsHarderToSaturate)
{
    // Observation 10 prerequisite: the wider GPU needs more threads.
    EXPECT_GT(tg::titanXp().saturationThreads(),
              tg::quadroP4000().saturationThreads());
}

TEST(GpuSpec, MemoryBytes)
{
    EXPECT_EQ(tg::quadroP4000().memoryBytes(), 8ull << 30);
}

TEST(GpuSpec, HostCpuMatchesTable4)
{
    const auto &cpu = tg::xeonE52680();
    EXPECT_EQ(cpu.coreCount, 28);
    EXPECT_DOUBLE_EQ(cpu.maxClockMHz, 2900.0);
    EXPECT_DOUBLE_EQ(cpu.memoryBwGBs, 76.8);
}
