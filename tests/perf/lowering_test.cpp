#include "perf/lowering.h"

#include <gtest/gtest.h>

#include "models/cnn_workloads.h"
#include "models/seq_workloads.h"
#include "util/logging.h"

namespace tp = tbd::perf;
namespace md = tbd::models;
namespace tf = tbd::frameworks;
namespace tg = tbd::gpusim;

namespace {

md::Workload
oneConv()
{
    md::Workload w;
    w.add(md::convOp("c", 8, 16, 28, 32, 3, 1, 1));
    return w;
}

int
countCategory(const tp::LoweredIteration &iter, tg::KernelCategory cat)
{
    int n = 0;
    for (const auto &item : iter.items)
        n += item.kernel.category == cat;
    return n;
}

} // namespace

TEST(Lowering, ConvHasForwardDgradWgradKernels)
{
    auto iter = tp::lowerIteration(oneConv(), tf::tensorflow());
    EXPECT_EQ(countCategory(iter, tg::KernelCategory::Conv), 3);
    // One parameterized op => one optimizer update kernel.
    EXPECT_EQ(countCategory(iter, tg::KernelCategory::Update), 1);
}

TEST(Lowering, BackwardCostsRoughlyTwiceForward)
{
    auto iter = tp::lowerIteration(oneConv(), tf::tensorflow());
    double fw = 0.0, bw = 0.0;
    for (const auto &item : iter.items) {
        if (item.kernel.category != tg::KernelCategory::Conv)
            continue;
        if (item.kernel.name.str().find("implicit_convolve") !=
            std::string::npos) {
            fw += item.kernel.flops;
        } else {
            bw += item.kernel.flops;
        }
    }
    EXPECT_NEAR(bw / fw, 2.0, 0.01);
}

TEST(Lowering, EmptyWorkloadIsFatal)
{
    md::Workload empty;
    EXPECT_THROW(tp::lowerIteration(empty, tf::mxnet()),
                 tbd::util::FatalError);
}

TEST(Lowering, ResNetKernelNamesIncludeBatchNormFamilies)
{
    auto iter =
        tp::lowerIteration(md::resnet50Workload(8), tf::tensorflow());
    bool has_bn_fw = false, has_bn_bw = false, has_conv = false;
    for (const auto &item : iter.items) {
        has_bn_fw |= item.kernel.name.str().find("bn_fw_tr_1C11") !=
                     std::string::npos;
        has_bn_bw |= item.kernel.name.str().find("bn_bw_1C11") !=
                     std::string::npos;
        has_conv |= item.kernel.name.str().find("implicit_convolve") !=
                    std::string::npos;
    }
    EXPECT_TRUE(has_bn_fw);
    EXPECT_TRUE(has_bn_bw);
    EXPECT_TRUE(has_conv);
}

TEST(Lowering, FrameworkFlavorsElementwiseKernels)
{
    auto tf_iter =
        tp::lowerIteration(md::resnet50Workload(4), tf::tensorflow());
    auto mx_iter =
        tp::lowerIteration(md::resnet50Workload(4), tf::mxnet());
    auto has = [](const tp::LoweredIteration &iter, const char *s) {
        for (const auto &item : iter.items)
            if (item.kernel.name.str().find(s) != std::string::npos)
                return true;
        return false;
    };
    EXPECT_TRUE(has(tf_iter, "Eigen"));
    EXPECT_FALSE(has(mx_iter, "Eigen"));
    EXPECT_TRUE(has(mx_iter, "mxnet"));
}

TEST(Lowering, UnfusedRnnEmitsPerStepKernels)
{
    md::Workload w;
    w.add(md::rnnOp("lstm", md::RnnKind::Lstm, 16, 25, 64, 64));
    auto mx = tp::lowerIteration(w, tf::mxnet());      // 5 pointwise/step
    auto tf_ = tp::lowerIteration(w, tf::tensorflow());// fused chains: 2
    auto cntk = tp::lowerIteration(w, tf::cntk());     // cuDNN fused: 0
    EXPECT_GT(mx.items.size(), tf_.items.size());
    EXPECT_GT(tf_.items.size(), cntk.items.size());
    // MXNet: fw (1 big gemm + 25*(1+5)) + bw same + update = >300.
    EXPECT_GT(countCategory(mx, tg::KernelCategory::RnnPointwise),
              2 * 25 * 4);
}

TEST(Lowering, TotalFlopsScaleWithBatch)
{
    auto small = tp::lowerIteration(md::resnet50Workload(4),
                                    tf::tensorflow());
    auto large = tp::lowerIteration(md::resnet50Workload(16),
                                    tf::tensorflow());
    EXPECT_NEAR(large.totalFlops() / small.totalFlops(), 4.0, 0.3);
}

TEST(Lowering, AutotuneOnlyProbesConvolutions)
{
    auto tune = tp::autotuneKernels(md::seq2seqWorkload(8), tf::mxnet());
    // Seq2Seq has no convolutions, so nothing to auto-tune.
    EXPECT_TRUE(tune.items.empty());

    auto conv_tune = tp::autotuneKernels(oneConv(), tf::mxnet());
    EXPECT_EQ(conv_tune.items.size(), 6u); // 6 algorithm probes
}

TEST(Lowering, FirstKernelOfOpCarriesFrontendCost)
{
    auto iter = tp::lowerIteration(oneConv(), tf::tensorflow());
    // Stream: conv_fw | dgrad, wgrad | update. The wgrad kernel is the
    // second kernel of the backward op and pays no frontend surcharge.
    ASSERT_EQ(iter.items.size(), 4u);
    EXPECT_GT(iter.items[0].extraHostUs, 0.0);
    EXPECT_GT(iter.items[1].extraHostUs, 0.0);
    EXPECT_EQ(iter.items[2].extraHostUs, 0.0);
}

TEST(Lowering, InferenceHasNoBackwardOrUpdateKernels)
{
    auto iter = tp::lowerInference(md::resnet50Workload(8),
                                   tf::tensorflow());
    for (const auto &item : iter.items) {
        EXPECT_EQ(item.kernel.name.str().find("dgrad"), std::string::npos);
        EXPECT_EQ(item.kernel.name.str().find("wgrad"), std::string::npos);
        EXPECT_NE(item.kernel.category, tg::KernelCategory::Update)
            << item.kernel.name;
        EXPECT_EQ(item.kernel.name.str().find("bn_bw"), std::string::npos);
    }
}

TEST(Lowering, InferenceSkipsDropoutAndLoss)
{
    md::Workload w;
    w.add(md::gemmOp("fc", 8, 16, 16));
    w.add(md::dropoutOp("drop", 8 * 16));
    w.add(md::lossOp("loss", 8, 16));
    // MXNet lowers dropout as a kernel during training...
    auto train = tp::lowerIteration(w, tf::mxnet());
    auto infer = tp::lowerInference(w, tf::mxnet());
    bool train_has_drop = false, infer_has_drop = false,
         infer_has_loss = false;
    for (const auto &item : train.items)
        train_has_drop |=
            item.kernel.name.str().find("drop") != std::string::npos;
    for (const auto &item : infer.items) {
        infer_has_drop |=
            item.kernel.name.str().find("drop") != std::string::npos;
        infer_has_loss |=
            item.kernel.name.str().find("loss") != std::string::npos;
    }
    EXPECT_TRUE(train_has_drop);
    EXPECT_FALSE(infer_has_drop);
    EXPECT_FALSE(infer_has_loss);
}

TEST(Lowering, TrainingCostsRoughlyThriceInference)
{
    // Forward + dgrad + wgrad: the classic 3x rule the paper's
    // Section 1 contrast rests on.
    auto train = tp::lowerIteration(md::resnet50Workload(8),
                                    tf::mxnet());
    auto infer = tp::lowerInference(md::resnet50Workload(8),
                                    tf::mxnet());
    EXPECT_NEAR(train.totalFlops() / infer.totalFlops(), 3.0, 0.3);
}
