#include "perf/simulator.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace tp = tbd::perf;
namespace md = tbd::models;
namespace tf = tbd::frameworks;
namespace tg = tbd::gpusim;

namespace {

tp::RunResult
runCfg(const md::ModelDesc &m, tf::FrameworkId f, std::int64_t batch,
       const tg::GpuSpec &gpu = tg::quadroP4000())
{
    tp::PerfSimulator sim;
    tp::RunConfig rc;
    rc.model = &m;
    rc.framework = f;
    rc.gpu = gpu;
    rc.batch = batch;
    return sim.run(rc);
}

} // namespace

TEST(Simulator, ThroughputRisesWithBatch)
{
    // Observation 1, for a CNN and an RNN model.
    auto r8 = runCfg(md::resnet50(), tf::FrameworkId::MXNet, 8);
    auto r32 = runCfg(md::resnet50(), tf::FrameworkId::MXNet, 32);
    EXPECT_GT(r32.throughputSamples, r8.throughputSamples);

    auto n8 = runCfg(md::seq2seqNmt(), tf::FrameworkId::TensorFlow, 8);
    auto n64 = runCfg(md::seq2seqNmt(), tf::FrameworkId::TensorFlow, 64);
    EXPECT_GT(n64.throughputSamples, 3.0 * n8.throughputSamples);
}

TEST(Simulator, CnnSaturatesRnnDoesNot)
{
    // Observation 2: RNN throughput keeps scaling to the memory limit,
    // CNN throughput saturates.
    auto r32 = runCfg(md::resnet50(), tf::FrameworkId::MXNet, 32);
    auto r64 = runCfg(md::resnet50(), tf::FrameworkId::MXNet, 64);
    const double cnn_gain =
        r64.throughputSamples / r32.throughputSamples;
    EXPECT_LT(cnn_gain, 1.15); // < 15% from doubling the batch

    auto s32 = runCfg(md::sockeye(), tf::FrameworkId::MXNet, 32);
    auto s64 = runCfg(md::sockeye(), tf::FrameworkId::MXNet, 64);
    const double rnn_gain =
        s64.throughputSamples / s32.throughputSamples;
    EXPECT_GT(rnn_gain, 1.25); // paper: +25% going 64 -> 128 for NMT
}

TEST(Simulator, FrameworkOrderingMatchesObservation3)
{
    // MXNet leads on CNNs...
    auto mx = runCfg(md::resnet50(), tf::FrameworkId::MXNet, 32);
    auto tfr = runCfg(md::resnet50(), tf::FrameworkId::TensorFlow, 32);
    EXPECT_GT(mx.throughputSamples, tfr.throughputSamples);
    // ...TensorFlow leads on Seq2Seq at the same batch size.
    auto nmt = runCfg(md::seq2seqNmt(), tf::FrameworkId::TensorFlow, 64);
    auto sock = runCfg(md::sockeye(), tf::FrameworkId::MXNet, 64);
    EXPECT_GT(nmt.throughputSamples, sock.throughputSamples);
}

TEST(Simulator, LstmFp32UtilizationIsLow)
{
    // Observation 7: RNN-based models achieve far lower FP32
    // utilization than CNNs even at their maximum batch.
    auto cnn = runCfg(md::resnet50(), tf::FrameworkId::MXNet, 32);
    auto lstm = runCfg(md::sockeye(), tf::FrameworkId::MXNet, 64);
    auto ds2 = runCfg(md::deepSpeech2(), tf::FrameworkId::MXNet, 4);
    EXPECT_LT(lstm.fp32Utilization, 0.5 * cnn.fp32Utilization);
    EXPECT_LT(ds2.fp32Utilization, 0.3 * cnn.fp32Utilization);
}

TEST(Simulator, TransformerAvoidsTheRnnPenalty)
{
    // Observation 5's counterpoint: the attention-based translator
    // utilizes the GPU like the CNNs do.
    auto tr =
        runCfg(md::transformer(), tf::FrameworkId::TensorFlow, 2048);
    EXPECT_GT(tr.gpuUtilization, 0.95);
    EXPECT_GT(tr.fp32Utilization, 0.4);
}

TEST(Simulator, RnnGpuUtilizationRisesWithBatch)
{
    // Observation 4/5: small batches leave the GPU starved on
    // per-step dispatch.
    auto s4 = runCfg(md::sockeye(), tf::FrameworkId::MXNet, 4);
    auto s64 = runCfg(md::sockeye(), tf::FrameworkId::MXNet, 64);
    EXPECT_LT(s4.gpuUtilization, s64.gpuUtilization);
}

TEST(Simulator, CpuUtilizationIsLow)
{
    // Observation 9: under 15% everywhere, under 8% for all but two
    // models; CNTK is near zero; A3C is the outlier.
    auto tfr = runCfg(md::resnet50(), tf::FrameworkId::TensorFlow, 32);
    EXPECT_LT(tfr.cpuUtilization, 0.15);
    auto cntk = runCfg(md::resnet50(), tf::FrameworkId::CNTK, 32);
    EXPECT_LT(cntk.cpuUtilization, 0.005);
    auto a3c = runCfg(md::a3c(), tf::FrameworkId::MXNet, 128);
    EXPECT_GT(a3c.cpuUtilization, 0.15);
    EXPECT_LT(a3c.cpuUtilization, 0.45);
}

TEST(Simulator, TitanXpFasterButLessUtilized)
{
    // Observation 10.
    auto p4 = runCfg(md::resnet50(), tf::FrameworkId::MXNet, 32);
    auto xp = runCfg(md::resnet50(), tf::FrameworkId::MXNet, 32,
                     tg::titanXp());
    EXPECT_GT(xp.throughputSamples, 1.5 * p4.throughputSamples);
    EXPECT_LT(xp.fp32Utilization, p4.fp32Utilization);
}

TEST(Simulator, OomEnforcedAgainstDeviceCapacity)
{
    tp::PerfSimulator sim;
    tp::RunConfig rc;
    rc.model = &md::sockeye();
    rc.framework = tf::FrameworkId::MXNet;
    rc.gpu = tg::quadroP4000();
    rc.batch = 256;
    EXPECT_THROW(sim.run(rc), tbd::util::FatalError);
    rc.enforceMemory = false;
    EXPECT_NO_THROW(sim.run(rc));
}

TEST(Simulator, RejectsUnsupportedFramework)
{
    tp::PerfSimulator sim;
    tp::RunConfig rc;
    rc.model = &md::deepSpeech2(); // MXNet only
    rc.framework = tf::FrameworkId::CNTK;
    rc.gpu = tg::quadroP4000();
    rc.batch = 2;
    EXPECT_THROW(sim.run(rc), tbd::util::FatalError);
}

TEST(Simulator, WarmupIterationsAreSlower)
{
    // Iteration 0 carries the cuDNN auto-tuning probes.
    auto r = runCfg(md::resnet50(), tf::FrameworkId::TensorFlow, 16);
    ASSERT_GE(r.warmupIterationUs.size(), 2u);
    ASSERT_FALSE(r.sampleIterationUs.empty());
    EXPECT_GT(r.warmupIterationUs[0], 2.0 * r.sampleIterationUs[0]);
    // Stable iterations are self-consistent.
    for (double t : r.sampleIterationUs)
        EXPECT_NEAR(t, r.sampleIterationUs[0],
                    0.01 * r.sampleIterationUs[0]);
}

TEST(Simulator, KernelTraceCoversOneIteration)
{
    auto r = runCfg(md::resnet50(), tf::FrameworkId::MXNet, 8);
    EXPECT_EQ(static_cast<std::int64_t>(r.kernelTrace.size()),
              r.kernelsPerIteration);
}

TEST(Simulator, FasterRcnnMatchesPaperThroughputBand)
{
    // The paper reports 2.3 images/s for both implementations.
    auto tfr = runCfg(md::fasterRcnn(), tf::FrameworkId::TensorFlow, 1);
    auto mx = runCfg(md::fasterRcnn(), tf::FrameworkId::MXNet, 1);
    EXPECT_GT(tfr.throughputSamples, 1.0);
    EXPECT_LT(tfr.throughputSamples, 4.0);
    EXPECT_GT(mx.throughputSamples, 1.0);
    EXPECT_LT(mx.throughputSamples, 4.0);
    // High GPU utilization on both (paper: 89-90%).
    EXPECT_GT(mx.gpuUtilization, 0.8);
}

TEST(Simulator, LengthSamplingProducesIterationJitter)
{
    tp::RunConfig rc;
    rc.model = &md::sockeye();
    rc.framework = tf::FrameworkId::MXNet;
    rc.gpu = tg::quadroP4000();
    rc.batch = 16;
    rc.sampleIterations = 12;
    rc.lengthCv = 0.25; // IWSLT sentences are 20-30 words

    tp::PerfSimulator sim;
    auto varied = sim.run(rc);
    double lo = varied.sampleIterationUs.front();
    double hi = lo;
    for (double t : varied.sampleIterationUs) {
        lo = std::min(lo, t);
        hi = std::max(hi, t);
    }
    EXPECT_GT(hi, 1.1 * lo); // genuinely variable iterations

    rc.lengthCv = 0.0;
    auto fixed = sim.run(rc);
    for (double t : fixed.sampleIterationUs)
        EXPECT_NEAR(t, fixed.sampleIterationUs.front(),
                    0.01 * fixed.sampleIterationUs.front());
}

TEST(Simulator, LengthSamplingIsSeededAndDeterministic)
{
    tp::RunConfig rc;
    rc.model = &md::deepSpeech2();
    rc.framework = tf::FrameworkId::MXNet;
    rc.gpu = tg::quadroP4000();
    rc.batch = 2;
    rc.sampleIterations = 4;
    rc.lengthCv = 0.3;
    tp::PerfSimulator sim;
    auto a = sim.run(rc);
    auto b = sim.run(rc);
    EXPECT_DOUBLE_EQ(a.throughputUnits, b.throughputUnits);
    rc.lengthSeed = 7;
    auto c = sim.run(rc);
    EXPECT_NE(a.throughputUnits, c.throughputUnits);
}

TEST(Simulator, FixedShapeModelsIgnoreLengthCv)
{
    tp::RunConfig rc;
    rc.model = &md::resnet50(); // no describeScaled
    rc.framework = tf::FrameworkId::MXNet;
    rc.gpu = tg::quadroP4000();
    rc.batch = 8;
    tp::PerfSimulator sim;
    auto plain = sim.run(rc);
    rc.lengthCv = 0.5;
    auto jittered = sim.run(rc);
    EXPECT_DOUBLE_EQ(plain.throughputSamples,
                     jittered.throughputSamples);
}

TEST(Simulator, AudioSecondsScaleWithSampledLengths)
{
    // Throughput in audio seconds must reflect the *sampled* durations,
    // not the nominal mean (the paper's Sec. 3.4.3 definition).
    tp::RunConfig rc;
    rc.model = &md::deepSpeech2();
    rc.framework = tf::FrameworkId::MXNet;
    rc.gpu = tg::quadroP4000();
    rc.batch = 2;
    rc.sampleIterations = 6;
    rc.lengthCv = 0.3;
    tp::PerfSimulator sim;
    auto r = sim.run(rc);
    // samples/s * 12.6 would be the nominal conversion; the scaled one
    // must differ because the mean sampled scale != 1 exactly.
    EXPECT_NE(r.throughputUnits, r.throughputSamples * 12.6);
    EXPECT_GT(r.throughputUnits, 0.0);
}
