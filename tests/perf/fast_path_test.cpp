/**
 * @file
 * The fast-path contract: with the lowering cache, trace limiting and
 * steady-state replay enabled (the default), every simulated number is
 * BITWISE-identical to the slow path (TBD_NOCACHE=1). These tests A/B
 * the two modes in-process via setFastPathsEnabled and compare every
 * RunResult field with exact equality — no tolerances anywhere.
 */

#include "perf/lowering_cache.h"

#include <gtest/gtest.h>

#include <optional>

#include "models/model_desc.h"
#include "obs/obs.h"
#include "perf/simulator.h"
#include "util/logging.h"

namespace tp = tbd::perf;
namespace md = tbd::models;
namespace tf = tbd::frameworks;
namespace tg = tbd::gpusim;

namespace {

/** Restores the environment-driven gating when a test exits. */
struct FastPathGuard
{
    explicit FastPathGuard(bool enabled)
    {
        tp::setFastPathsEnabled(enabled);
    }
    ~FastPathGuard() { tp::setFastPathsEnabled(std::nullopt); }
};

std::optional<tp::RunResult>
runWith(bool fast, const md::ModelDesc &model, tf::FrameworkId fw,
        std::int64_t batch, double lengthCv = 0.0)
{
    FastPathGuard guard(fast);
    tp::RunConfig rc;
    rc.model = &model;
    rc.framework = fw;
    rc.gpu = tg::quadroP4000();
    rc.batch = batch;
    rc.lengthCv = lengthCv;
    try {
        return tp::PerfSimulator().run(rc);
    } catch (const tbd::util::FatalError &) {
        return std::nullopt; // OOM cell: fine, as long as both modes agree
    }
}

void
expectBitwiseEqual(const tp::RunResult &slow, const tp::RunResult &fast)
{
    EXPECT_EQ(slow.modelName, fast.modelName);
    EXPECT_EQ(slow.frameworkName, fast.frameworkName);
    EXPECT_EQ(slow.gpuName, fast.gpuName);
    EXPECT_EQ(slow.batch, fast.batch);

    // Exact double equality on purpose: the fast path performs the
    // same floating-point operations, not merely close ones.
    EXPECT_EQ(slow.iterationUs, fast.iterationUs);
    EXPECT_EQ(slow.throughputSamples, fast.throughputSamples);
    EXPECT_EQ(slow.throughputUnits, fast.throughputUnits);
    EXPECT_EQ(slow.gpuUtilization, fast.gpuUtilization);
    EXPECT_EQ(slow.fp32Utilization, fast.fp32Utilization);
    EXPECT_EQ(slow.cpuUtilization, fast.cpuUtilization);
    EXPECT_EQ(slow.kernelsPerIteration, fast.kernelsPerIteration);

    EXPECT_EQ(slow.memory.peakBytes, fast.memory.peakBytes);

    EXPECT_EQ(slow.warmupIterationUs, fast.warmupIterationUs);
    EXPECT_EQ(slow.sampleIterationUs, fast.sampleIterationUs);

    ASSERT_EQ(slow.kernelTrace.size(), fast.kernelTrace.size());
    for (std::size_t i = 0; i < slow.kernelTrace.size(); ++i) {
        const auto &s = slow.kernelTrace[i];
        const auto &f = fast.kernelTrace[i];
        EXPECT_EQ(s.name.id(), f.name.id()) << "trace entry " << i;
        EXPECT_EQ(s.category, f.category) << "trace entry " << i;
        EXPECT_EQ(s.startUs, f.startUs) << "trace entry " << i;
        EXPECT_EQ(s.durationUs, f.durationUs) << "trace entry " << i;
        EXPECT_EQ(s.flops, f.flops) << "trace entry " << i;
        EXPECT_EQ(s.fp32Util, f.fp32Util) << "trace entry " << i;
        EXPECT_EQ(s.limiter, f.limiter) << "trace entry " << i;
    }
}

} // namespace

TEST(FastPath, BitwiseIdenticalAcrossAllWorkloadsAndFrameworks)
{
    for (const md::ModelDesc *model : md::allModels()) {
        for (tf::FrameworkId fw : tf::allFrameworks()) {
            if (!model->supports(fw))
                continue;
            ASSERT_FALSE(model->batchSweep.empty()) << model->name;
            const std::int64_t batch = model->batchSweep.front();
            SCOPED_TRACE(model->name + " on " +
                         tf::frameworkName(fw) + " b" +
                         std::to_string(batch));
            const auto slow = runWith(false, *model, fw, batch);
            const auto fast = runWith(true, *model, fw, batch);
            ASSERT_EQ(slow.has_value(), fast.has_value());
            if (slow)
                expectBitwiseEqual(*slow, *fast);
        }
    }
}

TEST(FastPath, BitwiseIdenticalWithLengthSampling)
{
    // Deep Speech 2 exercises the lengthCv path: every sampled
    // iteration lowers a differently-scaled workload, replay almost
    // never fires, and the kernel trace spans iteration boundaries.
    const auto &model = md::deepSpeech2();
    ASSERT_TRUE(static_cast<bool>(model.describeScaled));
    const auto slow = runWith(false, model, tf::FrameworkId::MXNet,
                              model.batchSweep.front(), 0.35);
    const auto fast = runWith(true, model, tf::FrameworkId::MXNet,
                              model.batchSweep.front(), 0.35);
    ASSERT_TRUE(slow.has_value());
    ASSERT_TRUE(fast.has_value());
    expectBitwiseEqual(*slow, *fast);
}

TEST(FastPath, CacheIsSharedAcrossRuns)
{
    auto &cache = tp::LoweringCache::global();
    cache.clear();
    FastPathGuard guard(true);

    ASSERT_TRUE(runWith(true, md::resnet50(), tf::FrameworkId::MXNet, 8)
                    .has_value());
    const auto first = cache.stats();
    EXPECT_GT(first.misses, 0);

    ASSERT_TRUE(runWith(true, md::resnet50(), tf::FrameworkId::MXNet, 8)
                    .has_value());
    const auto second = cache.stats();
    EXPECT_EQ(second.misses, first.misses); // everything reused
    EXPECT_GT(second.hits, first.hits);
    EXPECT_EQ(second.entries, first.entries);
}

TEST(FastPath, ReplayCountersDistinguishSteadyAndVariedRuns)
{
    FastPathGuard guard(true);
    tbd::obs::setEnabled(true);
    auto &registry = tbd::obs::MetricsRegistry::global();

    const auto counterValue = [&registry](const char *name) {
        for (const auto &m : registry.snapshot())
            if (m.name == name)
                return static_cast<std::int64_t>(m.value);
        return std::int64_t{0};
    };

    // Fixed-shape model: after one full pass per phase, every later
    // iteration replays.
    tbd::obs::resetAll();
    ASSERT_TRUE(runWith(true, md::resnet50(), tf::FrameworkId::MXNet, 8)
                    .has_value());
    EXPECT_GT(counterValue("gpusim.replay.hit"), 0);
    EXPECT_GE(counterValue("gpusim.replay.fallback"), 2);

    // Length-sampled model: the varied iterations fingerprint
    // differently, so the sampling phase falls back every time.
    tbd::obs::resetAll();
    ASSERT_TRUE(runWith(true, md::deepSpeech2(), tf::FrameworkId::MXNet,
                        md::deepSpeech2().batchSweep.front(), 0.35)
                    .has_value());
    EXPECT_GE(counterValue("gpusim.replay.fallback"), 10);

    tbd::obs::setEnabled(false);
}

TEST(FastPath, OverrideControlsGating)
{
    tp::setFastPathsEnabled(false);
    EXPECT_FALSE(tp::fastPathsEnabled());
    tp::setFastPathsEnabled(true);
    EXPECT_TRUE(tp::fastPathsEnabled());
    tp::setFastPathsEnabled(std::nullopt);
}
