#include <gtest/gtest.h>

#include "perf/memory_model.h"
#include "util/logging.h"

namespace tp = tbd::perf;
namespace md = tbd::models;
namespace tf = tbd::frameworks;
namespace mp = tbd::memprof;

namespace {

mp::MemoryBreakdown
breakdown(const md::ModelDesc &m, std::int64_t batch,
          tp::MemoryOptimization opt)
{
    return tp::simulateIterationMemory(m, m.describe(batch),
                                       tf::profileFor(
                                           m.frameworks.front()),
                                       tp::OptimizerSpec{}, 0, opt);
}

} // namespace

TEST(Offload, ShrinksFeatureMapFootprint)
{
    for (const auto *m : md::allModels()) {
        const auto base = breakdown(*m, m->batchSweep.back(),
                                    tp::MemoryOptimization::None);
        const auto off =
            breakdown(*m, m->batchSweep.back(),
                      tp::MemoryOptimization::OffloadFeatureMaps);
        EXPECT_LE(off.of(mp::MemCategory::FeatureMaps),
                  base.of(mp::MemCategory::FeatureMaps))
            << m->name;
        // Weights/gradients are untouched by the policy.
        EXPECT_EQ(off.of(mp::MemCategory::Weights),
                  base.of(mp::MemCategory::Weights));
        EXPECT_EQ(off.of(mp::MemCategory::WeightGradients),
                  base.of(mp::MemCategory::WeightGradients));
    }
}

TEST(Offload, DeepModelsShrinkALot)
{
    // ResNet-50 stashes ~160 op outputs; keeping a 2-op window must
    // remove the bulk of the footprint (the vDNN result).
    const auto &m = md::resnet50();
    const auto base =
        breakdown(m, 32, tp::MemoryOptimization::None).total();
    const auto off =
        breakdown(m, 32, tp::MemoryOptimization::OffloadFeatureMaps)
            .total();
    EXPECT_LT(static_cast<double>(off), 0.45 * static_cast<double>(base));
}

TEST(Offload, RaisesBatchCeilings)
{
    const auto cap = 8ull << 30;
    for (const auto *m : {&md::resnet50(), &md::sockeye(),
                          &md::deepSpeech2()}) {
        const auto &fw = tf::profileFor(m->frameworks.front());
        const auto base = tp::maxFeasibleBatch(*m, fw, cap);
        const auto off = tp::maxFeasibleBatch(
            *m, fw, cap, tp::MemoryOptimization::OffloadFeatureMaps);
        EXPECT_GT(off, base) << m->name;
    }
}

TEST(Offload, TrafficCoversFeatureMapsTwice)
{
    const auto &m = md::sockeye();
    const auto &fw = tf::profileFor(m.frameworks.front());
    const auto workload = m.describe(64);
    const auto cost = tp::offloadCost(m, workload, fw);
    // Traffic must be about 2x the baseline feature-map footprint.
    const auto base = tp::simulateIterationMemory(
        m, workload, fw, tp::OptimizerSpec{}, 0);
    const double fm =
        static_cast<double>(base.of(mp::MemCategory::FeatureMaps));
    EXPECT_GT(static_cast<double>(cost.trafficBytes), 1.8 * fm);
    EXPECT_LT(static_cast<double>(cost.trafficBytes), 2.3 * fm);
    EXPECT_GT(cost.transferUs, 0.0);
}

TEST(Offload, CapacityStillEnforced)
{
    // Offload raises the wall but cannot abolish it.
    const auto &m = md::sockeye();
    const auto &fw = tf::profileFor(m.frameworks.front());
    EXPECT_THROW(tp::simulateIterationMemory(
                     m, m.describe(1024), fw, tp::OptimizerSpec{},
                     8ull << 30,
                     tp::MemoryOptimization::OffloadFeatureMaps),
                 tbd::util::FatalError);
}
