#include "perf/memory_model.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace tp = tbd::perf;
namespace md = tbd::models;
namespace tf = tbd::frameworks;
namespace mp = tbd::memprof;

namespace {

mp::MemoryBreakdown
breakdownFor(const md::ModelDesc &model, const tf::FrameworkProfile &fw,
             std::int64_t batch, std::uint64_t capacity = 0)
{
    return tp::simulateIterationMemory(model, model.describe(batch), fw,
                                       tp::OptimizerSpec{}, capacity);
}

constexpr std::uint64_t kGiB8 = 8ull << 30;

} // namespace

TEST(MemoryModel, FeatureMapsDominate)
{
    // Observation 11: feature maps consume 62-89% of the footprint.
    for (const auto *m : md::allModels()) {
        const auto fw_id = m->frameworks.front();
        auto b = breakdownFor(*m, tf::profileFor(fw_id),
                              m->batchSweep.back());
        EXPECT_GT(b.fraction(mp::MemCategory::FeatureMaps), 0.45)
            << m->name;
    }
}

TEST(MemoryModel, FeatureMapsScaleLinearlyWithBatch)
{
    // Observation 12 premise.
    const auto &m = md::resnet50();
    auto b8 = breakdownFor(m, tf::mxnet(), 8);
    auto b32 = breakdownFor(m, tf::mxnet(), 32);
    const double ratio =
        static_cast<double>(b32.of(mp::MemCategory::FeatureMaps)) /
        static_cast<double>(b8.of(mp::MemCategory::FeatureMaps));
    EXPECT_NEAR(ratio, 4.0, 0.2);
    // Weights do not scale with batch.
    EXPECT_EQ(b8.of(mp::MemCategory::Weights),
              b32.of(mp::MemCategory::Weights));
}

TEST(MemoryModel, MxnetDynamicCategoryHoldsOptimizerState)
{
    const auto &m = md::resnet50();
    auto mx = breakdownFor(m, tf::mxnet(), 16);
    auto tfb = breakdownFor(m, tf::tensorflow(), 16);
    EXPECT_GT(mx.of(mp::MemCategory::Dynamic), 0u);
    EXPECT_EQ(tfb.of(mp::MemCategory::Dynamic), 0u);
    // The slots equal the parameter bytes for SGD momentum.
    EXPECT_EQ(mx.of(mp::MemCategory::Dynamic),
              mx.of(mp::MemCategory::WeightGradients));
}

TEST(MemoryModel, WeightsAndGradientsMatchParamCount)
{
    const auto &m = md::resnet50();
    const auto params = m.describe(8).totalParams();
    auto b = breakdownFor(m, tf::mxnet(), 8);
    EXPECT_EQ(b.of(mp::MemCategory::WeightGradients),
              static_cast<std::uint64_t>(params) * 4);
}

TEST(MemoryModel, WorkspaceBoundedByFrameworkBudget)
{
    const auto &m = md::resnet50();
    auto b = breakdownFor(m, tf::mxnet(), 32);
    EXPECT_LE(b.of(mp::MemCategory::Workspace),
              static_cast<std::uint64_t>(tf::mxnet().workspaceCapBytes));
    EXPECT_GT(b.of(mp::MemCategory::Workspace), 0u);
}

TEST(MemoryModel, PaperBatchCeilings)
{
    // The memory wall the paper reports on the 8 GiB P4000:
    // NMT/TensorFlow trains at batch 128; Sockeye/MXNet stops at 64.
    EXPECT_NO_THROW(
        breakdownFor(md::seq2seqNmt(), tf::tensorflow(), 128, kGiB8));
    EXPECT_NO_THROW(breakdownFor(md::sockeye(), tf::mxnet(), 64, kGiB8));
    EXPECT_THROW(breakdownFor(md::sockeye(), tf::mxnet(), 128, kGiB8),
                 tbd::util::FatalError);
}

TEST(MemoryModel, MaxFeasibleBatchMatchesPaperSweeps)
{
    EXPECT_EQ(tp::maxFeasibleBatch(md::seq2seqNmt(), tf::tensorflow(),
                                   kGiB8),
              128);
    EXPECT_EQ(tp::maxFeasibleBatch(md::sockeye(), tf::mxnet(), kGiB8),
              64);
    // ResNet-50 trains at batch 64 on all frameworks (Fig. 4a).
    EXPECT_GE(tp::maxFeasibleBatch(md::resnet50(), tf::mxnet(), kGiB8),
              64);
    // Deep Speech 2 is memory-capped at tiny batches (Fig. 4f/9d).
    EXPECT_LE(tp::maxFeasibleBatch(md::deepSpeech2(), tf::mxnet(), kGiB8),
              8);
}

TEST(MemoryModel, LargerGpuRaisesTheCeiling)
{
    const auto small = tp::maxFeasibleBatch(md::sockeye(), tf::mxnet(),
                                            8ull << 30);
    const auto large = tp::maxFeasibleBatch(md::sockeye(), tf::mxnet(),
                                            16ull << 30);
    EXPECT_GT(large, small);
}

TEST(MemoryModel, TfPacksSeq2SeqTighterThanMxnet)
{
    auto tfb = breakdownFor(md::seq2seqNmt(), tf::tensorflow(), 64);
    auto mxb = breakdownFor(md::sockeye(), tf::mxnet(), 64);
    EXPECT_LT(tfb.total(), mxb.total());
}

TEST(InferenceMemory, WeightsDominateAndFootprintIsSmall)
{
    // The paper's Section 1 contrast: inference memory is dominated by
    // the weights and is far below the training footprint.
    for (const auto *m : {&md::resnet50(), &md::sockeye(),
                          &md::wgan()}) {
        const auto &fw = tf::profileFor(m->frameworks.front());
        const auto workload = m->describe(m->batchSweep.back());
        const auto train = tp::simulateIterationMemory(
            *m, workload, fw, tp::OptimizerSpec{}, 0);
        const auto infer =
            tp::simulateInferenceMemory(*m, workload, fw);
        EXPECT_LT(infer.total(), train.total() / 4) << m->name;
        EXPECT_GT(infer.fraction(mp::MemCategory::Weights),
                  train.fraction(mp::MemCategory::Weights))
            << m->name;
        EXPECT_EQ(infer.of(mp::MemCategory::WeightGradients), 0u);
        EXPECT_EQ(infer.of(mp::MemCategory::Dynamic), 0u);
    }
}

TEST(InferenceMemory, BatchOneFitsInHundredsOfMegabytes)
{
    const auto &m = md::resnet50();
    const auto infer = tp::simulateInferenceMemory(
        m, m.describe(1), tf::profileFor(m.frameworks.front()));
    // Weights ~98 MiB + a small activation window.
    EXPECT_LT(infer.total(), 200ull << 20);
}
