#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/logging.h"

namespace tj = tbd::util::json;
using tbd::util::FatalError;

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(tj::Value::parse("null").isNull());
    EXPECT_TRUE(tj::Value::parse("true").asBool());
    EXPECT_FALSE(tj::Value::parse("false").asBool());
    EXPECT_DOUBLE_EQ(tj::Value::parse("-2.5e3").asDouble(), -2500.0);
    EXPECT_EQ(tj::Value::parse("\"hi\\nthere\"").asString(),
              "hi\nthere");
}

TEST(Json, ParsesNestedDocument)
{
    const auto doc = tj::Value::parse(
        "{\"a\": [1, 2, {\"b\": true}], \"c\": \"x\"}");
    EXPECT_EQ(doc.size(), 2u);
    EXPECT_EQ(doc.at("a").size(), 3u);
    EXPECT_EQ(doc.at("a").at(1).asInt(), 2);
    EXPECT_TRUE(doc.at("a").at(2).at("b").asBool());
    EXPECT_EQ(doc.at("c").asString(), "x");
    EXPECT_TRUE(doc.has("a"));
    EXPECT_FALSE(doc.has("z"));
}

TEST(Json, ParsesUnicodeEscapes)
{
    EXPECT_EQ(tj::Value::parse("\"\\u0041\\u00e9\"").asString(),
              "A\xc3\xa9");
}

TEST(Json, DumpParseRoundTripsExactDoubles)
{
    // 17 significant digits round-trip any IEEE double bit-exactly.
    const double values[] = {0.1, 1.0 / 3.0, 83129.078087519971,
                             6.02214076e23, -0.0};
    for (double v : values) {
        tj::Value num(v);
        const auto reparsed = tj::Value::parse(num.dump());
        EXPECT_EQ(reparsed.asDouble(), v) << num.dump();
    }
}

TEST(Json, IntegralNumbersPrintWithoutFraction)
{
    EXPECT_EQ(tj::Value(std::int64_t{514}).dump(), "514");
    EXPECT_EQ(tj::Value(std::uint64_t{737684374}).dump(), "737684374");
}

TEST(Json, ObjectsPreserveInsertionOrder)
{
    auto obj = tj::Value::object();
    obj.set("z", tj::Value(std::int64_t{1}));
    obj.set("a", tj::Value(std::int64_t{2}));
    EXPECT_EQ(obj.members()[0].first, "z");
    EXPECT_EQ(obj.members()[1].first, "a");
    EXPECT_EQ(obj.dump(), "{\"z\":1,\"a\":2}");

    obj.set("z", tj::Value(std::int64_t{3})); // overwrite keeps order
    EXPECT_EQ(obj.size(), 2u);
    EXPECT_EQ(obj.at("z").asInt(), 3);
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_THROW(tj::Value::parse(""), FatalError);
    EXPECT_THROW(tj::Value::parse("{\"a\": }"), FatalError);
    EXPECT_THROW(tj::Value::parse("[1, 2"), FatalError);
    EXPECT_THROW(tj::Value::parse("123 trailing"), FatalError);
    EXPECT_THROW(tj::Value::parse("\"unterminated"), FatalError);
}

TEST(Json, TypeMismatchesAreFatal)
{
    const auto doc = tj::Value::parse("{\"a\": 1.5}");
    EXPECT_THROW(doc.at("a").asString(), FatalError);
    EXPECT_THROW(doc.at("a").asInt(), FatalError); // not integral
    EXPECT_THROW(doc.at("missing"), FatalError);
    EXPECT_THROW(tj::Value::parse("-1").asUint(), FatalError);
}
