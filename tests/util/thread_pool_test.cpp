#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace tu = tbd::util;

namespace {

// Collects the chunk boundaries a parallelFor produced, order-free.
std::set<std::pair<std::int64_t, std::int64_t>>
chunksOf(tu::ThreadPool &pool, std::int64_t begin, std::int64_t end,
         std::int64_t grain)
{
    std::mutex m;
    std::set<std::pair<std::int64_t, std::int64_t>> chunks;
    pool.parallelFor(begin, end, grain,
                     [&](std::int64_t b, std::int64_t e) {
                         std::lock_guard<std::mutex> lock(m);
                         chunks.emplace(b, e);
                     });
    return chunks;
}

} // namespace

TEST(ThreadPool, SerialPoolHasNoWorkers)
{
    tu::ThreadPool p0(0), p1(1), p4(4);
    EXPECT_EQ(p0.threadCount(), 0u);
    EXPECT_EQ(p1.threadCount(), 0u);
    EXPECT_EQ(p4.threadCount(), 4u);
}

TEST(ThreadPool, CoversRangeExactlyOnce)
{
    tu::ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(100);
    pool.parallelFor(0, 100, 7, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i)
            hits[static_cast<std::size_t>(i)]++;
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkBoundariesDependOnlyOnGrain)
{
    // The same (begin, end, grain) must produce the same chunk set for
    // every thread count — the root of the determinism guarantee.
    tu::ThreadPool serial(1), two(2), eight(8);
    const auto ref = chunksOf(serial, 3, 50, 8);
    EXPECT_EQ(chunksOf(two, 3, 50, 8), ref);
    EXPECT_EQ(chunksOf(eight, 3, 50, 8), ref);
    // And the boundaries are the expected arithmetic ones.
    std::set<std::pair<std::int64_t, std::int64_t>> expect = {
        {3, 11}, {11, 19}, {19, 27}, {27, 35}, {35, 43}, {43, 50}};
    EXPECT_EQ(ref, expect);
}

TEST(ThreadPool, GrainLargerThanRangeIsOneChunk)
{
    tu::ThreadPool pool(4);
    const auto chunks = chunksOf(pool, 0, 5, 100);
    ASSERT_EQ(chunks.size(), 1u);
    const std::pair<std::int64_t, std::int64_t> whole{0, 5};
    EXPECT_EQ(*chunks.begin(), whole);
}

TEST(ThreadPool, EmptyRangeRunsNothing)
{
    tu::ThreadPool pool(4);
    EXPECT_TRUE(chunksOf(pool, 10, 10, 1).empty());
    EXPECT_TRUE(chunksOf(pool, 10, 5, 1).empty());
}

TEST(ThreadPool, NonPositiveGrainIsFatal)
{
    tu::ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(0, 10, 0, [](std::int64_t,
                                               std::int64_t) {}),
                 tu::FatalError);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    tu::ThreadPool pool(4);
    std::atomic<std::int64_t> sum{0};
    pool.parallelFor(0, 8, 1, [&](std::int64_t ob, std::int64_t oe) {
        for (std::int64_t o = ob; o < oe; ++o) {
            // Nested call from a worker must not deadlock and must
            // still cover its whole range.
            pool.parallelFor(0, 10, 3,
                             [&](std::int64_t b, std::int64_t e) {
                                 sum += e - b;
                             });
        }
    });
    EXPECT_EQ(sum.load(), 80);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    tu::ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 100, 1,
                         [](std::int64_t b, std::int64_t) {
                             if (b == 37)
                                 throw std::runtime_error("chunk 37");
                         }),
        std::runtime_error);
    // The pool survives a throwing batch.
    std::atomic<int> count{0};
    pool.parallelFor(0, 10, 1,
                     [&](std::int64_t, std::int64_t) { count++; });
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ScopeOverridesCurrentAndRestores)
{
    tu::ThreadPool pool(3);
    EXPECT_NE(&tu::ThreadPool::current(), &pool);
    {
        tu::ThreadPool::Scope scope(pool);
        EXPECT_EQ(&tu::ThreadPool::current(), &pool);
        {
            tu::ThreadPool inner(2);
            tu::ThreadPool::Scope nested(inner);
            EXPECT_EQ(&tu::ThreadPool::current(), &inner);
        }
        EXPECT_EQ(&tu::ThreadPool::current(), &pool);
    }
    EXPECT_EQ(&tu::ThreadPool::current(), &tu::ThreadPool::global());
}

TEST(ThreadPool, FreeParallelForUsesCurrentPool)
{
    tu::ThreadPool pool(2);
    tu::ThreadPool::Scope scope(pool);
    std::atomic<int> count{0};
    tu::parallelFor(0, 6, 2,
                    [&](std::int64_t, std::int64_t) { count++; });
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ThreadCountFromEnvParsesStrictly)
{
    EXPECT_EQ(tu::threadCountFromEnv("3"), 3u);
    EXPECT_EQ(tu::threadCountFromEnv("16"), 16u);
    const std::size_t fallback = tu::threadCountFromEnv(nullptr);
    EXPECT_GE(fallback, 1u);
    EXPECT_EQ(tu::threadCountFromEnv(""), fallback);
    EXPECT_EQ(tu::threadCountFromEnv("0"), fallback);
    EXPECT_EQ(tu::threadCountFromEnv("-4"), fallback);
    EXPECT_EQ(tu::threadCountFromEnv("abc"), fallback);
    EXPECT_EQ(tu::threadCountFromEnv("2x"), fallback);
}

TEST(ThreadPool, ManySmallBatchesDrainCleanly)
{
    tu::ThreadPool pool(4);
    std::int64_t total = 0;
    for (int round = 0; round < 200; ++round) {
        std::atomic<std::int64_t> sum{0};
        pool.parallelFor(0, 16, 1, [&](std::int64_t b, std::int64_t e) {
            sum += e - b;
        });
        total += sum.load();
    }
    EXPECT_EQ(total, 200 * 16);
}

TEST(ThreadPool, PostRunsFireAndForgetTasks)
{
    tu::ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(pool.post([&] { ran.fetch_add(1); }));
    pool.stop(); // drains the queue before the workers exit
    EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, PostOnSerialPoolRunsInline)
{
    tu::ThreadPool pool(0);
    bool ran = false;
    EXPECT_TRUE(pool.post([&] { ran = true; }));
    EXPECT_TRUE(ran); // no workers: ran on this thread, synchronously
}

TEST(ThreadPool, PostAfterStopRejectsCleanly)
{
    // Regression: enqueue-after-stop used to be undefined during
    // destruction ordering. It must reject — task neither run nor
    // retained — and never deadlock or crash.
    tu::ThreadPool pool(2);
    pool.stop();
    bool ran = false;
    EXPECT_FALSE(pool.post([&] { ran = true; }));
    EXPECT_FALSE(ran);
    // Serial pools reject after stop too (no silent inline run).
    tu::ThreadPool serial(0);
    serial.stop();
    EXPECT_FALSE(serial.post([&] { ran = true; }));
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, StopIsIdempotentAndDestructorSafe)
{
    tu::ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
        pool.post([&] { ran.fetch_add(1); });
    pool.stop();
    pool.stop(); // second stop: no double join, no hang
    EXPECT_EQ(ran.load(), 8);
    // Destructor after explicit stop must also be a no-op.
}

TEST(ThreadPool, PostedTasksCountAsInTask)
{
    // A parallelFor inside a posted task must run inline (the nested
    // rule), exactly as it does inside a parallelFor chunk.
    tu::ThreadPool pool(2);
    std::atomic<bool> nested_inline{false};
    std::atomic<bool> done{false};
    pool.post([&] {
        const auto outer = std::this_thread::get_id();
        pool.parallelFor(0, 4, 1,
                         [&](std::int64_t, std::int64_t) {
                             if (std::this_thread::get_id() == outer)
                                 nested_inline.store(true);
                         });
        done.store(true);
    });
    pool.stop();
    EXPECT_TRUE(done.load());
    EXPECT_TRUE(nested_inline.load());
}
