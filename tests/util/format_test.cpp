#include "util/format.h"

#include <gtest/gtest.h>

namespace tu = tbd::util;

TEST(Format, Bytes)
{
    EXPECT_EQ(tu::formatBytes(512), "512 B");
    EXPECT_EQ(tu::formatBytes(2048), "2.00 KiB");
    EXPECT_EQ(tu::formatBytes(3ull << 30), "3.00 GiB");
}

TEST(Format, Si)
{
    EXPECT_EQ(tu::formatSi(999), "999");
    EXPECT_EQ(tu::formatSi(1500), "1.50 K");
    EXPECT_EQ(tu::formatSi(7.72e9), "7.72 G");
}

TEST(Format, Duration)
{
    EXPECT_EQ(tu::formatDuration(2.5), "2.50 s");
    EXPECT_EQ(tu::formatDuration(0.0142), "14.20 ms");
    EXPECT_EQ(tu::formatDuration(5.5e-6), "5.50 us");
    EXPECT_EQ(tu::formatDuration(3e-9), "3.0 ns");
}

TEST(Format, Percent)
{
    EXPECT_EQ(tu::formatPercent(0.873), "87.3%");
    EXPECT_EQ(tu::formatPercent(0.05, 2), "5.00%");
}

TEST(Format, Fixed)
{
    EXPECT_EQ(tu::formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(tu::formatFixed(-1.0, 0), "-1");
}
