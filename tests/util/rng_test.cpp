#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace tu = tbd::util;

namespace {

/** FNV-1a over the little-endian bytes of a u64 stream. */
std::uint64_t
fnv1a(tu::Rng &rng, int draws)
{
    std::uint64_t hash = 1469598103934665603ull;
    for (int i = 0; i < draws; ++i) {
        const std::uint64_t v = rng.nextU64();
        for (int b = 0; b < 8; ++b) {
            hash ^= (v >> (8 * b)) & 0xffu;
            hash *= 1099511628211ull;
        }
    }
    return hash;
}

/** Bit pattern of a double, for bitwise stream comparisons. */
std::uint64_t
bits(double d)
{
    std::uint64_t u;
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

} // namespace

TEST(Rng, SameSeedSameStream)
{
    tu::Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    tu::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    tu::Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    tu::Rng rng(11);
    double acc = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        acc += rng.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    tu::Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        saw_lo |= v == 2;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntRejectsEmptyRange)
{
    tu::Rng rng(1);
    EXPECT_THROW(rng.uniformInt(5, 2), tu::FatalError);
}

TEST(Rng, NormalMomentsMatch)
{
    tu::Rng rng(42);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(3.0, 2.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, TruncatedNormalRespectsBounds)
{
    tu::Rng rng(5);
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.truncatedNormal(10.0, 5.0, 8.0, 12.0);
        EXPECT_GE(x, 8.0);
        EXPECT_LE(x, 12.0);
    }
}

// Seed-stability goldens: these exact values pin the xoshiro256++ +
// SplitMix64 streams across compilers, platforms and refactors. All of
// them are integer-derived (nextU64 and the uniform() bit pattern use
// exact arithmetic only), so they are portable, unlike normal(), which
// goes through libm.
TEST(Rng, GoldenU64Stream)
{
    tu::Rng rng(42);
    EXPECT_EQ(rng.nextU64(), 0xd0764d4f4476689full);
    EXPECT_EQ(rng.nextU64(), 0x519e4174576f3791ull);
    EXPECT_EQ(rng.nextU64(), 0xfbe07cfb0c24ed8cull);
    EXPECT_EQ(rng.nextU64(), 0xb37d9f600cd835b8ull);
}

TEST(Rng, GoldenStreamHash)
{
    tu::Rng rng(12345);
    EXPECT_EQ(fnv1a(rng, 256), 0x1f197ee56943a7b9ull);
}

TEST(Rng, GoldenUniformBitPatterns)
{
    tu::Rng rng(7);
    EXPECT_EQ(bits(rng.uniform()), 0x3fac583400555d20ull);
    EXPECT_EQ(bits(rng.uniform()), 0x3fc607e46efd274cull);
    EXPECT_EQ(bits(rng.uniform()), 0x3fe6f66236761a8bull);
}

TEST(Rng, StreamUnaffectedByThreadPoolActivity)
{
    // A stream drawn while the process-wide pool (sized by TBD_THREADS)
    // hammers sibling generators must equal one drawn in isolation:
    // Rng state is strictly per-instance.
    std::vector<std::uint64_t> quiet;
    {
        tu::Rng rng(2024);
        for (int i = 0; i < 64; ++i)
            quiet.push_back(rng.nextU64());
    }

    std::vector<std::uint64_t> noisy;
    tu::Rng rng(2024);
    for (int i = 0; i < 64; ++i) {
        tu::parallelFor(0, 16, 1, [](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t j = lo; j < hi; ++j) {
                tu::Rng sibling(static_cast<std::uint64_t>(j) + 1);
                volatile std::uint64_t sink = 0;
                for (int k = 0; k < 100; ++k)
                    sink = sibling.nextU64();
                (void)sink;
            }
        });
        noisy.push_back(rng.nextU64());
    }
    EXPECT_EQ(quiet, noisy);
}

TEST(Rng, ForkProducesIndependentStream)
{
    tu::Rng parent(9);
    tu::Rng child = parent.fork();
    // Child stream should not track parent stream.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent.nextU64() == child.nextU64();
    EXPECT_LT(same, 2);
}
