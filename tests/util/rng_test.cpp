#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/logging.h"

namespace tu = tbd::util;

TEST(Rng, SameSeedSameStream)
{
    tu::Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    tu::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    tu::Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    tu::Rng rng(11);
    double acc = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        acc += rng.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    tu::Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        saw_lo |= v == 2;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntRejectsEmptyRange)
{
    tu::Rng rng(1);
    EXPECT_THROW(rng.uniformInt(5, 2), tu::FatalError);
}

TEST(Rng, NormalMomentsMatch)
{
    tu::Rng rng(42);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(3.0, 2.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, TruncatedNormalRespectsBounds)
{
    tu::Rng rng(5);
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.truncatedNormal(10.0, 5.0, 8.0, 12.0);
        EXPECT_GE(x, 8.0);
        EXPECT_LE(x, 12.0);
    }
}

TEST(Rng, ForkProducesIndependentStream)
{
    tu::Rng parent(9);
    tu::Rng child = parent.fork();
    // Child stream should not track parent stream.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent.nextU64() == child.nextU64();
    EXPECT_LT(same, 2);
}
