#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace tu = tbd::util;

TEST(RunningStat, EmptyIsZeroMean)
{
    tu::RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanAndVariance)
{
    tu::RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeMatchesSequential)
{
    tu::RunningStat a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = 0.37 * i - 3.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmptyIsNoop)
{
    tu::RunningStat a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(RunningStat, CvIsRelativeSpread)
{
    tu::RunningStat s;
    s.add(10.0);
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(Stats, MeanOfVector)
{
    EXPECT_DOUBLE_EQ(tu::mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(tu::mean({}), 0.0);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(tu::percentile(xs, 0), 10.0);
    EXPECT_DOUBLE_EQ(tu::percentile(xs, 100), 40.0);
    EXPECT_DOUBLE_EQ(tu::percentile(xs, 50), 25.0);
}

TEST(Stats, PercentileSingleElement)
{
    EXPECT_DOUBLE_EQ(tu::percentile({5.0}, 99), 5.0);
}

TEST(Stats, PercentileRejectsEmptyAndBadP)
{
    EXPECT_THROW(tu::percentile({}, 50), tu::FatalError);
    EXPECT_THROW(tu::percentile({1.0}, 101), tu::FatalError);
}

TEST(Stats, GeometricMean)
{
    EXPECT_NEAR(tu::geometricMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_THROW(tu::geometricMean({1.0, 0.0}), tu::FatalError);
}
