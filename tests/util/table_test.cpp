#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/logging.h"

namespace tu = tbd::util;

TEST(Table, AlignedOutputContainsCells)
{
    tu::Table t({"model", "throughput"});
    t.addRow({"ResNet-50", "89.0"});
    t.addRow({"Inception-v3", "61.0"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("model"), std::string::npos);
    EXPECT_NE(s.find("ResNet-50"), std::string::npos);
    EXPECT_NE(s.find("61.0"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, RejectsArityMismatch)
{
    tu::Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), tu::FatalError);
}

TEST(Table, RejectsZeroColumns)
{
    EXPECT_THROW(tu::Table t({}), tu::FatalError);
}

TEST(Table, CsvEscapesSpecials)
{
    tu::Table t({"name", "note"});
    t.addRow({"a,b", "say \"hi\""});
    std::ostringstream oss;
    t.printCsv(oss);
    const std::string s = oss.str();
    EXPECT_NE(s.find("\"a,b\""), std::string::npos);
    EXPECT_NE(s.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvHasHeaderRow)
{
    tu::Table t({"x", "y"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "x,y\n1,2\n");
}
