#include "util/logging.h"

#include <gtest/gtest.h>

namespace tu = tbd::util;

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(TBD_FATAL("bad config value ", 42), tu::FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(TBD_PANIC("invariant broken"), tu::PanicError);
}

TEST(Logging, FatalMessageContainsContext)
{
    try {
        TBD_FATAL("value is ", 7);
        FAIL() << "expected FatalError";
    } catch (const tu::FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("value is 7"), std::string::npos);
        EXPECT_NE(msg.find("logging_test.cpp"), std::string::npos);
    }
}

TEST(Logging, CheckPassesOnTrue)
{
    EXPECT_NO_THROW(TBD_CHECK(1 + 1 == 2, "math"));
}

TEST(Logging, CheckThrowsOnFalse)
{
    EXPECT_THROW(TBD_CHECK(false, "always"), tu::FatalError);
}

TEST(Logging, AssertThrowsPanic)
{
    EXPECT_THROW(TBD_ASSERT(false, "bug"), tu::PanicError);
}

TEST(Logging, LevelRoundTrips)
{
    const auto prev = tu::logLevel();
    tu::setLogLevel(tu::LogLevel::Debug);
    EXPECT_EQ(tu::logLevel(), tu::LogLevel::Debug);
    tu::setLogLevel(prev);
}

TEST(Logging, InformRespectsSilentLevel)
{
    const auto prev = tu::logLevel();
    tu::setLogLevel(tu::LogLevel::Silent);
    // Should not crash or emit; we only verify it is callable.
    tu::inform("hidden");
    tu::warn("hidden");
    tu::debug("hidden");
    tu::setLogLevel(prev);
}
