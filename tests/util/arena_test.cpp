#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

namespace tu = tbd::util;

namespace {

bool
aligned32(const float *p)
{
    return reinterpret_cast<std::uintptr_t>(p) % 32 == 0;
}

} // namespace

TEST(Arena, AllocAligns32AndPadsTo8Floats)
{
    tu::Arena arena;
    tu::Arena::Scope scope(arena);
    float *a = arena.alloc(3);
    float *b = arena.alloc(1);
    EXPECT_TRUE(aligned32(a));
    EXPECT_TRUE(aligned32(b));
    // 3 floats round up to one 8-float slot.
    EXPECT_EQ(b - a, 8);
    EXPECT_EQ(arena.liveFloats(), 16);
}

TEST(Arena, AllocZeroedZeroes)
{
    tu::Arena arena;
    tu::Arena::Scope scope(arena);
    float *p = nullptr;
    {
        tu::Arena::Scope inner(arena);
        p = arena.alloc(64);
        std::memset(p, 0xab, 64 * sizeof(float));
    }
    float *z = arena.allocZeroed(64);
    EXPECT_EQ(z, p); // the rolled-back slot is reused...
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(z[i], 0.0f); // ...and scrubbed on request
}

TEST(Arena, ScopeRestoresWatermarkLifo)
{
    tu::Arena arena;
    tu::Arena::Scope outer(arena);
    float *a = arena.alloc(8);
    {
        tu::Arena::Scope inner(arena);
        arena.alloc(8);
        arena.alloc(8);
        EXPECT_EQ(arena.liveFloats(), 24);
    }
    EXPECT_EQ(arena.liveFloats(), 8);
    // The next allocation reuses the rolled-back storage.
    float *b = arena.alloc(8);
    EXPECT_EQ(b - a, 8);
}

TEST(Arena, GrowsAcrossChunksAndRestores)
{
    tu::Arena arena;
    const std::size_t cap0 = arena.capacityBytes();
    {
        tu::Arena::Scope scope(arena);
        // First chunk is at least 64K floats; force a second chunk.
        float *a = arena.alloc(1 << 16);
        float *b = arena.alloc(1 << 17);
        ASSERT_NE(a, nullptr);
        ASSERT_NE(b, nullptr);
        a[0] = 1.0f;
        b[(1 << 17) - 1] = 2.0f;
        EXPECT_GT(arena.capacityBytes(), cap0);
        EXPECT_EQ(arena.liveFloats(), (1 << 16) + (1 << 17));
    }
    // Capacity is retained, the bump pointer is not.
    EXPECT_EQ(arena.liveFloats(), 0);
    EXPECT_GE(arena.capacityBytes(),
              std::size_t((1 << 16) + (1 << 17)) * sizeof(float));
}

TEST(Arena, OversizedRequestGetsDedicatedChunk)
{
    tu::Arena arena;
    tu::Arena::Scope scope(arena);
    const std::int64_t huge = (1 << 18) + 5;
    float *p = arena.alloc(huge);
    ASSERT_NE(p, nullptr);
    p[0] = 1.0f;
    p[huge - 1] = 2.0f;
    EXPECT_TRUE(aligned32(p));
}

TEST(Arena, CurrentIsStablePerThread)
{
    tu::Arena *a = &tu::Arena::current();
    tu::Arena *b = &tu::Arena::current();
    EXPECT_EQ(a, b);
}
