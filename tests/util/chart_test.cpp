#include "util/chart.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace tu = tbd::util;

TEST(Chart, ContainsMarkersAxisAndLegend)
{
    tu::ChartOptions opt;
    opt.xLabel = "batch";
    opt.yLabel = "samples/s";
    const std::string s = tu::asciiChart(
        {4, 8, 16, 32},
        {{"ResNet-50", {50, 60, 70, 80}}, {"NMT", {10, 20, 40, 80}}},
        opt);
    EXPECT_NE(s.find('*'), std::string::npos);
    EXPECT_NE(s.find('o'), std::string::npos);
    EXPECT_NE(s.find("ResNet-50"), std::string::npos);
    EXPECT_NE(s.find("NMT"), std::string::npos);
    EXPECT_NE(s.find("samples/s"), std::string::npos);
    EXPECT_NE(s.find("(batch)"), std::string::npos);
    EXPECT_NE(s.find('+'), std::string::npos); // axis corner
}

TEST(Chart, RisingSeriesRisesOnTheGrid)
{
    const std::string s =
        tu::asciiChart({1, 2, 3}, {{"up", {0.0, 5.0, 10.0}}});
    // The last point must appear above the first: find rows containing
    // the marker and check ordering.
    std::vector<std::string> lines;
    std::istringstream iss(s);
    std::string line;
    while (std::getline(iss, line))
        lines.push_back(line);
    int first_row = -1, last_row = -1;
    for (int r = 0; r < static_cast<int>(lines.size()); ++r) {
        const auto pos = lines[static_cast<std::size_t>(r)].find('*');
        if (pos == std::string::npos)
            continue;
        if (first_row < 0)
            first_row = r; // topmost marker = highest value
        last_row = r;
    }
    ASSERT_GE(first_row, 0);
    EXPECT_LT(first_row, last_row); // spans multiple rows
}

TEST(Chart, LogScaleAcceptsDoublingSweeps)
{
    tu::ChartOptions opt;
    opt.logX = true;
    EXPECT_NO_THROW(tu::asciiChart({4, 8, 16, 32, 64},
                                   {{"s", {1, 2, 3, 4, 5}}}, opt));
    EXPECT_THROW(tu::asciiChart({0, 1}, {{"s", {1, 2}}}, opt),
                 tbd::util::FatalError);
}

TEST(Chart, RejectsMismatchedSeries)
{
    EXPECT_THROW(tu::asciiChart({1, 2, 3}, {{"s", {1, 2}}}),
                 tbd::util::FatalError);
    EXPECT_THROW(tu::asciiChart({}, {{"s", {}}}), tbd::util::FatalError);
}

TEST(Chart, FlatSeriesDoesNotDivideByZero)
{
    EXPECT_NO_THROW(tu::asciiChart({1, 2}, {{"flat", {3.0, 3.0}}}));
}
