#include "analysis/obs_report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ta = tbd::analysis;
namespace to = tbd::obs;

namespace {

to::SpanRecord
span(to::SpanId id, to::SpanId parent, const char *name, double start,
     double dur)
{
    to::SpanRecord s;
    s.id = id;
    s.parent = parent;
    s.name = name;
    s.startUs = start;
    s.durUs = dur;
    return s;
}

/** root(100us) -> child(60us) -> grandchild(20us), plus a sibling. */
to::TraceDump
sampleTrace()
{
    to::TraceDump dump;
    dump.wallUs = 100.0;
    dump.spans = {
        span(1, 0, "root", 0.0, 100.0),
        span(2, 1, "child", 10.0, 60.0),
        span(3, 2, "leaf", 20.0, 20.0),
        span(4, 1, "leaf", 75.0, 10.0),
    };
    return dump;
}

} // namespace

TEST(ObsReport, SelfTimeSubtractsDirectChildrenOnly)
{
    const auto report = ta::buildObsReport(sampleTrace());
    ASSERT_EQ(report.spans.size(), 3u);

    const ta::SpanAggregate *root = nullptr, *child = nullptr,
                            *leaf = nullptr;
    for (const auto &agg : report.spans) {
        if (agg.name == "root")
            root = &agg;
        else if (agg.name == "child")
            child = &agg;
        else if (agg.name == "leaf")
            leaf = &agg;
    }
    ASSERT_NE(root, nullptr);
    ASSERT_NE(child, nullptr);
    ASSERT_NE(leaf, nullptr);

    // root: 100 - (60 + 10) = 30; child: 60 - 20 = 40; leaf: 20 + 10.
    EXPECT_EQ(root->selfUs, 30.0);
    EXPECT_EQ(child->selfUs, 40.0);
    EXPECT_EQ(leaf->selfUs, 30.0);
    EXPECT_EQ(leaf->count, 2);
    EXPECT_EQ(leaf->totalUs, 30.0);
    EXPECT_EQ(leaf->maxUs, 20.0);
    EXPECT_EQ(leaf->meanUs, 15.0);

    // Self shares sum to one.
    double share = 0.0;
    for (const auto &agg : report.spans)
        share += agg.selfShare;
    EXPECT_NEAR(share, 1.0, 1e-12);
}

TEST(ObsReport, SortsBySelfTimeDescending)
{
    const auto report = ta::buildObsReport(sampleTrace());
    for (std::size_t i = 1; i < report.spans.size(); ++i)
        EXPECT_GE(report.spans[i - 1].selfUs, report.spans[i].selfUs);
    EXPECT_EQ(report.rootCoverage, 1.0);
}

TEST(ObsReport, LoadsFromJsonl)
{
    to::TraceDump dump = sampleTrace();
    to::MetricSnapshot m;
    m.name = "x.count";
    m.kind = to::MetricSnapshot::Kind::Counter;
    m.value = 5.0;
    dump.metrics.push_back(m);

    std::ostringstream os;
    to::writeJsonl(dump, os);
    const auto report = ta::loadObsReport(os.str());
    EXPECT_EQ(report.spans.size(), 3u);
    ASSERT_EQ(report.metrics.size(), 1u);
    EXPECT_EQ(report.metrics[0].name, "x.count");
    EXPECT_EQ(report.wallUs, 100.0);
}

TEST(ObsReport, TablesRenderEveryKind)
{
    to::TraceDump dump = sampleTrace();
    to::MetricSnapshot c;
    c.name = "a.counter";
    c.kind = to::MetricSnapshot::Kind::Counter;
    c.value = 3.0;
    to::MetricSnapshot g;
    g.name = "b.gauge";
    g.kind = to::MetricSnapshot::Kind::Gauge;
    g.value = 0.5;
    to::MetricSnapshot h;
    h.name = "c.hist";
    h.kind = to::MetricSnapshot::Kind::Histogram;
    h.count = 4;
    h.sum = 8.0;
    h.p95 = 3.0;
    dump.metrics = {c, g, h};

    const auto report = ta::buildObsReport(dump);
    const std::string spans = report.spanTable().toString();
    EXPECT_NE(spans.find("root"), std::string::npos);
    EXPECT_NE(spans.find("leaf"), std::string::npos);
    const std::string metrics = report.metricTable().toString();
    EXPECT_NE(metrics.find("a.counter"), std::string::npos);
    EXPECT_NE(metrics.find("gauge"), std::string::npos);
    EXPECT_NE(metrics.find("histogram"), std::string::npos);

    // topN truncates.
    EXPECT_EQ(report.spanTable(1).rowCount(), 1u);
}

TEST(ObsReport, EmptyTraceYieldsEmptyReport)
{
    const auto report = ta::buildObsReport(to::TraceDump{});
    EXPECT_TRUE(report.spans.empty());
    EXPECT_TRUE(report.metrics.empty());
    EXPECT_EQ(report.rootCoverage, 0.0);
}

namespace {

to::MetricSnapshot
counterSnapshot(const char *name, double value)
{
    to::MetricSnapshot m;
    m.name = name;
    m.kind = to::MetricSnapshot::Kind::Counter;
    m.value = value;
    return m;
}

} // namespace

TEST(ObsReport, FastPathSummaryRollsUpCacheAndReplayCounters)
{
    const std::vector<to::MetricSnapshot> metrics = {
        counterSnapshot("perf.lowering_cache.hit", 30.0),
        counterSnapshot("perf.lowering_cache.miss", 10.0),
        counterSnapshot("gpusim.replay.hit", 18.0),
        counterSnapshot("gpusim.replay.fallback", 6.0),
        counterSnapshot("engine.simd.dispatch", 90.0),
        counterSnapshot("engine.simd.fallback", 10.0),
        counterSnapshot("engine.fusion.hit", 8.0),
        counterSnapshot("engine.fusion.miss", 2.0),
        counterSnapshot("perf.runs", 2.0), // unrelated, ignored
    };
    const ta::FastPathSummary summary = ta::fastPathSummary(metrics);
    ASSERT_EQ(summary.layers.size(), 4u);

    EXPECT_EQ(summary.layers[0].name, "lowering cache");
    EXPECT_EQ(summary.layers[0].hits, 30);
    EXPECT_EQ(summary.layers[0].misses, 10);
    EXPECT_DOUBLE_EQ(summary.layers[0].hitRate, 0.75);

    EXPECT_EQ(summary.layers[1].name, "timeline replay");
    EXPECT_EQ(summary.layers[1].hits, 18);
    EXPECT_EQ(summary.layers[1].misses, 6);
    EXPECT_DOUBLE_EQ(summary.layers[1].hitRate, 0.75);

    EXPECT_EQ(summary.layers[2].name, "simd dispatch");
    EXPECT_EQ(summary.layers[2].hits, 90);
    EXPECT_EQ(summary.layers[2].misses, 10);
    EXPECT_DOUBLE_EQ(summary.layers[2].hitRate, 0.90);

    EXPECT_EQ(summary.layers[3].name, "fusion");
    EXPECT_EQ(summary.layers[3].hits, 8);
    EXPECT_EQ(summary.layers[3].misses, 2);
    EXPECT_DOUBLE_EQ(summary.layers[3].hitRate, 0.80);

    const std::string rendered = summary.table().toString();
    EXPECT_NE(rendered.find("lowering cache"), std::string::npos);
    EXPECT_NE(rendered.find("timeline replay"), std::string::npos);
    EXPECT_NE(rendered.find("simd dispatch"), std::string::npos);
    EXPECT_NE(rendered.find("fusion"), std::string::npos);
}

TEST(ObsReport, FastPathSummaryOmitsAbsentLayers)
{
    // Only the cache counters present (e.g. replay never armed).
    const ta::FastPathSummary partial = ta::fastPathSummary(
        {counterSnapshot("perf.lowering_cache.hit", 5.0)});
    ASSERT_EQ(partial.layers.size(), 1u);
    EXPECT_EQ(partial.layers[0].name, "lowering cache");
    EXPECT_EQ(partial.layers[0].misses, 0);
    EXPECT_DOUBLE_EQ(partial.layers[0].hitRate, 1.0);

    // No fast-path counters at all: TBD_NOCACHE=1 or no simulations.
    EXPECT_TRUE(ta::fastPathSummary({}).empty());
}
