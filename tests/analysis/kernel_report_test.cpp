#include "analysis/kernel_report.h"

#include <gtest/gtest.h>

#include "frameworks/framework.h"
#include "models/cnn_workloads.h"
#include "perf/simulator.h"

namespace ta = tbd::analysis;
namespace tg = tbd::gpusim;

namespace {

tg::KernelExec
exec(const char *name, double durUs, double util)
{
    tg::KernelExec e;
    e.name = name;
    e.durationUs = durUs;
    e.fp32Util = util;
    return e;
}

} // namespace

TEST(KernelReport, AggregatesByBaseName)
{
    std::vector<tg::KernelExec> trace = {
        exec("sgemm(fc1)", 10.0, 0.5),
        exec("sgemm(fc2)", 30.0, 0.3),
        exec("bn_fw(res2a)", 20.0, 0.4),
    };
    auto aggs = ta::aggregateKernels(trace);
    ASSERT_EQ(aggs.size(), 2u);
    EXPECT_EQ(aggs[0].name, "sgemm"); // largest total duration first
    EXPECT_EQ(aggs[0].invocations, 2);
    EXPECT_NEAR(aggs[0].totalUs, 40.0, 1e-9);
    // Duration-weighted util: (10*0.5 + 30*0.3)/40 = 0.35.
    EXPECT_NEAR(aggs[0].meanFp32Util, 0.35, 1e-9);
    EXPECT_NEAR(aggs[0].durationShare, 40.0 / 60.0, 1e-9);
}

TEST(KernelReport, TraceMeanIsDurationWeighted)
{
    std::vector<tg::KernelExec> trace = {exec("a", 90.0, 0.1),
                                         exec("b", 10.0, 0.9)};
    EXPECT_NEAR(ta::traceMeanFp32Util(trace), 0.18, 1e-9);
}

TEST(KernelReport, LowUtilFilterExcludesAboveAverage)
{
    std::vector<tg::KernelExec> trace = {
        exec("hot_gemm", 50.0, 0.8),
        exec("slow_bn", 30.0, 0.3),
        exec("slow_act", 20.0, 0.2),
    };
    // Mean = (50*.8 + 30*.3 + 20*.2)/100 = 0.53.
    auto low = ta::longestLowUtilKernels(trace, 5);
    ASSERT_EQ(low.size(), 2u);
    EXPECT_EQ(low[0].name, "slow_bn"); // longer of the two
    EXPECT_EQ(low[1].name, "slow_act");
}

TEST(KernelReport, EmptyTrace)
{
    std::vector<tg::KernelExec> empty;
    EXPECT_EQ(ta::aggregateKernels(empty).size(), 0u);
    EXPECT_EQ(ta::traceMeanFp32Util(empty), 0.0);
}

TEST(KernelReport, ResNetTablesSurfaceBatchNormKernels)
{
    // Tables 5 and 6: the cuDNN batch-norm kernels are among the
    // longest below-average-utilization kernels for ResNet-50 on both
    // TensorFlow and MXNet.
    for (auto fw : {tbd::frameworks::FrameworkId::TensorFlow,
                    tbd::frameworks::FrameworkId::MXNet}) {
        tbd::perf::PerfSimulator sim;
        tbd::perf::RunConfig rc;
        rc.model = &tbd::models::resnet50();
        rc.framework = fw;
        rc.gpu = tg::quadroP4000();
        rc.batch = 32;
        auto r = sim.run(rc);
        auto low = ta::longestLowUtilKernels(r.kernelTrace, 5);
        ASSERT_GE(low.size(), 2u);
        bool has_bn = false;
        for (const auto &agg : low)
            has_bn |= agg.name.find("bn_") != std::string::npos;
        EXPECT_TRUE(has_bn) << "framework "
                            << tbd::frameworks::frameworkName(fw);
        // Every reported kernel sits below the trace average.
        const double avg = ta::traceMeanFp32Util(r.kernelTrace);
        for (const auto &agg : low)
            EXPECT_LT(agg.meanFp32Util, avg);
    }
}

TEST(CategoryBreakdown, SharesSumToOne)
{
    tbd::perf::PerfSimulator sim;
    tbd::perf::RunConfig rc;
    rc.model = &tbd::models::resnet50();
    rc.framework = tbd::frameworks::FrameworkId::MXNet;
    rc.gpu = tg::quadroP4000();
    rc.batch = 16;
    auto r = sim.run(rc);
    auto cats = ta::categoryBreakdown(r.kernelTrace);
    ASSERT_FALSE(cats.empty());
    double total = 0.0;
    for (const auto &c : cats) {
        EXPECT_GT(c.totalUs, 0.0);
        EXPECT_GT(c.invocations, 0);
        total += c.share;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    // Sorted by descending time.
    for (std::size_t i = 1; i < cats.size(); ++i)
        EXPECT_GE(cats[i - 1].totalUs, cats[i].totalUs);
}

TEST(CategoryBreakdown, ConvDominatesResNet)
{
    tbd::perf::PerfSimulator sim;
    tbd::perf::RunConfig rc;
    rc.model = &tbd::models::resnet50();
    rc.framework = tbd::frameworks::FrameworkId::MXNet;
    rc.gpu = tg::quadroP4000();
    rc.batch = 32;
    auto r = sim.run(rc);
    auto cats = ta::categoryBreakdown(r.kernelTrace);
    EXPECT_EQ(cats.front().category, tg::KernelCategory::Conv);
    EXPECT_GT(cats.front().share, 0.5);
}

TEST(CategoryBreakdown, GemmDominatesSeq2Seq)
{
    tbd::perf::PerfSimulator sim;
    tbd::perf::RunConfig rc;
    rc.model = &tbd::models::sockeye();
    rc.framework = tbd::frameworks::FrameworkId::MXNet;
    rc.gpu = tg::quadroP4000();
    rc.batch = 32;
    auto r = sim.run(rc);
    auto cats = ta::categoryBreakdown(r.kernelTrace);
    EXPECT_EQ(cats.front().category, tg::KernelCategory::Gemm);
}

TEST(CategoryBreakdown, EmptyTraceIsEmpty)
{
    EXPECT_TRUE(ta::categoryBreakdown({}).empty());
}

TEST(LayerBreakdown, AggregatesForwardBackwardAndUpdate)
{
    std::vector<tg::KernelExec> trace;
    auto push = [&](const char *name, double us) {
        tg::KernelExec e;
        e.name = name;
        e.durationUs = us;
        trace.push_back(e);
    };
    push("conv_fw(res2a_3x3)", 10.0);
    push("dgrad(res2a_3x3_dgrad)", 20.0);
    push("wgrad(res2a_3x3_wgrad)", 20.0);
    push("update(res2a_3x3_sgd_mom_update)", 1.0);
    push("conv_fw(res3a_3x3)", 5.0);

    auto layers = ta::layerBreakdown(trace, 10);
    ASSERT_EQ(layers.size(), 2u);
    EXPECT_EQ(layers[0].layer, "res2a_3x3");
    EXPECT_EQ(layers[0].kernels, 4);
    EXPECT_NEAR(layers[0].totalUs, 51.0, 1e-9);
    EXPECT_NEAR(layers[0].share, 51.0 / 56.0, 1e-9);
}

TEST(LayerBreakdown, TopNLimitsOutput)
{
    tbd::perf::PerfSimulator sim;
    tbd::perf::RunConfig rc;
    rc.model = &tbd::models::resnet50();
    rc.framework = tbd::frameworks::FrameworkId::MXNet;
    rc.gpu = tg::quadroP4000();
    rc.batch = 16;
    auto r = sim.run(rc);
    auto layers = ta::layerBreakdown(r.kernelTrace, 5);
    EXPECT_EQ(layers.size(), 5u);
    // The heaviest layers of ResNet-50 are convolutions with real
    // instance names from the workload.
    EXPECT_FALSE(layers[0].layer.empty());
    for (std::size_t i = 1; i < layers.size(); ++i)
        EXPECT_GE(layers[i - 1].totalUs, layers[i].totalUs);
}
