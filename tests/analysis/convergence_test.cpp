#include "analysis/convergence.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace ta = tbd::analysis;

TEST(Convergence, SpecsExistForFigure2Models)
{
    for (const auto &name : ta::figure2Models())
        EXPECT_NO_THROW(ta::convergenceSpec(name)) << name;
    EXPECT_THROW(ta::convergenceSpec("WGAN"), tbd::util::FatalError);
}

TEST(Convergence, CurveIsMonotoneAndReachesPlateau)
{
    const auto &spec = ta::convergenceSpec("ResNet-50");
    auto curve = ta::trainingCurve(spec, 80.0, 32);
    ASSERT_EQ(curve.size(), 32u);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GE(curve[i].metric, curve[i - 1].metric);
        EXPECT_GT(curve[i].timeHours, curve[i - 1].timeHours);
    }
    // Top-1 accuracy converges to 75-80% (Section 3.3).
    EXPECT_GT(curve.back().metric, 0.70);
    EXPECT_LE(curve.back().metric, 0.80);
}

TEST(Convergence, ImagenetTrainingTakesDaysAtP4000Rates)
{
    // Fig. 2a/2b time scale: ~2-3 weeks on a single Quadro P4000.
    const auto &spec = ta::convergenceSpec("Inception-v3");
    auto curve = ta::trainingCurve(spec, 63.0);
    const double days = curve.back().timeHours / 24.0;
    EXPECT_GT(days, 12.0);
    EXPECT_LT(days, 30.0);
}

TEST(Convergence, Seq2SeqTrainsInHours)
{
    // Fig. 2d time scale: a few hours.
    const auto &spec = ta::convergenceSpec("NMT");
    auto curve = ta::trainingCurve(spec, 400.0);
    EXPECT_GT(curve.back().timeHours, 2.0);
    EXPECT_LT(curve.back().timeHours, 10.0);
    EXPECT_NEAR(curve.back().metric, 20.0, 1.0); // BLEU ~ 20
}

TEST(Convergence, A3cStartsAtMinusTwentyOne)
{
    const auto &spec = ta::convergenceSpec("A3C");
    auto curve = ta::trainingCurve(spec, 118.0);
    EXPECT_LT(curve.front().metric, -15.0);
    EXPECT_GT(curve.back().metric, 15.0); // Pong solved: 19-20
    EXPECT_GT(curve.back().timeHours, 5.0);
    EXPECT_LT(curve.back().timeHours, 20.0);
}

TEST(Convergence, FasterThroughputShortensWallClock)
{
    const auto &spec = ta::convergenceSpec("ResNet-50");
    auto slow = ta::trainingCurve(spec, 71.0);
    auto fast = ta::trainingCurve(spec, 172.0); // TITAN Xp rate
    EXPECT_LT(fast.back().timeHours, slow.back().timeHours);
    // Same final accuracy: hardware changes time, not the metric.
    EXPECT_NEAR(fast.back().metric, slow.back().metric, 1e-9);
}

TEST(Convergence, RejectsBadInputs)
{
    const auto &spec = ta::convergenceSpec("ResNet-50");
    EXPECT_THROW(ta::trainingCurve(spec, 0.0), tbd::util::FatalError);
    EXPECT_THROW(ta::trainingCurve(spec, 10.0, 1), tbd::util::FatalError);
}
