#include "analysis/sampling.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace ta = tbd::analysis;
namespace md = tbd::models;
namespace tf = tbd::frameworks;
namespace tg = tbd::gpusim;

TEST(Sampling, FindStableIterationSkipsWarmup)
{
    // Warm-up spikes, then steady 100s.
    std::vector<double> times = {900, 400, 101, 100, 99, 100, 101, 100};
    EXPECT_EQ(ta::SamplingProfiler::findStableIteration(times), 2);
}

TEST(Sampling, FindStableIterationImmediateWhenFlat)
{
    std::vector<double> times(10, 50.0);
    EXPECT_EQ(ta::SamplingProfiler::findStableIteration(times), 0);
}

TEST(Sampling, FindStableIterationNeverSettles)
{
    // Alternating series: only the trivial single-element suffix can
    // ever "settle", so no usable stable window exists.
    std::vector<double> times = {100, 500, 100, 500, 100};
    EXPECT_GE(ta::SamplingProfiler::findStableIteration(times),
              static_cast<std::int64_t>(times.size()) - 1);
}

TEST(Sampling, EmptySeries)
{
    EXPECT_EQ(ta::SamplingProfiler::findStableIteration({}), 0);
}

TEST(Sampling, ProfileDetectsWarmupAndStabilizes)
{
    ta::SamplingProfiler profiler(/*sampleIterations=*/20);
    tbd::perf::RunConfig rc;
    rc.model = &md::resnet50();
    rc.framework = tf::FrameworkId::MXNet;
    rc.gpu = tg::quadroP4000();
    rc.batch = 16;
    auto report = profiler.profile(rc);
    EXPECT_TRUE(report.stable);
    // Auto-tuning makes iteration 0 slow, so stability starts after it.
    EXPECT_GE(report.stableAfter, 1);
    EXPECT_LT(report.throughputCv, 0.05);
    EXPECT_EQ(report.result.sampleIterationUs.size(), 20u);
    EXPECT_GT(report.result.throughputSamples, 0.0);
}

TEST(Sampling, RejectsNonPositiveWindow)
{
    EXPECT_THROW(ta::SamplingProfiler(0), tbd::util::FatalError);
}
