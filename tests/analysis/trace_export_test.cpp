#include "analysis/trace_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "frameworks/framework.h"
#include "perf/simulator.h"
#include "util/json.h"
#include "util/logging.h"

namespace ta = tbd::analysis;
namespace tg = tbd::gpusim;

namespace {

std::vector<tg::KernelExec>
smallTrace()
{
    tg::KernelExec a;
    a.name = "sgemm(fc \"quoted\")";
    a.category = tg::KernelCategory::Gemm;
    a.startUs = 10.0;
    a.durationUs = 5.0;
    a.flops = 2e9;
    a.fp32Util = 0.5;
    tg::KernelExec b;
    b.name = "bn_fw(res2a)";
    b.category = tg::KernelCategory::BatchNorm;
    b.startUs = 15.0;
    b.durationUs = 2.0;
    return {a, b};
}

} // namespace

TEST(TraceExport, EmitsChromeTraceEvents)
{
    std::ostringstream os;
    ta::writeChromeTrace(smallTrace(), os, "test run");
    const std::string s = os.str();
    EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(s.find("\"ts\":10"), std::string::npos);
    EXPECT_NE(s.find("\"dur\":5"), std::string::npos);
    EXPECT_NE(s.find("\"cat\":\"batch_norm\""), std::string::npos);
    EXPECT_NE(s.find("test run"), std::string::npos);
}

TEST(TraceExport, EscapesJsonSpecials)
{
    std::ostringstream os;
    ta::writeChromeTrace(smallTrace(), os);
    EXPECT_NE(os.str().find("\\\"quoted\\\""), std::string::npos);
}

TEST(TraceExport, EmptyTraceIsValidJson)
{
    std::ostringstream os;
    ta::writeChromeTrace({}, os);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
    EXPECT_EQ(s.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceExport, RoundTripsARealSimulation)
{
    tbd::perf::PerfSimulator sim;
    tbd::perf::RunConfig rc;
    rc.model = &tbd::models::resnet50();
    rc.framework = tbd::frameworks::FrameworkId::MXNet;
    rc.gpu = tg::quadroP4000();
    rc.batch = 8;
    auto r = sim.run(rc);

    const std::string path =
        std::string(::testing::TempDir()) + "tbd_trace.json";
    ta::exportChromeTrace(r.kernelTrace, path, "ResNet-50");
    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::string contents((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
    std::remove(path.c_str());
    // One event per kernel plus the metadata record.
    std::size_t events = 0, pos = 0;
    while ((pos = contents.find("\"ph\":\"X\"", pos)) !=
           std::string::npos) {
        ++events;
        pos += 8;
    }
    EXPECT_EQ(events, r.kernelTrace.size());
}

TEST(TraceExport, UnwritablePathIsFatal)
{
    EXPECT_THROW(
        ta::exportChromeTrace({}, "/nonexistent/dir/trace.json"),
        tbd::util::FatalError);
    EXPECT_FALSE(
        std::filesystem::exists("/nonexistent/dir/trace.json"));
    EXPECT_FALSE(
        std::filesystem::exists("/nonexistent/dir/trace.json.tmp"));
}

TEST(TraceExport, ExportOntoDirectoryIsFatalAndLeavesNoDebris)
{
    // The final rename fails (the target is a directory); the partially
    // written temporary must be cleaned up and the target untouched.
    const std::string dir =
        std::string(::testing::TempDir()) + "tbd_trace_target_dir";
    std::filesystem::create_directory(dir);
    EXPECT_THROW(ta::exportChromeTrace(smallTrace(), dir),
                 tbd::util::FatalError);
    EXPECT_FALSE(std::filesystem::exists(dir + ".tmp"));
    EXPECT_TRUE(std::filesystem::is_directory(dir));
    std::filesystem::remove(dir);
}

TEST(TraceExport, ParsedTraceMatchesKernelTraceBitwise)
{
    tbd::perf::PerfSimulator sim;
    tbd::perf::RunConfig rc;
    rc.model = &tbd::models::resnet50();
    rc.framework = tbd::frameworks::FrameworkId::TensorFlow;
    rc.gpu = tg::quadroP4000();
    rc.batch = 4;
    const auto r = sim.run(rc);

    std::ostringstream os;
    ta::writeChromeTrace(r.kernelTrace, os, "round trip");
    const auto doc = tbd::util::json::Value::parse(os.str());

    // One metadata record, then one complete ("X") event per kernel.
    const auto &events = doc.at("traceEvents").items();
    ASSERT_EQ(events.size(), r.kernelTrace.size() + 1);
    EXPECT_EQ(events[0].at("ph").asString(), "M");

    double prevTs = 0.0;
    for (std::size_t i = 1; i < events.size(); ++i) {
        const auto &e = events[i];
        const auto &k = r.kernelTrace[i - 1];
        EXPECT_EQ(e.at("ph").asString(), "X");
        const double ts = e.at("ts").asDouble();
        const double dur = e.at("dur").asDouble();
        EXPECT_GE(ts, prevTs) << "event " << i << " not monotonic";
        EXPECT_GE(dur, 0.0);
        // 17-digit serialization makes the round trip exact.
        EXPECT_EQ(ts, k.startUs);
        EXPECT_EQ(dur, k.durationUs);
        EXPECT_EQ(e.at("name").asString(), k.name);
        EXPECT_EQ(e.at("args").at("fp32_util").asDouble(), k.fp32Util);
        prevTs = ts;
    }
}
