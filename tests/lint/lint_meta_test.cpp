/**
 * @file
 * The meta-lint: every registered rule id must have a firing fixture.
 * The test scans the lint test sources (TBD_LINT_TEST_SRC_DIR) for
 * EXPECT_RULE_FIRES / RULE_FIRES_VIA_PURE_FN coverage markers and
 * fails on any rule the fixtures never demonstrate firing — so adding
 * a rule without proof that it catches its defect is itself a test
 * failure, closing the loop DESIGN.md §12's recipe describes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <string>

#include "lint/rule.h"

#ifndef TBD_LINT_TEST_SRC_DIR
#define TBD_LINT_TEST_SRC_DIR "tests/lint"
#endif

namespace {

/** The first "quoted string" after `pos`, or empty when none. */
std::string
quotedAfter(const std::string &text, std::size_t pos)
{
    const std::size_t open = text.find('"', pos);
    if (open == std::string::npos)
        return {};
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string::npos)
        return {};
    return text.substr(open + 1, close - open - 1);
}

/** Rule ids named by coverage markers in one source text. */
void
collectMarkedRules(const std::string &text, std::set<std::string> &ids)
{
    for (const char *marker :
         {"EXPECT_RULE_FIRES", "RULE_FIRES_VIA_PURE_FN"}) {
        std::size_t pos = 0;
        while ((pos = text.find(marker, pos)) != std::string::npos) {
            pos += std::string(marker).size();
            const std::string id = quotedAfter(text, pos);
            // The macro definitions themselves have no literal id;
            // real call sites always quote a "category.slug".
            if (id.find('.') != std::string::npos)
                ids.insert(id);
        }
    }
}

std::set<std::string>
fixtureCoveredRules()
{
    std::set<std::string> ids;
    for (const auto &entry :
         std::filesystem::directory_iterator(TBD_LINT_TEST_SRC_DIR)) {
        if (entry.path().extension() != ".cpp")
            continue;
        // This file mentions the marker names in prose and in its own
        // scanner; scanning it would yield phantom ids.
        if (entry.path().filename() == "lint_meta_test.cpp")
            continue;
        std::ifstream is(entry.path());
        const std::string text((std::istreambuf_iterator<char>(is)),
                               std::istreambuf_iterator<char>());
        collectMarkedRules(text, ids);
    }
    return ids;
}

TEST(LintMeta, EveryRegisteredRuleHasAFiringFixture)
{
    const std::set<std::string> covered = fixtureCoveredRules();
    ASSERT_GE(covered.size(), 20u)
        << "coverage scan of " << TBD_LINT_TEST_SRC_DIR
        << " found implausibly few markers — did the sources move?";
    for (const auto &rule : tbd::lint::RuleRegistry::builtin().rules()) {
        EXPECT_TRUE(covered.count(rule.id) == 1)
            << "rule '" << rule.id
            << "' has no firing fixture: add a test that seeds its "
               "defect and asserts EXPECT_RULE_FIRES(report, \""
            << rule.id << "\")";
    }
}

TEST(LintMeta, MarkersNameOnlyRegisteredRules)
{
    // The reverse direction: a marker naming a rule that no longer
    // exists is a stale fixture (e.g. a renamed rule id).
    const auto &registry = tbd::lint::RuleRegistry::builtin();
    for (const auto &id : fixtureCoveredRules())
        EXPECT_NE(registry.find(id), nullptr)
            << "fixture marker names unknown rule '" << id << "'";
}

TEST(LintMeta, EveryRuleCarriesExplainableMetadata)
{
    // `tbd_lint explain` renders description + fix hint for every
    // rule; deep-analysis rules must also say *why* (rationale) and
    // carry one of the registered family tags.
    const auto &registry = tbd::lint::RuleRegistry::builtin();
    const auto families = registry.analyses();
    EXPECT_EQ(families.size(), 3u);
    for (const auto &rule : registry.rules()) {
        EXPECT_FALSE(rule.description.empty()) << rule.id;
        EXPECT_FALSE(rule.fixHint.empty()) << rule.id;
        if (rule.analysis.empty())
            continue;
        EXPECT_FALSE(rule.rationale.empty()) << rule.id;
        EXPECT_NE(std::find(families.begin(), families.end(),
                            rule.analysis),
                  families.end())
            << rule.id;
    }
}

} // namespace
