/**
 * @file
 * Firing fixtures for the deep-analysis rule families (plan /
 * lowering / units): each test seeds one concrete violation — a lossy
 * collective, a rendezvous-ordered plan, a tampered kernel stream, a
 * degenerate device — and proves the rule catches it. Registry
 * fixtures are scoped (ScopedCollective/ScopedTopology) so the
 * process-wide registries are clean again before the cached
 * shipped-suite report or any later fixture runs.
 */

#include "lint/analyses/analyses.h"

#include <gtest/gtest.h>

#include "lint/lint.h"
#include "lint/rule.h"
#include "lint_test_util.h"

namespace tl = tbd::lint;
namespace td = tbd::dist;
namespace md = tbd::models;
namespace tg = tbd::gpusim;
namespace mp = tbd::memprof;

using tbd::lint_test::cleanModel;
using tbd::lint_test::countRule;
using tbd::lint_test::firstFinding;
using tbd::lint_test::ScopedCollective;
using tbd::lint_test::ScopedTopology;

namespace {

tl::LintReport
runRules(const tl::LintContext &ctx, const tl::LintOptions &options = {})
{
    return tl::RuleRegistry::builtin().run(ctx, options);
}

/** The builtin ring plan (the fixtures below derive broken plans from it). */
td::CommPlan
ringPlan(const td::Topology &topo, double bytes)
{
    const auto ring = td::findCollective("ring");
    EXPECT_TRUE(ring.has_value());
    return ring->plan(topo, bytes);
}

// --- plan family -----------------------------------------------------

TEST(LintAnalyses, PlanConservationFiresOnLossyCollective)
{
    // A ring allreduce missing its final allgather step: every worker
    // ends short of at least one contribution.
    ScopedCollective lossy({"fx-lossy",
                            "ring with the last step dropped (fixture)",
                            [](const td::Topology &topo, double bytes) {
                                td::CommPlan plan = ringPlan(topo, bytes);
                                plan.collective = "fx-lossy";
                                if (!plan.steps.empty())
                                    plan.steps.pop_back();
                                return plan;
                            }});
    const auto report = runRules(tl::emptyContext());
    EXPECT_RULE_FIRES(report, "dist.plan-conservation");
    const auto *f = firstFinding(report, "dist.plan-conservation");
    ASSERT_NE(f, nullptr);
    EXPECT_NE(f->object.find("fx-lossy@"), std::string::npos);
    // The intact builtins stay clean: every finding names the fixture.
    for (const auto &finding : report.findings) {
        if (finding.rule.rfind("dist.plan-", 0) == 0) {
            EXPECT_NE(finding.object.find("fx-lossy@"),
                      std::string::npos)
                << finding.object;
        }
    }
}

TEST(LintAnalyses, PlanDeadlockFiresOnRendezvousOrderedPlan)
{
    // Conserves only if same-step transfers run in list order: step 0
    // needs 1->2 to happen *after* 0->1 so worker 2 receives worker
    // 0's contribution second-hand. Under concurrent (snapshot)
    // semantics worker 2 never gets it.
    ScopedCollective rendezvous(
        {"fx-rendezvous",
         "plan relying on intra-step transfer order (fixture)",
         [](const td::Topology &topo, double bytes) {
             const auto &gpus = topo.gpus();
             if (gpus.size() < 3)
                 return ringPlan(topo, bytes); // too small to express
             td::CommPlan plan;
             plan.collective = "fx-rendezvous";
             td::CommStep relay;
             relay.transfers.push_back({gpus[0], gpus[1], bytes});
             relay.transfers.push_back({gpus[1], gpus[2], bytes});
             plan.steps.push_back(std::move(relay));
             td::CommStep fanout;
             fanout.transfers.push_back({gpus[2], gpus[0], bytes});
             fanout.transfers.push_back({gpus[2], gpus[1], bytes});
             for (std::size_t i = 3; i < gpus.size(); ++i) {
                 // Remaining workers exchange everything with worker 2
                 // up front so only ranks 0..2 carry the rendezvous.
                 plan.steps.front().transfers.push_back(
                     {gpus[i], gpus[2], bytes});
                 fanout.transfers.push_back({gpus[2], gpus[i], bytes});
             }
             plan.steps.push_back(std::move(fanout));
             return plan;
         }});
    const auto report = runRules(tl::emptyContext());
    EXPECT_RULE_FIRES(report, "dist.plan-deadlock");
    const auto *f = firstFinding(report, "dist.plan-deadlock");
    ASSERT_NE(f, nullptr);
    EXPECT_NE(f->object.find("fx-rendezvous@"), std::string::npos);
    // The defining property: the plan DOES conserve sequentially, so
    // the conservation rule must stay silent about it.
    EXPECT_EQ(countRule(report, "dist.plan-conservation"), 0u);
}

TEST(LintAnalyses, PlanRouteFiresOnBadEndpoint)
{
    ScopedCollective badroute(
        {"fx-badroute",
         "plan with an out-of-range destination (fixture)",
         [](const td::Topology &topo, double bytes) {
             td::CommPlan plan;
             plan.collective = "fx-badroute";
             td::CommStep step;
             step.transfers.push_back(
                 {topo.gpus().empty() ? 0 : topo.gpus()[0], 9999,
                  bytes});
             plan.steps.push_back(std::move(step));
             return plan;
         }});
    const auto report = runRules(tl::emptyContext());
    EXPECT_RULE_FIRES(report, "dist.plan-route");
}

TEST(LintAnalyses, PlanRulesSkipDisconnectedTopologies)
{
    // The disconnected shape belongs to dist.topology-graph; the plan
    // rules must neither crash routing over it nor duplicate it.
    ScopedTopology disconnected(
        {"fx-disconnected", "two GPUs, no wires (fixture)", 1.0, 0.0,
         /*fixedWorkers=*/2, [](int workers) {
             td::Topology topo("fx-disconnected");
             for (int i = 0; i < workers; ++i)
                 topo.addNode("gpu" + std::to_string(i),
                              td::NodeKind::Gpu);
             return topo;
         }});
    const auto report = runRules(tl::emptyContext());
    EXPECT_RULE_FIRES(report, "dist.topology-graph");
    for (const auto &finding : report.findings) {
        if (finding.rule.rfind("dist.plan-", 0) == 0) {
            EXPECT_EQ(finding.object.find("fx-disconnected"),
                      std::string::npos)
                << finding.object;
        }
    }
}

TEST(LintAnalyses, ClusterCellFiresOnWorkerMiscount)
{
    ScopedTopology miscount(
        {"fx-miscount", "says 4 workers, builds 2 (fixture)", 1.0, 0.0,
         /*fixedWorkers=*/4, [](int /*workers*/) {
             td::Topology topo("fx-miscount");
             const int a = topo.addNode("gpu0", td::NodeKind::Gpu);
             const int b = topo.addNode("gpu1", td::NodeKind::Gpu);
             topo.addEdge(a, b, td::LinkSpec{"fx-wire", 10.0, 1.0});
             return topo;
         }});
    const auto report = runRules(tl::emptyContext());
    EXPECT_RULE_FIRES(report, "dist.cluster-cell");
}

TEST(LintAnalyses, CollectiveRegistryFiresOnMissingDescription)
{
    ScopedCollective nodesc(
        {"fx-nodesc", /*description=*/"",
         [](const td::Topology &topo, double bytes) {
             return ringPlan(topo, bytes);
         }});
    const auto report = runRules(tl::emptyContext());
    EXPECT_RULE_FIRES(report, "dist.collective-registry");
}

TEST(LintAnalyses, BuiltinPlansAreCleanAtFullDepth)
{
    tl::LintOptions options;
    options.depth = tl::AnalysisDepth::Full;
    const auto report = runRules(tl::emptyContext(), options);
    EXPECT_EQ(countRule(report, "dist.plan-conservation"), 0u);
    EXPECT_EQ(countRule(report, "dist.plan-deadlock"), 0u);
    EXPECT_EQ(countRule(report, "dist.plan-route"), 0u);
}

TEST(LintAnalyses, AnalysisGatingSelectsFamilies)
{
    ScopedCollective lossy({"fx-lossy-gated",
                            "lossy fixture for family gating",
                            [](const td::Topology &topo, double bytes) {
                                td::CommPlan plan = ringPlan(topo, bytes);
                                if (!plan.steps.empty())
                                    plan.steps.pop_back();
                                return plan;
                            }});
    tl::LintOptions core_only;
    core_only.analyses.emplace(); // empty set: core rules only
    const auto core = runRules(tl::emptyContext(), core_only);
    EXPECT_EQ(countRule(core, "dist.plan-conservation"), 0u);

    tl::LintOptions plan_only;
    plan_only.analyses.emplace(std::set<std::string>{"plan"});
    const auto plan = runRules(tl::emptyContext(), plan_only);
    EXPECT_RULE_FIRES(plan, "dist.plan-conservation");

    // Family gating must be reflected in rulesRun so the baseline
    // pipeline can tell a gated run from a broken one.
    EXPECT_LT(core.rulesRun, plan.rulesRun);
    const auto all = runRules(tl::emptyContext());
    EXPECT_EQ(all.rulesRun,
              tl::RuleRegistry::builtin().rules().size());
}

// --- lowering family -------------------------------------------------

TEST(LintAnalyses, DeadKernelFiresOnOrphanedBackwardlessOp)
{
    const md::ModelDesc m = cleanModel("fx-deadstash");
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    ASSERT_FALSE(ctx.lowered.empty());
    // Rewrite op 0's backward kernels as forward ones: its stash is
    // now never consumed and its optimizer update is fed by nothing.
    for (auto &item : ctx.lowered[0].training.items) {
        if (item.opIndex == 0 &&
            item.phase == tbd::perf::LowerPhase::Backward)
            item.phase = tbd::perf::LowerPhase::Forward;
    }
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "lowering.dead-kernel");
}

TEST(LintAnalyses, DeadKernelFiresOnUnanchoredKernel)
{
    const md::ModelDesc m = cleanModel("fx-unanchored");
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    ASSERT_FALSE(ctx.lowered.empty());
    ASSERT_FALSE(ctx.lowered[0].training.items.empty());
    ctx.lowered[0].training.items[0].opIndex = 42; // out of range
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "lowering.dead-kernel");
}

TEST(LintAnalyses, LivenessFiresOnTamperedCategoryPeak)
{
    const md::ModelDesc m = cleanModel("fx-leak");
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    ASSERT_FALSE(ctx.lowered.empty());
    // A 64-byte phantom: exactly what a leaked gradient buffer would
    // add to the recorded peak.
    ctx.lowered[0].memory.peakBytes[static_cast<std::size_t>(
        mp::MemCategory::FeatureMaps)] += 64;
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "lowering.liveness");
}

TEST(LintAnalyses, LivenessIsByteExactOnUntouchedLowerings)
{
    // Named locals: the context stores pointers, not copies.
    const md::ModelDesc clean = cleanModel("fx-live-clean");
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(clean);
    ctx.addModel(md::resnet50());
    const auto report = runRules(ctx);
    EXPECT_EQ(countRule(report, "lowering.liveness"), 0u);
    EXPECT_EQ(countRule(report, "lowering.dead-kernel"), 0u);
}

// --- units family ----------------------------------------------------

TEST(LintAnalyses, UnitsFireOnDegenerateDevice)
{
    const md::ModelDesc m = cleanModel("fx-degenerate");
    tl::LintContext ctx = tl::emptyContext();
    tg::GpuSpec dead;
    dead.name = "Dead GPU";
    dead.multiprocessors = 1;
    dead.coreCount = 0; // zero peak rate: infinite derived durations
    dead.maxClockMHz = 0.0;
    dead.memoryGiB = 8.0;
    dead.memoryBwGBs = 100.0;
    ctx.gpus = {&dead};
    ctx.addModel(m);
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "units.consistency");
}

TEST(LintAnalyses, UnitsFireOnUnsoundKernelFields)
{
    const md::ModelDesc m = cleanModel("fx-badeff");
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    ASSERT_FALSE(ctx.lowered.empty());
    ASSERT_FALSE(ctx.lowered[0].training.items.empty());
    ctx.lowered[0].training.items[0].kernel.memoryEff = 0.0;
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "units.consistency");
}

TEST(LintAnalyses, UnitsCleanOnShippedTables)
{
    const md::ModelDesc clean = cleanModel("fx-units-clean");
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(clean);
    const auto report = runRules(ctx);
    EXPECT_EQ(countRule(report, "units.consistency"), 0u);
}

} // namespace
