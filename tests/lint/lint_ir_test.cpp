/**
 * @file
 * Unit tests for lint::ir itself — the dimensional algebra, the
 * abstract plan interpreter under both step semantics, the costPlan
 * re-derivation tripwire, and the op-anchored iteration graph — on
 * hand-built topologies and plans, independent of the rule layer.
 */

#include "lint/ir.h"

#include <gtest/gtest.h>

#include "frameworks/framework.h"
#include "models/workload.h"

namespace ir = tbd::lint::ir;
namespace td = tbd::dist;
namespace md = tbd::models;

namespace {

// --- units -----------------------------------------------------------

TEST(LintIr, ParseUnitHandlesScalesAndQuotients)
{
    const auto us = ir::parseUnit("us");
    ASSERT_TRUE(us.has_value());
    EXPECT_DOUBLE_EQ(us->scale, 1e-6);
    EXPECT_EQ(us->unit.seconds, 1);

    const auto gbs = ir::parseUnit("GB/s");
    ASSERT_TRUE(gbs.has_value());
    EXPECT_DOUBLE_EQ(gbs->scale, 1e9);
    EXPECT_EQ(gbs->unit.bytes, 1);
    EXPECT_EQ(gbs->unit.seconds, -1);

    const auto mhz = ir::parseUnit("MHz");
    ASSERT_TRUE(mhz.has_value());
    EXPECT_DOUBLE_EQ(mhz->scale, 1e6);
    EXPECT_EQ(mhz->unit.seconds, -1);

    const auto gib = ir::parseUnit("GiB");
    ASSERT_TRUE(gib.has_value());
    EXPECT_DOUBLE_EQ(gib->scale, 1024.0 * 1024.0 * 1024.0);

    EXPECT_FALSE(ir::parseUnit("furlongs").has_value());
    EXPECT_FALSE(ir::parseUnit("").has_value());
}

TEST(LintIr, QuantityAlgebraFlagsDimensionMismatch)
{
    ir::UnitCheck check;
    const auto time = check.value(3.0, "us", "t");
    const auto data = check.value(8.0, "bytes", "d");
    EXPECT_TRUE(check.defects().empty());

    const auto rate = data / time; // bytes/s — fine
    EXPECT_EQ(rate.unit.bytes, 1);
    EXPECT_EQ(rate.unit.seconds, -1);
    EXPECT_TRUE(check.defects().empty());

    (void)(time + data); // seconds + bytes — dimension error
    ASSERT_EQ(check.defects().size(), 1u);
    EXPECT_NE(check.defects()[0].find("dimension mismatch"),
              std::string::npos);
}

TEST(LintIr, ExpectValueCatchesScaleSlips)
{
    ir::UnitCheck check;
    const auto t = check.value(2.0, "ms", "t");
    check.expectValue(t, "us", 2000.0, 1e-9, "t in us");
    EXPECT_TRUE(check.defects().empty());
    // A dropped factor of 1000 (classic ms-vs-us slip).
    check.expectValue(t, "us", 2.0, 1e-9, "t slipped");
    EXPECT_EQ(check.defects().size(), 1u);
    // Wrong dimension entirely (flags the dimension and the value).
    check.expectValue(t, "bytes", 2000.0, 1e-9, "t as bytes");
    EXPECT_GE(check.defects().size(), 2u);
}

// --- plans -----------------------------------------------------------

/** n GPUs on a uniform ring of 10 GB/s, 1 us links. */
td::Topology
uniformRing(int n)
{
    td::Topology topo("test-ring");
    for (int i = 0; i < n; ++i)
        topo.addNode("gpu" + std::to_string(i), td::NodeKind::Gpu);
    for (int i = 0; i < n; ++i)
        topo.addEdge(i, (i + 1) % n, td::LinkSpec{"wire", 10.0, 1.0});
    return topo;
}

TEST(LintIr, ExecutePlanReachesFullKnowledgeOnBuiltinRing)
{
    const auto ring = td::findCollective("ring");
    ASSERT_TRUE(ring.has_value());
    const td::Topology topo = uniformRing(4);
    constexpr double kBytes = 4e8;
    const auto plan = ring->plan(topo, kBytes);
    for (const auto semantics :
         {ir::StepSemantics::Snapshot, ir::StepSemantics::Sequential}) {
        const auto f = ir::executePlan(topo, plan, kBytes, semantics);
        ASSERT_EQ(f.size(), 4u);
        for (const auto &row : f)
            for (const double frac : row)
                EXPECT_GE(frac, 1.0 - 1e-9);
    }
    // Tightness: dropping the final step leaves someone short, so the
    // bound is exact for the ring, not just an upper bound.
    auto truncated = plan;
    truncated.steps.pop_back();
    const auto f = ir::executePlan(topo, truncated, kBytes,
                                   ir::StepSemantics::Snapshot);
    double min_frac = 1.0;
    for (const auto &row : f)
        for (const double frac : row)
            min_frac = std::min(min_frac, frac);
    EXPECT_LT(min_frac, 1.0 - 1e-9);
}

TEST(LintIr, CheckPlanSplitsConservationFromDeadlock)
{
    const td::Topology topo = uniformRing(3);
    constexpr double kBytes = 1e6;
    const auto g = topo.gpus();

    // Relies on intra-step order: 1->2 must see 0->1's payload.
    td::CommPlan rendezvous;
    rendezvous.steps.push_back(
        {{{g[0], g[1], kBytes}, {g[1], g[2], kBytes}}});
    rendezvous.steps.push_back(
        {{{g[2], g[0], kBytes}, {g[2], g[1], kBytes}}});
    const auto pc = ir::checkPlan(topo, rendezvous, kBytes);
    EXPECT_TRUE(pc.route.empty());
    EXPECT_TRUE(pc.conservation.empty());
    ASSERT_EQ(pc.deadlock.size(), 1u);
    EXPECT_NE(pc.deadlock[0].find("intra-step"), std::string::npos);

    // Same plan with the relay split into two steps: clean.
    td::CommPlan staged;
    staged.steps.push_back({{{g[0], g[1], kBytes}}});
    staged.steps.push_back({{{g[1], g[2], kBytes}}});
    staged.steps.push_back(
        {{{g[2], g[0], kBytes}, {g[2], g[1], kBytes}}});
    EXPECT_TRUE(ir::checkPlan(topo, staged, kBytes).clean());

    // Genuinely lossy: never conserves, regardless of ordering.
    td::CommPlan lossy;
    lossy.steps.push_back({{{g[0], g[1], kBytes}}});
    const auto lc = ir::checkPlan(topo, lossy, kBytes);
    EXPECT_FALSE(lc.conservation.empty());
    EXPECT_TRUE(lc.deadlock.empty());
}

TEST(LintIr, CheckPlanFlagsRouteDefects)
{
    const td::Topology topo = uniformRing(2);
    td::CommPlan plan;
    plan.steps.push_back({{{0, 99, 8.0}}});   // out-of-range dest
    plan.steps.push_back({});                 // dead barrier
    plan.steps.push_back({{{0, 0, 8.0}}});    // self-transfer
    plan.steps.push_back({{{0, 1, -4.0}}});   // negative payload
    const auto pc = ir::checkPlan(topo, plan, 8.0);
    EXPECT_GE(pc.route.size(), 4u);
    EXPECT_FALSE(pc.structurallySound());
    // Structurally broken plans skip the costPlan cross-check (it is
    // fatal on them) — so no contention defects, only route ones.
    EXPECT_TRUE(pc.contention.empty());
}

TEST(LintIr, RederivedCostMatchesCostPlanOnBuiltins)
{
    constexpr double kBytes = 4e8;
    for (const char *name :
         {"parameter-server", "ring", "tree", "hierarchical"}) {
        const auto coll = td::findCollective(name);
        ASSERT_TRUE(coll.has_value()) << name;
        for (const int n : {2, 4, 8}) {
            const td::Topology topo = uniformRing(n);
            const auto plan = coll->plan(topo, kBytes);
            const double live = td::costPlan(topo, plan).totalUs;
            const double derived = ir::rederivePlanCostUs(topo, plan);
            EXPECT_NEAR(derived, live, 1e-9 * live)
                << name << " at n=" << n;
        }
    }
}

// --- iteration graphs ------------------------------------------------

TEST(LintIr, IterationGraphAnchorsKernelsToOps)
{
    md::Workload w;
    w.add(md::gemmOp("fc1", 8, 64, 64));
    w.add(md::activationOp("relu", 8 * 64));
    const auto &fw = tbd::frameworks::tensorflow();
    const auto iter = tbd::perf::lowerIteration(w, fw);
    const auto graph = ir::buildIterationGraph(w, iter);
    EXPECT_TRUE(graph.structural.empty());
    ASSERT_EQ(graph.ops.size(), 2u);
    // The GEMM has all three passes; the activation owns no params,
    // so it gets no optimizer update.
    EXPECT_FALSE(graph.ops[0].forward.empty());
    EXPECT_FALSE(graph.ops[0].backward.empty());
    EXPECT_FALSE(graph.ops[0].update.empty());
    EXPECT_FALSE(graph.ops[1].forward.empty());
    EXPECT_TRUE(graph.ops[1].update.empty());
    // Anchors cover every kernel exactly once.
    std::size_t anchored = 0;
    for (const auto &node : graph.ops)
        anchored += node.forward.size() + node.backward.size() +
                    node.update.size();
    EXPECT_EQ(anchored, iter.items.size());
}

TEST(LintIr, IterationGraphReportsUnanchoredKernels)
{
    md::Workload w;
    w.add(md::gemmOp("fc1", 8, 64, 64));
    const auto &fw = tbd::frameworks::tensorflow();
    auto iter = tbd::perf::lowerIteration(w, fw);
    ASSERT_FALSE(iter.items.empty());
    iter.items[0].opIndex = 7; // out of range
    const auto graph = ir::buildIterationGraph(w, iter);
    ASSERT_EQ(graph.structural.size(), 1u);
    EXPECT_NE(graph.structural[0].find("not anchored"),
              std::string::npos);
}

TEST(LintIr, ProvenanceIsFingerprintNeutral)
{
    // phase/opIndex are analysis metadata: scrubbing them must not
    // change the fingerprint that licenses steady-state replay.
    md::Workload w;
    w.add(md::gemmOp("fc1", 8, 64, 64));
    const auto &fw = tbd::frameworks::tensorflow();
    auto iter = tbd::perf::lowerIteration(w, fw);
    const auto before = tbd::perf::fingerprintIteration(iter);
    for (auto &item : iter.items) {
        item.phase = tbd::perf::LowerPhase::Autotune;
        item.opIndex = -1;
    }
    EXPECT_EQ(tbd::perf::fingerprintIteration(iter), before);
}

} // namespace
