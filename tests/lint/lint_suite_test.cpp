/**
 * @file
 * The gate the tentpole promises: the shipped nine-workload suite must
 * produce zero error-level lint findings, and the committed
 * tests/lint/baseline.json must exactly describe what the linter
 * reports today (so CI fails on any *new* finding, and stale entries
 * are caught here instead of rotting).
 */

#include "lint/lint.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iterator>

#include "lint/rule.h"
#include "models/model_desc.h"
#include "perf/simulator.h"
#include "util/logging.h"

#ifndef TBD_LINT_BASELINE
#define TBD_LINT_BASELINE "tests/lint/baseline.json"
#endif

namespace tl = tbd::lint;
namespace md = tbd::models;

namespace {

const tl::LintReport &
suiteReport()
{
    // Building the suite context lowers every model x framework pair;
    // do it once for the whole binary.
    static const tl::LintReport report = tl::lintSuite();
    return report;
}

tbd::util::json::Value
readBaseline()
{
    std::ifstream is(TBD_LINT_BASELINE);
    EXPECT_TRUE(is.good()) << "missing " << TBD_LINT_BASELINE;
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    return tbd::util::json::Value::parse(text);
}

TEST(LintSuite, ShippedSuiteHasNoErrorFindings)
{
    const auto &report = suiteReport();
    EXPECT_TRUE(report.clean(tl::Severity::Error)) << report.summary();
}

TEST(LintSuite, EveryRuleRunsOverTheWholeRegistry)
{
    const auto &report = suiteReport();
    EXPECT_EQ(report.rulesRun,
              tl::RuleRegistry::builtin().rules().size());
    EXPECT_EQ(report.modelsChecked, md::allModels().size());
    // Each model lowers on every implementing framework.
    std::size_t expected = 0;
    for (const auto *model : md::allModels())
        expected += model->frameworks.size();
    EXPECT_EQ(report.loweringsChecked, expected);
}

TEST(LintSuite, CommittedBaselineMatchesExactly)
{
    const auto &report = suiteReport();
    const auto keys = tl::baselineKeys(readBaseline());
    const tl::BaselineDiff diff =
        tl::diffAgainstBaseline(report, keys, tl::Severity::Info);
    for (const auto &f : diff.fresh)
        ADD_FAILURE() << "finding not in baseline (rebaseline with "
                         "tbd_lint run --json): "
                      << tl::findingKey(f);
    for (const auto &key : diff.stale)
        ADD_FAILURE() << "stale baseline entry: " << key;
}

TEST(LintSuite, JsonReportRoundTripsAsBaseline)
{
    const auto &report = suiteReport();
    const auto json = report.toJson();
    EXPECT_TRUE(json.has("findings"));
    EXPECT_TRUE(json.has("counts"));
    const auto keys = tl::baselineKeys(json);
    EXPECT_EQ(keys.size() <= report.findings.size(), true);
    // A report diffed against its own keys is clean by construction.
    const tl::BaselineDiff diff =
        tl::diffAgainstBaseline(report, keys, tl::Severity::Info);
    EXPECT_TRUE(diff.clean());
    EXPECT_TRUE(diff.stale.empty());
}

TEST(LintSuite, FindingKeyIgnoresDetail)
{
    tl::Finding a;
    a.rule = "kernel.roofline";
    a.object = "ResNet-50/TensorFlow";
    a.detail = "one wording";
    tl::Finding b = a;
    b.detail = "another wording";
    EXPECT_EQ(tl::findingKey(a), tl::findingKey(b));
}

TEST(LintSuite, SeverityNamesRoundTrip)
{
    using tl::Severity;
    for (const auto s :
         {Severity::Info, Severity::Warning, Severity::Error})
        EXPECT_EQ(tl::severityFromName(tl::severityName(s)), s);
    EXPECT_FALSE(tl::severityFromName("fatal").has_value());
}

TEST(LintSuite, LintEnabledReadsEnvironment)
{
    ::unsetenv("TBD_LINT");
    EXPECT_FALSE(tl::lintEnabled());
    ::setenv("TBD_LINT", "0", 1);
    EXPECT_FALSE(tl::lintEnabled());
    ::setenv("TBD_LINT", "1", 1);
    EXPECT_TRUE(tl::lintEnabled());
    ::unsetenv("TBD_LINT");
}

TEST(LintSuite, PreRunLintPassesOnCleanRegistry)
{
    // The shipped registry is clean, so the prologue must not veto a
    // simulation (a dirty registry would make it throw PanicError).
    tl::installPreRunLint();
    tbd::perf::RunConfig config;
    config.model = &md::resnet50();
    config.framework = tbd::frameworks::FrameworkId::TensorFlow;
    config.gpu = tbd::gpusim::quadroP4000();
    config.batch = 2;
    config.warmupIterations = 1;
    config.sampleIterations = 1;
    EXPECT_NO_THROW(tbd::perf::PerfSimulator().run(config));
}

} // namespace
