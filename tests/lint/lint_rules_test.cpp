/**
 * @file
 * One fixture per builtin lint rule, each constructed to *fire* it:
 * the rule set is only trustworthy if every rule demonstrably catches
 * the defect it claims to. Fixtures build a LintContext by hand around
 * synthetic ModelDescs (or tamper with a lowered context), never
 * touching the shipped registry.
 */

#include "lint/rule.h"

#include <gtest/gtest.h>

#include "lint/lint.h"
#include "lint_test_util.h"
#include "models/model_desc.h"
#include "util/logging.h"

namespace tl = tbd::lint;
namespace md = tbd::models;
namespace fw = tbd::frameworks;
namespace tg = tbd::gpusim;
namespace mp = tbd::memprof;

namespace {

using tbd::lint_test::countRule;

tl::LintReport
runRules(const tl::LintContext &ctx, const tl::LintOptions &options = {})
{
    return tl::RuleRegistry::builtin().run(ctx, options);
}

using tbd::lint_test::cleanModel;

TEST(LintRules, MetadataFiresOnIncompleteModel)
{
    md::ModelDesc broken; // empty name, null dataset, no describe, ...
    broken.unitsPerSample = 0.0;
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(broken);
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "model.metadata");
    EXPECT_GE(countRule(report, "model.metadata"), 4u);
}

TEST(LintRules, MetadataCleanOnFixtureModel)
{
    const md::ModelDesc m = cleanModel("fx-clean");
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    const auto report = runRules(ctx);
    EXPECT_EQ(countRule(report, "model.metadata"), 0u);
}

TEST(LintRules, BatchSweepFiresOnDisorder)
{
    md::ModelDesc m = cleanModel("fx-sweep");
    m.batchSweep = {4, 2, -1}; // descending + non-positive
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "model.batch-sweep");
    EXPECT_GE(countRule(report, "model.batch-sweep"), 2u);
}

TEST(LintRules, DuplicateOpFiresOnNameCollision)
{
    md::ModelDesc m = cleanModel("fx-dup");
    m.describe = [](std::int64_t batch) {
        md::Workload w;
        w.add(md::gemmOp("fc", batch * 8, 64, 64));
        w.add(md::gemmOp("fc", batch * 8, 64, 64));
        return w;
    };
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "model.duplicate-op");
    EXPECT_EQ(countRule(report, "model.duplicate-op"), 1u);
}

TEST(LintRules, DanglingInputFiresOnUnknownReference)
{
    md::ModelDesc m = cleanModel("fx-dangle");
    m.describe = [](std::int64_t batch) {
        md::Workload w;
        md::OpDesc op = md::gemmOp("fc", batch * 8, 64, 64);
        op.inputs.push_back("no_such_op");
        w.add(std::move(op));
        return w;
    };
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "model.dangling-input");
    EXPECT_EQ(countRule(report, "model.dangling-input"), 1u);
}

TEST(LintRules, InputCycleFiresOnForwardReference)
{
    md::ModelDesc m = cleanModel("fx-cycle");
    m.describe = [](std::int64_t batch) {
        md::Workload w;
        md::OpDesc a = md::gemmOp("a", batch * 8, 64, 64);
        a.inputs.push_back("b"); // consumes an op scheduled later
        w.add(std::move(a));
        w.add(md::gemmOp("b", batch * 8, 64, 64));
        return w;
    };
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "model.input-cycle");
    EXPECT_EQ(countRule(report, "model.input-cycle"), 1u);
}

TEST(LintRules, InputCycleFiresOnSelfReference)
{
    md::ModelDesc m = cleanModel("fx-self");
    m.describe = [](std::int64_t batch) {
        md::Workload w;
        md::OpDesc a = md::gemmOp("a", batch * 8, 64, 64);
        a.inputs.push_back("a");
        w.add(std::move(a));
        return w;
    };
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    const auto report = runRules(ctx);
    EXPECT_EQ(countRule(report, "model.input-cycle"), 1u);
}

TEST(LintRules, ParamAccountingFiresOnDeclaredParamDrift)
{
    const md::ModelDesc m = cleanModel("fx-params");
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    ASSERT_FALSE(ctx.lowered.empty());
    // The lowered stream was built from the untampered workload; bump
    // the declared count afterwards so they disagree.
    ctx.lowered[0].workload.ops[0].params += 1;
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "model.param-accounting");
}

TEST(LintRules, KernelNonpositiveFiresOnNegativeFlops)
{
    const md::ModelDesc m = cleanModel("fx-negflops");
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    ASSERT_FALSE(ctx.lowered.empty());
    ASSERT_FALSE(ctx.lowered[0].training.items.empty());
    ctx.lowered[0].training.items[0].kernel.flops = -5.0;
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "kernel.nonpositive");
}

TEST(LintRules, KernelEfficiencyFiresAboveOne)
{
    const md::ModelDesc m = cleanModel("fx-eff");
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    ASSERT_FALSE(ctx.lowered.empty());
    ASSERT_FALSE(ctx.lowered[0].training.items.empty());
    ctx.lowered[0].training.items[0].kernel.computeEff = 1.5;
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "kernel.efficiency");
}

TEST(LintRules, RooflineFiresOnDegenerateDevice)
{
    const md::ModelDesc m = cleanModel("fx-roofline");
    tl::LintContext ctx = tl::emptyContext();
    // A GPU with zero peak rate makes every compute-bound duration
    // infinite — the roofline rule must catch the resulting
    // non-finite timings (device.spec flags the spec itself).
    tg::GpuSpec dead;
    dead.name = "Dead GPU";
    dead.multiprocessors = 1;
    dead.coreCount = 0;
    dead.maxClockMHz = 0.0;
    dead.memoryGiB = 8.0;
    dead.memoryBwGBs = 100.0;
    ctx.gpus = {&dead};
    ctx.addModel(m);
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "kernel.roofline");
}

TEST(LintRules, RooflineCleanOnRealDevices)
{
    const md::ModelDesc m = cleanModel("fx-roofline-clean");
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    const auto report = runRules(ctx);
    EXPECT_EQ(countRule(report, "kernel.roofline"), 0u);
}

TEST(LintRules, CatalogUnknownFiresOnUncataloguedName)
{
    const md::ModelDesc m = cleanModel("fx-unknown");
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    ASSERT_FALSE(ctx.lowered.empty());
    ASSERT_FALSE(ctx.lowered[0].training.items.empty());
    ctx.lowered[0].training.items[0].kernel.name =
        tg::KernelName("mystery_kernel(fc)");
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "catalog.unknown-kernel");
}

TEST(LintRules, CatalogOrphanFiresOnUnreachedEntries)
{
    // A GEMM-only context never lowers to the conv/pool/batch-norm
    // kernels the fixed catalog carries.
    const md::ModelDesc m = cleanModel("fx-orphan");
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "catalog.orphan");
}

TEST(LintRules, MemoryConservationFiresOnTamperedBreakdown)
{
    const md::ModelDesc m = cleanModel("fx-memtamper");
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    ASSERT_FALSE(ctx.lowered.empty());
    ctx.lowered[0].memory.peakBytes[static_cast<std::size_t>(
        mp::MemCategory::Workspace)] += 1024;
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "memory.conservation");
}

TEST(LintRules, MemoryConservationFiresOnZeroFootprint)
{
    const md::ModelDesc m = cleanModel("fx-memzero");
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    ASSERT_FALSE(ctx.lowered.empty());
    ctx.lowered[0].memory = mp::MemoryBreakdown{};
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "memory.conservation");
}

TEST(LintRules, MemoryParamBytesFiresOnMissingWeights)
{
    const md::ModelDesc m = cleanModel("fx-noweights");
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    ASSERT_FALSE(ctx.lowered.empty());
    ctx.lowered[0].memory.peakBytes[static_cast<std::size_t>(
        mp::MemCategory::Weights)] = 0;
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "memory.param-bytes");
}

TEST(LintRules, MinBatchOomFiresWhenNothingFits)
{
    md::ModelDesc m = cleanModel("fx-hugemin");
    m.describe = [](std::int64_t) {
        md::Workload w;
        // ~40 GB of stashed activations: no Table 4 device holds it.
        w.add(md::elementwiseOp("blob", 10'000'000'000));
        return w;
    };
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "sweep.min-batch-oom");
}

TEST(LintRules, StaticOomInventoriesInfeasibleCells)
{
    md::ModelDesc m = cleanModel("fx-bigsweep");
    m.batchSweep = {1, 1024};
    m.describe = [](std::int64_t batch) {
        md::Workload w;
        // ~200 MB per batch unit: batch 1 fits, batch 1024 cannot.
        w.add(md::elementwiseOp("blob", batch * 50'000'000));
        return w;
    };
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    const auto report = runRules(ctx);
    EXPECT_EQ(countRule(report, "sweep.min-batch-oom"), 0u);
    EXPECT_RULE_FIRES(report, "sweep.static-oom");
}

TEST(LintRules, InternDefectsFlagCollisions)
{
    RULE_FIRES_VIA_PURE_FN("intern.collision");
    EXPECT_TRUE(tl::internTableDefects({"", "a", "b"}).empty());
    EXPECT_FALSE(tl::internTableDefects({"", "a", "a"}).empty());
    EXPECT_FALSE(tl::internTableDefects({"x"}).empty());
}

TEST(LintRules, InternRuleCleanOnLiveTable)
{
    const auto report = runRules(tl::emptyContext());
    EXPECT_EQ(countRule(report, "intern.collision"), 0u);
}

TEST(LintRules, StoreKeyDefectsFlagUncoveredFields)
{
    RULE_FIRES_VIA_PURE_FN("store.key-completeness");
    EXPECT_TRUE(tl::storeKeyCoverageDefects({}).empty());
    EXPECT_TRUE(
        tl::storeKeyCoverageDefects({{"perf::RunConfig", 11, 11}})
            .empty());
    // A struct that grew past its key snapshot trips the rule —
    // whether the key is behind (new field) or ahead (stale constant).
    const auto behind =
        tl::storeKeyCoverageDefects({{"perf::RunConfig", 12, 11}});
    ASSERT_EQ(behind.size(), 1u);
    EXPECT_NE(behind.front().find("perf::RunConfig"),
              std::string::npos);
    EXPECT_NE(behind.front().find("12"), std::string::npos);
    EXPECT_NE(behind.front().find("11"), std::string::npos);
    EXPECT_FALSE(
        tl::storeKeyCoverageDefects({{"dist::DistConfig", 5, 6}})
            .empty());
    // Multiple mismatches report once each.
    EXPECT_EQ(tl::storeKeyCoverageDefects({{"a", 2, 1}, {"b", 3, 3},
                                           {"c", 4, 5}})
                  .size(),
              2u);
}

TEST(LintRules, StoreKeyRuleCleanOnLiveStructs)
{
    // The live counts match the snapshots (the same invariant
    // StoreTest.FieldCountProbesMatchTheLiveStructs pins): the rule
    // stays silent until a config struct grows a field.
    const auto report = runRules(tl::emptyContext());
    EXPECT_EQ(countRule(report, "store.key-completeness"), 0u);
}

TEST(LintRules, DeviceSpecFiresOnBrokenGpu)
{
    tl::LintContext ctx = tl::emptyContext();
    tg::GpuSpec bad;
    bad.name = "Bad GPU";
    bad.multiprocessors = -1;
    bad.coreCount = 256;
    bad.maxClockMHz = 0.0;
    ctx.gpus = {&bad};
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "device.spec");
}

TEST(LintRules, DeviceSpecCleanOnShippedTables)
{
    const auto report = runRules(tl::emptyContext());
    EXPECT_EQ(countRule(report, "device.spec"), 0u);
}

TEST(LintRules, FrameworkProfileFiresOnBrokenPersonality)
{
    tl::LintContext ctx = tl::emptyContext();
    fw::FrameworkProfile bad = fw::tensorflow();
    bad.name = "Broken";
    bad.gemmEff = 1.5;
    bad.launchOverheadUs = -1.0;
    bad.allocatorSlack = 0.5;
    bad.gemmKernel.clear();
    ctx.frameworks = {&bad};
    const auto report = runRules(ctx);
    EXPECT_RULE_FIRES(report, "framework.profile");
    EXPECT_GE(countRule(report, "framework.profile"), 4u);
}

TEST(LintRules, SuppressionWaivesModelFinding)
{
    md::ModelDesc m = cleanModel("fx-suppress");
    m.describe = [](std::int64_t batch) {
        md::Workload w;
        md::OpDesc op = md::gemmOp("fc", batch * 8, 64, 64);
        op.inputs.push_back("no_such_op");
        w.add(std::move(op));
        return w;
    };
    m.lintSuppress = {"model.dangling-input"};
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    const auto report = runRules(ctx);
    EXPECT_EQ(countRule(report, "model.dangling-input"), 0u);
    EXPECT_GE(report.suppressed, 1u);
}

TEST(LintRules, SuppressionNarrowsToObjectSubstring)
{
    md::ModelDesc m = cleanModel("fx-narrow");
    m.describe = [](std::int64_t batch) {
        md::Workload w;
        md::OpDesc alpha = md::gemmOp("alpha", batch * 8, 64, 64);
        alpha.inputs.push_back("no_such_op");
        w.add(std::move(alpha));
        md::OpDesc beta = md::gemmOp("beta", batch * 8, 64, 64);
        beta.inputs.push_back("no_such_op");
        w.add(std::move(beta));
        return w;
    };
    m.lintSuppress = {"model.dangling-input=:alpha"};
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    const auto report = runRules(ctx);
    EXPECT_EQ(countRule(report, "model.dangling-input"), 1u);
    EXPECT_EQ(report.suppressed, 1u);
    // A substring needle still works, but only via the deprecated
    // fallback — the report says so until the annotation is migrated.
    EXPECT_EQ(report.deprecatedSuppressions, 1u);
    EXPECT_NE(report.summary().find("deprecated"), std::string::npos);
}

TEST(LintRules, SuppressionExactObjectIdIsNotDeprecated)
{
    md::ModelDesc m = cleanModel("fx-exactsup");
    m.describe = [](std::int64_t batch) {
        md::Workload w;
        md::OpDesc alpha = md::gemmOp("alpha", batch * 8, 64, 64);
        alpha.inputs.push_back("no_such_op");
        w.add(std::move(alpha));
        md::OpDesc beta = md::gemmOp("beta", batch * 8, 64, 64);
        beta.inputs.push_back("no_such_op");
        w.add(std::move(beta));
        return w;
    };
    // Full object id ("<model>:<op>"): an exact match, no fallback,
    // and it cannot alias onto the beta finding.
    m.lintSuppress = {"model.dangling-input=fx-exactsup:alpha"};
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    const auto report = runRules(ctx);
    EXPECT_EQ(countRule(report, "model.dangling-input"), 1u);
    EXPECT_EQ(report.suppressed, 1u);
    EXPECT_EQ(report.deprecatedSuppressions, 0u);
}

TEST(LintRules, DisabledRuleDoesNotRun)
{
    md::ModelDesc m = cleanModel("fx-disable");
    m.batchSweep = {}; // would fire model.batch-sweep
    tl::LintContext ctx = tl::emptyContext();
    ctx.addModel(m);
    tl::LintOptions options;
    options.disabledRules.insert("model.batch-sweep");
    const auto report = runRules(ctx, options);
    EXPECT_EQ(countRule(report, "model.batch-sweep"), 0u);
    EXPECT_EQ(report.rulesRun,
              tl::RuleRegistry::builtin().rules().size() - 1);
}

TEST(LintRules, RegistryRejectsMalformedRules)
{
    tl::RuleRegistry registry;
    tl::Rule rule;
    rule.id = "no-dot";
    rule.run = [](const tl::LintContext &, tl::Sink &) {};
    EXPECT_THROW(registry.add(rule), tbd::util::FatalError);
    rule.id = "a.b";
    registry.add(rule);
    EXPECT_THROW(registry.add(rule), tbd::util::FatalError); // duplicate
}

TEST(LintRules, EveryBuiltinRuleIsWellFormed)
{
    const auto &rules = tl::RuleRegistry::builtin().rules();
    EXPECT_GE(rules.size(), 10u);
    for (const auto &rule : rules) {
        EXPECT_NE(rule.id.find('.'), std::string::npos) << rule.id;
        EXPECT_FALSE(rule.category.empty()) << rule.id;
        EXPECT_FALSE(rule.description.empty()) << rule.id;
        EXPECT_TRUE(static_cast<bool>(rule.run)) << rule.id;
    }
}

} // namespace
