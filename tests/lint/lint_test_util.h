/**
 * @file
 * Shared helpers for the lint test binary. The EXPECT_RULE_FIRES /
 * RULE_FIRES_VIA_PURE_FN macros double as machine-readable coverage
 * markers: lint_meta_test.cpp scans the test sources for them and
 * fails if any registered rule id lacks a firing demonstration, so a
 * new rule cannot land without a fixture proving it catches its
 * defect.
 */

#ifndef TBD_TESTS_LINT_LINT_TEST_UTIL_H
#define TBD_TESTS_LINT_LINT_TEST_UTIL_H

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "dist/collective.h"
#include "dist/topology.h"
#include "lint/lint.h"
#include "lint/rule.h"
#include "models/model_desc.h"

namespace tbd::lint_test {

/** Findings a report holds for one rule id. */
inline std::size_t
countRule(const tbd::lint::LintReport &report, const std::string &id)
{
    std::size_t n = 0;
    for (const auto &f : report.findings)
        n += f.rule == id ? 1 : 0;
    return n;
}

/** First finding of a rule, or nullptr. */
inline const tbd::lint::Finding *
firstFinding(const tbd::lint::LintReport &report, const std::string &id)
{
    for (const auto &f : report.findings) {
        if (f.rule == id)
            return &f;
    }
    return nullptr;
}

/** A well-formed single-GEMM fixture model the rules accept. */
inline tbd::models::ModelDesc
cleanModel(const std::string &name)
{
    tbd::models::ModelDesc m;
    m.name = name;
    m.application = "Fixture";
    m.dominantLayer = "GEMM";
    m.layerCount = 1;
    m.frameworks = {tbd::frameworks::FrameworkId::TensorFlow};
    m.dataset = tbd::models::resnet50().dataset;
    m.batchSweep = {1};
    m.describe = [](std::int64_t batch) {
        tbd::models::Workload w;
        w.add(tbd::models::gemmOp("fc", batch * 8, 64, 64));
        return w;
    };
    return m;
}

/**
 * Registers a (deliberately broken) collective for one test and
 * restores the process-wide registry on scope exit, so the cached
 * shipped-suite report and later fixtures never see it.
 */
class ScopedCollective
{
  public:
    explicit ScopedCollective(tbd::dist::CollectiveSpec spec)
        : name_(spec.name)
    {
        tbd::dist::registerCollective(std::move(spec));
    }
    ~ScopedCollective() { tbd::dist::unregisterCollective(name_); }
    ScopedCollective(const ScopedCollective &) = delete;
    ScopedCollective &operator=(const ScopedCollective &) = delete;

  private:
    std::string name_;
};

/** Scoped topology registration; see ScopedCollective. */
class ScopedTopology
{
  public:
    explicit ScopedTopology(tbd::dist::TopologySpec spec)
        : name_(spec.name)
    {
        tbd::dist::registerTopology(std::move(spec));
    }
    ~ScopedTopology() { tbd::dist::unregisterTopology(name_); }
    ScopedTopology(const ScopedTopology &) = delete;
    ScopedTopology &operator=(const ScopedTopology &) = delete;

  private:
    std::string name_;
};

} // namespace tbd::lint_test

/**
 * Assert a rule fired at least once in `report` AND mark the rule as
 * fixture-covered for lint_meta_test's source scan. The rule id must
 * appear as a string literal at the call site for the scan to see it.
 */
#define EXPECT_RULE_FIRES(report, id)                                  \
    EXPECT_GE(tbd::lint_test::countRule((report), (id)), 1u)           \
        << "expected lint rule '" << (id) << "' to fire"

/**
 * Coverage marker for rules whose inputs are process-global and
 * cannot be faked from a fixture context (the live intern table, the
 * live store key constants): the firing proof is the adjacent test of
 * the rule's exported pure defect function.
 */
#define RULE_FIRES_VIA_PURE_FN(id)                                     \
    SUCCEED() << "rule '" << (id)                                      \
              << "' firing proven via its pure defect function"

#endif // TBD_TESTS_LINT_LINT_TEST_UTIL_H
