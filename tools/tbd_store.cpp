/**
 * @file
 * `tbd_store` — persistent simulation-store maintenance CLI
 * (DESIGN.md §16).
 *
 *   tbd_store stats  [dir]
 *   tbd_store verify [dir]
 *   tbd_store gc     [dir]
 *   tbd_store clear  [dir]
 *
 * `dir` defaults to the active store root (TBD_STORE=<path> or
 * `.tbd-store`). `stats` summarizes entry counts, kinds, bytes and
 * epoch currency. `verify` re-validates every entry (header, payload
 * checksum, blob decode) and exits non-zero when any entry is corrupt
 * — the CI store job anchors on it. `gc` removes invalid and
 * stale-epoch entries, keeping current ones. `clear` removes every
 * entry.
 */

#include <cstdio>
#include <string>

#include "store/store.h"

using namespace tbd;

namespace {

int
usage()
{
    std::fprintf(stderr, "usage:\n"
                         "  tbd_store stats  [dir]\n"
                         "  tbd_store verify [dir]\n"
                         "  tbd_store gc     [dir]\n"
                         "  tbd_store clear  [dir]\n");
    return 2;
}

int
runStats(const std::string &dir)
{
    const auto entries = store::scanStore(dir);
    std::int64_t runs = 0;
    std::int64_t dists = 0;
    std::int64_t invalid = 0;
    std::int64_t stale = 0;
    std::uint64_t bytes = 0;
    for (const auto &entry : entries) {
        bytes += entry.bytes;
        if (!entry.valid) {
            ++invalid;
            continue;
        }
        if (!entry.epochCurrent)
            ++stale;
        if (entry.kind == "run")
            ++runs;
        else if (entry.kind == "dist")
            ++dists;
    }
    std::printf("store %s (epoch %s)\n", dir.c_str(),
                store::storeEpoch().c_str());
    std::printf("  entries      %zu (%llu bytes)\n", entries.size(),
                static_cast<unsigned long long>(bytes));
    std::printf("  run results  %lld\n", static_cast<long long>(runs));
    std::printf("  dist results %lld\n", static_cast<long long>(dists));
    std::printf("  stale epoch  %lld\n", static_cast<long long>(stale));
    std::printf("  invalid      %lld\n",
                static_cast<long long>(invalid));
    return 0;
}

int
runVerify(const std::string &dir)
{
    const auto entries = store::scanStore(dir);
    std::int64_t invalid = 0;
    for (const auto &entry : entries) {
        if (entry.valid)
            continue;
        ++invalid;
        std::fprintf(stderr, "corrupt: %s (%s)\n", entry.path.c_str(),
                     entry.problem.c_str());
    }
    std::printf("verified %zu entries, %lld corrupt\n", entries.size(),
                static_cast<long long>(invalid));
    return invalid > 0 ? 1 : 0;
}

int
runGc(const std::string &dir)
{
    const store::GcStats stats = store::gcStore(dir);
    std::printf("gc %s: removed %lld invalid + %lld stale, "
                "kept %lld (%llu bytes)\n",
                dir.c_str(),
                static_cast<long long>(stats.removedInvalid),
                static_cast<long long>(stats.removedStale),
                static_cast<long long>(stats.kept),
                static_cast<unsigned long long>(stats.keptBytes));
    return 0;
}

int
runClear(const std::string &dir)
{
    const std::int64_t removed = store::clearStore(dir);
    std::printf("cleared %s: removed %lld entries\n", dir.c_str(),
                static_cast<long long>(removed));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || argc > 3)
        return usage();
    const std::string command = argv[1];
    const std::string dir = argc == 3 ? argv[2] : store::storeDir();
    if (command == "stats")
        return runStats(dir);
    if (command == "verify")
        return runVerify(dir);
    if (command == "gc")
        return runGc(dir);
    if (command == "clear")
        return runClear(dir);
    return usage();
}
