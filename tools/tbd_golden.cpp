/**
 * @file
 * `tbd_golden` — golden-trace maintenance CLI.
 *
 *   tbd_golden check [dir]        compare all workloads to the goldens
 *   tbd_golden rebaseline [dir]   regenerate the committed goldens
 *   tbd_golden print <model>      dump one canonical record as JSON
 *   tbd_golden dist-check [dir]       compare the dist scaling cells
 *   tbd_golden dist-rebaseline [dir]  regenerate the dist goldens
 *
 * `dir` defaults to the repository's tests/golden/ (baked in at build
 * time). `check` exits non-zero when any record drifted or a file is
 * missing; `rebaseline` (also spelled `--rebaseline`) rewrites every
 * file and is the intended workflow after a deliberate simulator
 * change.
 */

#include <cstdio>
#include <string>

#include "check/dist_golden.h"
#include "check/golden.h"
#include "check/invariants.h"
#include "models/model_desc.h"
#include "util/logging.h"

#ifndef TBD_GOLDEN_DIR
#define TBD_GOLDEN_DIR "tests/golden"
#endif

using namespace tbd;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  tbd_golden check [dir]\n"
                 "  tbd_golden rebaseline [dir]\n"
                 "  tbd_golden print <model>\n"
                 "  tbd_golden dist-check [dir]\n"
                 "  tbd_golden dist-rebaseline [dir]\n"
                 "\ndefault dir: %s\n",
                 TBD_GOLDEN_DIR);
    return 2;
}

std::string
goldenPath(const std::string &dir, const check::GoldenRecord &record)
{
    return dir + "/" + check::goldenFileName(record);
}

int
cmdCheck(const std::string &dir)
{
    int drifted = 0;
    for (const auto *model : models::allModels()) {
        const check::GoldenRecord actual =
            check::captureCanonical(*model);
        const std::string path = goldenPath(dir, actual);
        check::GoldenRecord expected;
        try {
            expected = check::readGoldenFile(path);
        } catch (const util::FatalError &e) {
            std::printf("MISSING  %-16s %s\n", model->name.c_str(),
                        e.what());
            ++drifted;
            continue;
        }
        const check::GoldenDiff diff =
            check::compareGolden(expected, actual);
        if (diff.ok()) {
            std::printf("OK       %-16s %s\n", model->name.c_str(),
                        check::goldenFileName(actual).c_str());
        } else {
            std::printf("DRIFTED  %-16s %s\n%s", model->name.c_str(),
                        check::goldenFileName(actual).c_str(),
                        diff.summary().c_str());
            ++drifted;
        }
    }
    if (drifted) {
        std::printf("\n%d workload(s) drifted from the goldens. If the "
                    "change is intentional, run:\n  tbd_golden "
                    "rebaseline\n",
                    drifted);
        return 1;
    }
    std::printf("\nall %zu workloads match the goldens\n",
                models::allModels().size());
    return 0;
}

int
cmdRebaseline(const std::string &dir)
{
    for (const auto *model : models::allModels()) {
        // Refuse to baseline a simulation that breaks its own
        // conservation laws.
        const perf::RunConfig config = check::canonicalConfig(*model);
        const perf::RunResult result =
            perf::PerfSimulator().run(config);
        const check::CheckReport audit =
            check::validateRunResult(config, result);
        if (!audit.ok()) {
            std::fprintf(stderr,
                         "refusing to rebaseline %s: invariants "
                         "violated\n%s",
                         model->name.c_str(), audit.summary().c_str());
            return 1;
        }
        const check::GoldenRecord record =
            check::captureGolden(config, result);
        const std::string path = goldenPath(dir, record);
        check::writeGoldenFile(path, record);
        std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}

int
cmdPrint(const std::string &modelName)
{
    const auto &model = models::modelByName(modelName);
    const check::GoldenRecord record = check::captureCanonical(model);
    std::printf("%s", check::goldenToJson(record).dump(2).c_str());
    return 0;
}

int
cmdDistCheck(const std::string &dir)
{
    int drifted = 0;
    for (const auto &actual : check::captureDistGoldens()) {
        const std::string path =
            dir + "/" + check::distGoldenFileName(actual);
        check::DistGoldenRecord expected;
        try {
            expected = check::readDistGoldenFile(path);
        } catch (const util::FatalError &e) {
            std::printf("MISSING  %-24s %s\n", actual.topology.c_str(),
                        e.what());
            ++drifted;
            continue;
        }
        const check::GoldenDiff diff =
            check::compareDistGolden(expected, actual);
        if (diff.ok()) {
            std::printf("OK       %-24s %s\n", actual.topology.c_str(),
                        check::distGoldenFileName(actual).c_str());
        } else {
            std::printf("DRIFTED  %-24s %s\n%s",
                        actual.topology.c_str(),
                        check::distGoldenFileName(actual).c_str(),
                        diff.summary().c_str());
            ++drifted;
        }
    }
    if (drifted) {
        std::printf("\n%d dist cell(s) drifted from the goldens. If "
                    "the change is intentional, run:\n  tbd_golden "
                    "dist-rebaseline\n",
                    drifted);
        return 1;
    }
    std::printf("\nall dist scaling cells match the goldens\n");
    return 0;
}

int
cmdDistRebaseline(const std::string &dir)
{
    for (const auto &record : check::captureDistGoldens()) {
        const std::string path =
            dir + "/" + check::distGoldenFileName(record);
        check::writeDistGoldenFile(path, record);
        std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    const std::string dir = argc > 2 ? argv[2] : TBD_GOLDEN_DIR;
    try {
        if (cmd == "check")
            return cmdCheck(dir);
        if (cmd == "rebaseline" || cmd == "--rebaseline")
            return cmdRebaseline(dir);
        if (cmd == "print" && argc > 2)
            return cmdPrint(argv[2]);
        if (cmd == "dist-check")
            return cmdDistCheck(dir);
        if (cmd == "dist-rebaseline")
            return cmdDistRebaseline(dir);
    } catch (const util::FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
