/**
 * @file
 * `tbd_lint` — static analyzer CLI over the model/catalog registry.
 *
 *   tbd_lint run [options]      lint the shipped suite
 *   tbd_lint rules              list the builtin rules
 *   tbd_lint explain <rule.id>  why a rule exists and how to fix it
 *
 * run options:
 *   --json                 machine-readable report on stdout
 *   --severity <level>     exit-gate level: info|warning|error
 *                          (default error)
 *   --baseline <file>      diff against a committed baseline: only
 *                          findings absent from it count against the
 *                          gate (stale baseline keys are reported so
 *                          the file can be pruned)
 *   --suppress <rule.id>   disable a rule for this invocation
 *                          (repeatable)
 *   --analysis <spec>      deep-analysis families to run at full
 *                          config-space depth: "all", "none" (core
 *                          rules only), or a comma list of family
 *                          names (`tbd_lint rules` tags each rule
 *                          with its family). Default: every family
 *                          at shallow depth — the cheap pre-run
 *                          hook configuration.
 *
 * Exit status: 0 clean, 1 gated findings (or fatal analysis error),
 * 2 usage. Without --baseline the gate counts every finding at or
 * above --severity; CI runs `--severity info --baseline
 * tests/lint/baseline.json` so any *new* finding fails the build,
 * plus a deep job with `--analysis all`.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>
#include <string>

#include "lint/lint.h"
#include "lint/rule.h"
#include "util/logging.h"

using namespace tbd;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  tbd_lint run [--json] [--severity info|warning|"
                 "error]\n"
                 "               [--baseline <file>] [--suppress "
                 "<rule.id>]...\n"
                 "               [--analysis all|none|<family>[,"
                 "<family>]...]\n"
                 "  tbd_lint rules\n"
                 "  tbd_lint explain <rule.id>\n");
    return 2;
}

util::json::Value
loadBaseline(const std::string &path)
{
    std::ifstream is(path);
    TBD_CHECK(is.good(), "cannot open lint baseline '", path, "'");
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    return util::json::Value::parse(text);
}

/**
 * Parse an --analysis spec into LintOptions. "all" and explicit
 * family lists switch to Full depth: asking for an analysis by name
 * means wanting its whole config space, while the default (every
 * family, Shallow) keeps the pre-run hook cheap.
 */
bool
applyAnalysisSpec(const std::string &spec, lint::LintOptions &options)
{
    if (spec == "all") {
        options.analyses.reset();
        options.depth = lint::AnalysisDepth::Full;
        return true;
    }
    if (spec == "none") {
        options.analyses = std::set<std::string>{};
        return true;
    }
    const auto known = lint::RuleRegistry::builtin().analyses();
    std::set<std::string> picked;
    std::size_t start = 0;
    while (start <= spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::string family =
            spec.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        if (family.empty() ||
            std::find(known.begin(), known.end(), family) ==
                known.end()) {
            std::fprintf(stderr, "unknown analysis family '%s'; ",
                         family.c_str());
            std::fprintf(stderr, "known:");
            for (const auto &name : known)
                std::fprintf(stderr, " %s", name.c_str());
            std::fprintf(stderr, "\n");
            return false;
        }
        picked.insert(family);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    options.analyses = std::move(picked);
    options.depth = lint::AnalysisDepth::Full;
    return true;
}

int
cmdRules()
{
    for (const auto &rule : lint::RuleRegistry::builtin().rules()) {
        const std::string family =
            rule.analysis.empty() ? "core" : rule.analysis;
        std::printf("%-24s %-8s %-9s %s\n", rule.id.c_str(),
                    lint::severityName(rule.severity), family.c_str(),
                    rule.description.c_str());
    }
    return 0;
}

int
cmdExplain(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string id = argv[2];
    const lint::Rule *rule = lint::RuleRegistry::builtin().find(id);
    if (rule == nullptr) {
        std::fprintf(stderr, "unknown rule '%s' (see `tbd_lint "
                             "rules`)\n",
                     id.c_str());
        return 1;
    }
    std::printf("%s\n", rule->id.c_str());
    std::printf("  severity:  %s\n", lint::severityName(rule->severity));
    std::printf("  family:    %s\n", rule->analysis.empty()
                                         ? "core"
                                         : rule->analysis.c_str());
    std::printf("  category:  %s\n", rule->category.c_str());
    std::printf("  checks:    %s\n", rule->description.c_str());
    if (!rule->fixHint.empty())
        std::printf("  fix:       %s\n", rule->fixHint.c_str());
    if (!rule->rationale.empty())
        std::printf("  rationale: %s\n", rule->rationale.c_str());
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    bool json = false;
    lint::Severity gate = lint::Severity::Error;
    std::string baselinePath;
    lint::LintOptions options;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--severity" && i + 1 < argc) {
            const auto parsed = lint::severityFromName(argv[++i]);
            if (!parsed.has_value())
                return usage();
            gate = *parsed;
        } else if (arg == "--baseline" && i + 1 < argc) {
            baselinePath = argv[++i];
        } else if (arg == "--suppress" && i + 1 < argc) {
            options.disabledRules.insert(argv[++i]);
        } else if (arg == "--analysis" && i + 1 < argc) {
            if (!applyAnalysisSpec(argv[++i], options))
                return usage();
        } else {
            return usage();
        }
    }

    const lint::LintReport report = lint::lintSuite(options);

    if (json)
        std::printf("%s\n", report.toJson().dump(2).c_str());
    else if (!report.findings.empty() ||
             report.deprecatedSuppressions != 0)
        std::printf("%s", report.summary().c_str());

    if (!baselinePath.empty()) {
        const lint::BaselineDiff diff = lint::diffAgainstBaseline(
            report, lint::baselineKeys(loadBaseline(baselinePath)),
            gate);
        for (const auto &key : diff.stale)
            std::fprintf(stderr,
                         "stale baseline entry (no longer found): %s\n",
                         key.c_str());
        if (!diff.clean()) {
            std::fprintf(stderr,
                         "%zu finding(s) not in the baseline:\n",
                         diff.fresh.size());
            for (const auto &f : diff.fresh)
                std::fprintf(stderr, "  %s  %s  %s\n",
                             lint::severityName(f.severity),
                             f.rule.c_str(), f.object.c_str());
            return 1;
        }
        if (!json)
            std::printf("lint: %zu rule(s), %zu finding(s), all known "
                        "to the baseline\n",
                        report.rulesRun, report.findings.size());
        return 0;
    }

    const std::size_t gated = report.countAtLeast(gate);
    if (gated != 0) {
        std::fprintf(stderr,
                     "lint: %zu finding(s) at or above '%s'\n", gated,
                     lint::severityName(gate));
        return 1;
    }
    if (!json)
        std::printf("lint: %zu rule(s) over %zu model(s), %zu "
                    "lowering(s): clean at '%s' (%zu below-gate "
                    "finding(s), %zu suppressed)\n",
                    report.rulesRun, report.modelsChecked,
                    report.loweringsChecked, lint::severityName(gate),
                    report.findings.size(), report.suppressed);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "run")
            return cmdRun(argc, argv);
        if (cmd == "rules")
            return cmdRules();
        if (cmd == "explain")
            return cmdExplain(argc, argv);
    } catch (const util::FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    } catch (const util::PanicError &e) {
        std::fprintf(stderr, "panic: %s\n", e.what());
        return 1;
    }
    return usage();
}
