/**
 * @file
 * `tbd_lint` — static analyzer CLI over the model/catalog registry.
 *
 *   tbd_lint run [options]   lint the shipped suite
 *   tbd_lint rules           list the builtin rules
 *
 * run options:
 *   --json                 machine-readable report on stdout
 *   --severity <level>     exit-gate level: info|warning|error
 *                          (default error)
 *   --baseline <file>      diff against a committed baseline: only
 *                          findings absent from it count against the
 *                          gate (stale baseline keys are reported so
 *                          the file can be pruned)
 *   --suppress <rule.id>   disable a rule for this invocation
 *                          (repeatable)
 *
 * Exit status: 0 clean, 1 gated findings (or fatal analysis error),
 * 2 usage. Without --baseline the gate counts every finding at or
 * above --severity; CI runs `--severity info --baseline
 * tests/lint/baseline.json` so any *new* finding fails the build.
 */

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "lint/lint.h"
#include "lint/rule.h"
#include "util/logging.h"

using namespace tbd;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  tbd_lint run [--json] [--severity info|warning|"
                 "error]\n"
                 "               [--baseline <file>] [--suppress "
                 "<rule.id>]...\n"
                 "  tbd_lint rules\n");
    return 2;
}

util::json::Value
loadBaseline(const std::string &path)
{
    std::ifstream is(path);
    TBD_CHECK(is.good(), "cannot open lint baseline '", path, "'");
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    return util::json::Value::parse(text);
}

int
cmdRules()
{
    for (const auto &rule : lint::RuleRegistry::builtin().rules())
        std::printf("%-24s %-8s %s\n", rule.id.c_str(),
                    lint::severityName(rule.severity),
                    rule.description.c_str());
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    bool json = false;
    lint::Severity gate = lint::Severity::Error;
    std::string baselinePath;
    lint::LintOptions options;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--severity" && i + 1 < argc) {
            const auto parsed = lint::severityFromName(argv[++i]);
            if (!parsed.has_value())
                return usage();
            gate = *parsed;
        } else if (arg == "--baseline" && i + 1 < argc) {
            baselinePath = argv[++i];
        } else if (arg == "--suppress" && i + 1 < argc) {
            options.disabledRules.insert(argv[++i]);
        } else {
            return usage();
        }
    }

    const lint::LintReport report = lint::lintSuite(options);

    if (json)
        std::printf("%s\n", report.toJson().dump(2).c_str());
    else if (!report.findings.empty())
        std::printf("%s", report.summary().c_str());

    if (!baselinePath.empty()) {
        const lint::BaselineDiff diff = lint::diffAgainstBaseline(
            report, lint::baselineKeys(loadBaseline(baselinePath)),
            gate);
        for (const auto &key : diff.stale)
            std::fprintf(stderr,
                         "stale baseline entry (no longer found): %s\n",
                         key.c_str());
        if (!diff.clean()) {
            std::fprintf(stderr,
                         "%zu finding(s) not in the baseline:\n",
                         diff.fresh.size());
            for (const auto &f : diff.fresh)
                std::fprintf(stderr, "  %s  %s  %s\n",
                             lint::severityName(f.severity),
                             f.rule.c_str(), f.object.c_str());
            return 1;
        }
        if (!json)
            std::printf("lint: %zu rule(s), %zu finding(s), all known "
                        "to the baseline\n",
                        report.rulesRun, report.findings.size());
        return 0;
    }

    const std::size_t gated = report.countAtLeast(gate);
    if (gated != 0) {
        std::fprintf(stderr,
                     "lint: %zu finding(s) at or above '%s'\n", gated,
                     lint::severityName(gate));
        return 1;
    }
    if (!json)
        std::printf("lint: %zu rule(s) over %zu model(s), %zu "
                    "lowering(s): clean at '%s' (%zu below-gate "
                    "finding(s), %zu suppressed)\n",
                    report.rulesRun, report.modelsChecked,
                    report.loweringsChecked, lint::severityName(gate),
                    report.findings.size(), report.suppressed);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "run")
            return cmdRun(argc, argv);
        if (cmd == "rules")
            return cmdRules();
    } catch (const util::FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    } catch (const util::PanicError &e) {
        std::fprintf(stderr, "panic: %s\n", e.what());
        return 1;
    }
    return usage();
}
