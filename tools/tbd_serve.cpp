/**
 * @file
 * `tbd_serve` — the simulation service CLI (see src/serve).
 *
 *   tbd_serve serve [--port P] [--threads N] [--max-inflight N]
 *                   [--quota-burst B] [--quota-rate R]
 *                   [--cache-entries N]
 *                   [--tenant-quota NAME:BURST:RATE]...
 *   tbd_serve oneshot
 *
 * `serve` binds 127.0.0.1 (port 0 = auto), prints the bound port on
 * stdout (so scripts can parse it), then runs until stdin reaches EOF
 * or reads a "quit" line — the idiom that lets a CI step own the
 * server's lifetime without signals or pid files.
 *
 * `oneshot` reads request lines (the same newline-delimited JSON the
 * socket speaks) from stdin and answers each on stdout via the direct
 * library path — no queue, no cache, no coalescing. This is the
 * baseline the load harness diffs served answers against: a served
 * simulation must be bitwise-identical to its oneshot answer.
 *
 * Run either mode under TBD_OBS=1 to get the serve metrics
 * (serve.cache.*, serve.tenant.*) flushed to TBD_OBS_FILE at exit for
 * `tbd_obs report` / `tbd_obs check --require-counter`.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "serve/server.h"
#include "util/json.h"
#include "util/logging.h"

using namespace tbd;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  tbd_serve serve [--port P] [--threads N]"
        " [--max-inflight N]\n"
        "                  [--quota-burst B] [--quota-rate R]\n"
        "                  [--cache-entries N]\n"
        "                  [--tenant-quota NAME:BURST:RATE]...\n"
        "  tbd_serve oneshot    (request lines on stdin)\n");
    return 2;
}

/** "NAME:BURST:RATE" → (tenant, quota). */
bool
parseTenantQuota(const std::string &spec, std::string &tenant,
                 serve::QuotaConfig &quota)
{
    const std::size_t c1 = spec.find(':');
    if (c1 == std::string::npos || c1 == 0)
        return false;
    const std::size_t c2 = spec.find(':', c1 + 1);
    if (c2 == std::string::npos)
        return false;
    try {
        tenant = spec.substr(0, c1);
        quota.burst = std::stod(spec.substr(c1 + 1, c2 - c1 - 1));
        quota.ratePerSec = std::stod(spec.substr(c2 + 1));
    } catch (const std::exception &) {
        return false;
    }
    return true;
}

int
cmdServe(int argc, char **argv)
{
    serve::ServerOptions options;
    std::vector<std::pair<std::string, serve::QuotaConfig>> tenants;
    for (int i = 2; i < argc; ++i) {
        const std::string flag = argv[i];
        const bool has_value = i + 1 < argc;
        if (flag == "--port" && has_value)
            options.port = std::stoi(argv[++i]);
        else if (flag == "--threads" && has_value)
            options.threads =
                static_cast<std::size_t>(std::stoul(argv[++i]));
        else if (flag == "--max-inflight" && has_value)
            options.maxInflight = std::stoll(argv[++i]);
        else if (flag == "--quota-burst" && has_value)
            options.defaultQuota.burst = std::stod(argv[++i]);
        else if (flag == "--quota-rate" && has_value)
            options.defaultQuota.ratePerSec = std::stod(argv[++i]);
        else if (flag == "--cache-entries" && has_value)
            options.cacheEntries =
                static_cast<std::size_t>(std::stoul(argv[++i]));
        else if (flag == "--tenant-quota" && has_value) {
            std::string tenant;
            serve::QuotaConfig quota;
            if (!parseTenantQuota(argv[++i], tenant, quota)) {
                std::fprintf(stderr,
                             "bad --tenant-quota '%s' (want "
                             "NAME:BURST:RATE)\n",
                             argv[i]);
                return 2;
            }
            tenants.emplace_back(std::move(tenant), quota);
        } else {
            return usage();
        }
    }

    serve::Server server(options);
    for (const auto &[tenant, quota] : tenants)
        server.setTenantQuota(tenant, quota);
    server.start();

    // Scripts parse this line for the auto-assigned port.
    std::printf("listening on 127.0.0.1:%d\n", server.port());
    std::fflush(stdout);

    // Serve until the parent closes our stdin (or says "quit").
    std::string line;
    while (std::getline(std::cin, line)) {
        if (line == "quit")
            break;
    }
    server.stop();
    std::printf("stopped\n");
    return 0;
}

int
cmdOneshot()
{
    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.empty())
            continue;
        serve::Response response;
        try {
            const serve::Request request =
                serve::decodeRequest(line);
            response = serve::simulateDirect(request);
        } catch (const util::FatalError &err) {
            response.status = serve::Status::BadRequest;
            response.error = err.what();
        }
        std::printf("%s\n",
                    serve::encodeResponse(response).c_str());
        std::fflush(stdout);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "serve")
            return cmdServe(argc, argv);
        if (cmd == "oneshot")
            return argc == 2 ? cmdOneshot() : usage();
    } catch (const util::FatalError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    } catch (const std::exception &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
    return usage();
}
