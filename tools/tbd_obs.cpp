/**
 * @file
 * `tbd_obs` — observability-trace maintenance CLI.
 *
 *   tbd_obs check <trace.jsonl> [--min-coverage F]
 *                 [--require-counter NAME]...
 *   tbd_obs report <trace.jsonl> [--top N]
 *
 * `check` validates a JSONL export produced under TBD_OBS=1: the file
 * must exist, be non-empty, parse line-by-line, and contain at least
 * one span. With --min-coverage it additionally requires the root
 * spans to account for at least fraction F of the trace wall time
 * (the CI gate uses 0.95). Each --require-counter NAME (repeatable)
 * requires counter NAME to be present with a nonzero value — the
 * serve CI job gates on serve.cache.hit this way. Exits non-zero on
 * any violation so it can anchor a pipeline step.
 *
 * `report` prints the analysis::obs_report roll-up: top spans by self
 * time, the metric summary, the simulator fast-path hit rates
 * (lowering cache, steady-state replay) and, when the trace came
 * from a serving process, the per-tenant serve summary.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/obs_report.h"
#include "obs/obs.h"
#include "util/format.h"
#include "util/logging.h"

using namespace tbd;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  tbd_obs check <trace.jsonl> [--min-coverage F]\n"
                 "                [--require-counter NAME]...\n"
                 "  tbd_obs report <trace.jsonl> [--top N]\n");
    return 2;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        TBD_FATAL("cannot open trace file '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

int
cmdCheck(const std::string &path, double minCoverage,
         const std::vector<std::string> &requiredCounters)
{
    const std::string text = readFile(path);
    if (text.find_first_not_of(" \t\r\n") == std::string::npos) {
        std::fprintf(stderr, "FAIL: trace '%s' is empty\n",
                     path.c_str());
        return 1;
    }

    obs::TraceDump dump;
    try {
        dump = obs::parseJsonl(text);
    } catch (const util::FatalError &err) {
        std::fprintf(stderr, "FAIL: trace '%s' does not parse: %s\n",
                     path.c_str(), err.what());
        return 1;
    }

    if (dump.spans.empty()) {
        std::fprintf(stderr, "FAIL: trace '%s' contains no spans\n",
                     path.c_str());
        return 1;
    }

    const double coverage = dump.rootSpanCoverage();
    if (minCoverage > 0.0 && coverage < minCoverage) {
        std::fprintf(stderr,
                     "FAIL: root-span coverage %.1f%% below the "
                     "required %.1f%%\n",
                     coverage * 100.0, minCoverage * 100.0);
        return 1;
    }

    for (const std::string &name : requiredCounters) {
        bool satisfied = false;
        for (const auto &m : dump.metrics) {
            if (m.name == name &&
                m.kind == obs::MetricSnapshot::Kind::Counter &&
                m.value > 0.0) {
                satisfied = true;
                break;
            }
        }
        if (!satisfied) {
            std::fprintf(stderr,
                         "FAIL: required counter '%s' is absent or "
                         "zero in trace '%s'\n",
                         name.c_str(), path.c_str());
            return 1;
        }
    }

    std::printf("OK: %zu spans, %zu metrics, root coverage %.1f%%\n",
                dump.spans.size(), dump.metrics.size(),
                coverage * 100.0);
    return 0;
}

int
cmdReport(const std::string &path, std::size_t topN)
{
    const analysis::ObsReport report =
        analysis::loadObsReport(readFile(path));

    std::printf("trace wall time: %s   root coverage: %s\n\n",
                util::formatDuration(report.wallUs * 1e-6).c_str(),
                util::formatPercent(report.rootCoverage).c_str());
    std::printf("%s\n", report.spanTable(topN).toString().c_str());
    if (!report.metrics.empty())
        std::printf("%s\n", report.metricTable().toString().c_str());

    const analysis::FastPathSummary fast =
        analysis::fastPathSummary(report.metrics);
    if (!fast.empty())
        std::printf("%s\n", fast.table().toString().c_str());
    else
        std::printf("fast paths: no cache/replay counters in trace "
                    "(TBD_NOCACHE=1 or no simulations)\n");

    const analysis::ServeSummary serve =
        analysis::serveSummary(report.metrics);
    if (!serve.empty()) {
        std::printf("\nserve: result cache %lld hit / %lld miss "
                    "(%s), %lld coalesced, %lld malformed\n",
                    static_cast<long long>(serve.cacheHits),
                    static_cast<long long>(serve.cacheMisses),
                    util::formatPercent(serve.cacheHitRate).c_str(),
                    static_cast<long long>(serve.coalesced),
                    static_cast<long long>(serve.malformed));
        std::printf("%s\n", serve.table().toString().c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];
    const std::string path = argv[2];

    try {
        if (cmd == "check") {
            double min_coverage = 0.0;
            std::vector<std::string> required_counters;
            for (int i = 3; i < argc; ++i) {
                const std::string flag = argv[i];
                if (flag == "--min-coverage" && i + 1 < argc)
                    min_coverage = std::stod(argv[++i]);
                else if (flag == "--require-counter" && i + 1 < argc)
                    required_counters.emplace_back(argv[++i]);
                else
                    return usage();
            }
            return cmdCheck(path, min_coverage, required_counters);
        }
        if (cmd == "report") {
            std::size_t top_n = 20;
            if (argc == 5 && std::string(argv[3]) == "--top") {
                top_n = static_cast<std::size_t>(
                    std::stoul(argv[4]));
            } else if (argc != 3) {
                return usage();
            }
            return cmdReport(path, top_n);
        }
    } catch (const util::FatalError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
    return usage();
}
