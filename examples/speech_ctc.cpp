/**
 * @file
 * Speech recognition on the functional engine: a Deep-Speech-2-style
 * acoustic model (bidirectional GRUs + per-frame logits) trained with
 * the full Graves CTC loss on synthetic utterances, then decoded with
 * greedy best-path collapsing. Demonstrates the speech-domain workload
 * the paper benchmarks, at a laptop-scale size.
 */

#include <cstdio>
#include <vector>

#include "core/tbd.h"

using namespace tbd;

namespace {

/** Greedy CTC decode: argmax per frame, collapse repeats, drop blanks. */
std::vector<std::int64_t>
greedyDecode(const tensor::Tensor &logits, std::int64_t sample,
             std::int64_t frames, std::int64_t classes)
{
    std::vector<std::int64_t> out;
    std::int64_t prev = -1;
    for (std::int64_t t = 0; t < frames; ++t) {
        std::int64_t best = 0;
        for (std::int64_t c = 1; c < classes; ++c) {
            if (logits.at((sample * frames + t) * classes + c) >
                logits.at((sample * frames + t) * classes + best)) {
                best = c;
            }
        }
        if (best != 0 && best != prev)
            out.push_back(best);
        prev = best;
    }
    return out;
}

} // namespace

int
main()
{
    const std::int64_t alphabet = 6, frames = 24, feat = 8, label_len = 3;
    util::Rng rng(5);
    engine::Network net =
        models::buildTinyDeepSpeech(rng, feat, alphabet, 28);
    engine::Adam opt(0.01f);
    engine::Session session(net, opt);
    data::SyntheticAudio stream(alphabet, frames, feat, label_len, 13);
    layers::CtcLoss ctc;

    std::printf("Deep-Speech-2-style model: %lld params, CTC over %lld "
                "symbols + blank\n",
                static_cast<long long>(net.paramCount()),
                static_cast<long long>(alphabet));

    for (int i = 0; i < 120; ++i) {
        auto batch = stream.nextBatch(6);
        auto res = session.step(
            batch.features,
            [&](const tensor::Tensor &out, engine::StepResult &r) {
                r.loss = ctc.forward(out, batch.labels);
                return ctc.backward();
            });
        if (i % 30 == 0 || i == 119)
            std::printf("  iter %3d  CTC loss %.3f\n", i, res.loss);
    }

    // Evaluate label accuracy on fresh utterances.
    auto eval = stream.nextBatch(20);
    tensor::Tensor logits = net.forward(eval.features, false);
    int exact = 0, total_symbols = 0, correct_symbols = 0;
    for (std::int64_t n = 0; n < 20; ++n) {
        auto decoded = greedyDecode(logits, n, frames, alphabet + 1);
        const auto &truth = eval.labels[static_cast<std::size_t>(n)];
        exact += decoded == truth;
        for (std::size_t j = 0;
             j < std::min(decoded.size(), truth.size()); ++j)
            correct_symbols += decoded[j] == truth[j];
        total_symbols += static_cast<int>(truth.size());
    }
    std::printf("greedy decode: %d/20 exact transcripts, %.0f%% symbol "
                "accuracy\n",
                exact,
                100.0 * correct_symbols / total_symbols);
    return correct_symbols * 2 > total_symbols ? 0 : 1;
}
