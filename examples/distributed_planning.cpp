/**
 * @file
 * Capacity-planning with the distributed-training simulator: given a
 * model, sweep cluster shapes and interconnects (Section 4.5 of the
 * paper) and report which configurations are worth deploying. This is
 * the decision the paper's Observation 13 informs: network bandwidth,
 * not GPU count, governs multi-machine scaling.
 *
 * Usage: distributed_planning [model] [per-gpu batch]
 */

#include <cstdio>
#include <iostream>

#include "core/tbd.h"

using namespace tbd;

int
main(int argc, char **argv)
{
    const std::string model_name = argc > 1 ? argv[1] : "ResNet-50";
    const std::int64_t batch = argc > 2 ? std::atoll(argv[2]) : 32;
    const models::ModelDesc &model = models::modelByName(model_name);
    const auto framework = model.frameworks.front();

    std::printf("distributed scaling plan: %s (%s), %lld samples/GPU\n\n",
                model.name.c_str(), frameworks::frameworkName(framework),
                static_cast<long long>(batch));

    struct Shape
    {
        int machines;
        int gpus;
        dist::LinkSpec network;
    };
    const std::vector<Shape> shapes = {
        {1, 1, dist::infiniband100G()}, {1, 2, dist::infiniband100G()},
        {1, 4, dist::infiniband100G()}, {2, 1, dist::ethernet1G()},
        {2, 1, dist::infiniband100G()}, {2, 4, dist::ethernet1G()},
        {2, 4, dist::infiniband100G()}, {4, 4, dist::infiniband100G()},
    };

    util::Table t({"cluster", "GPUs", "throughput (samples/s)",
                   "exposed comm", "scaling efficiency", "verdict"});
    double single_thr = 0.0;
    for (const auto &shape : shapes) {
        dist::ClusterConfig cluster;
        cluster.machines = shape.machines;
        cluster.gpusPerMachine = shape.gpus;
        cluster.network = shape.network;
        auto r = dist::simulateDataParallel(
            model, framework, gpusim::quadroP4000(), batch, cluster);
        if (r.totalGpus == 1)
            single_thr = r.throughputSamples;
        const char *verdict =
            r.scalingEfficiency > 0.85  ? "deploy"
            : r.scalingEfficiency > 0.6 ? "marginal"
                                        : "wasted GPUs";
        if (r.totalGpus > 1 && r.throughputSamples < single_thr)
            verdict = "WORSE than 1 GPU";
        t.addRow({r.label, std::to_string(r.totalGpus),
                  util::formatFixed(r.throughputSamples, 1),
                  util::formatDuration(r.exposedCommUs * 1e-6),
                  util::formatPercent(r.scalingEfficiency), verdict});
    }
    t.print(std::cout);

    std::printf("\ngradient payload: %s per iteration per worker "
                "(x2 for push+pull)\n",
                util::formatBytes(static_cast<std::uint64_t>(
                                      model.describe(batch).totalParams()) *
                                  4)
                    .c_str());
    return 0;
}
