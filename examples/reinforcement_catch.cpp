/**
 * @file
 * Deep reinforcement learning on the functional engine: an A3C-style
 * actor-critic agent (policy + value heads, entropy-regularized policy
 * gradient — the A3C objective of Mnih et al. that the paper
 * benchmarks) learns the Catch environment end-to-end with real math.
 *
 * The agent starts near random (expected score ~ -0.4) and reaches a
 * high catch rate within a few hundred episodes.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/tbd.h"

using namespace tbd;

namespace {

constexpr std::int64_t kGrid = 6;

/** Sample an action from the policy head's softmax. */
std::int64_t
sampleAction(const tensor::Tensor &head, util::Rng &rng)
{
    double mx = head.at(0);
    for (std::int64_t a = 1; a < data::CatchEnv::kActions; ++a)
        mx = std::max(mx, static_cast<double>(head.at(a)));
    double probs[data::CatchEnv::kActions];
    double denom = 0.0;
    for (std::int64_t a = 0; a < data::CatchEnv::kActions; ++a) {
        probs[a] = std::exp(head.at(a) - mx);
        denom += probs[a];
    }
    double u = rng.uniform() * denom;
    for (std::int64_t a = 0; a < data::CatchEnv::kActions - 1; ++a) {
        if (u < probs[a])
            return a;
        u -= probs[a];
    }
    return data::CatchEnv::kActions - 1;
}

} // namespace

int
main()
{
    util::Rng rng(3);
    data::CatchEnv env(kGrid, 17);
    engine::Network net =
        models::buildA3CNet(rng, kGrid, data::CatchEnv::kActions);
    engine::Adam opt(0.008f);
    layers::PolicyValueLoss objective(0.5f, 0.01f);
    util::Rng action_rng(29);

    std::printf("A3C-style agent on Catch (%lldx%lld grid), %lld params\n",
                static_cast<long long>(kGrid),
                static_cast<long long>(kGrid),
                static_cast<long long>(net.paramCount()));

    const int episodes = 600;
    double window_reward = 0.0;
    int window = 0;

    for (int episode = 1; episode <= episodes; ++episode) {
        std::vector<tensor::Tensor> observations;
        std::vector<std::int64_t> actions;
        tensor::Tensor obs = env.reset();
        float reward = 0.0f;
        bool done = false;
        while (!done) {
            tensor::Tensor in =
                obs.reshaped(tensor::Shape{1, 1, kGrid, kGrid});
            tensor::Tensor head = net.forward(in, false);
            const std::int64_t action = sampleAction(head, action_rng);
            observations.push_back(in);
            actions.push_back(action);
            auto out =
                env.step(static_cast<data::CatchEnv::Action>(action));
            obs = out.observation;
            reward = out.reward;
            done = out.done;
        }

        // Monte-Carlo update over the whole episode (terminal reward).
        const auto steps =
            static_cast<std::int64_t>(observations.size());
        tensor::Tensor batch(tensor::Shape{steps, 1, kGrid, kGrid});
        for (std::int64_t s = 0; s < steps; ++s)
            for (std::int64_t j = 0; j < kGrid * kGrid; ++j)
                batch.at(s * kGrid * kGrid + j) = observations
                    [static_cast<std::size_t>(s)].at(j);
        std::vector<float> returns(static_cast<std::size_t>(steps),
                                   reward);
        net.zeroGrads();
        tensor::Tensor head = net.forward(batch, true);
        objective.forward(head, actions, returns);
        net.backward(objective.backward());
        opt.step(net.params());

        window_reward += reward;
        ++window;
        if (episode % 100 == 0) {
            std::printf("  episodes %4d-%4d: mean score %+.2f\n",
                        episode - window + 1, episode,
                        window_reward / window);
            window_reward = 0.0;
            window = 0;
        }
    }

    // Greedy evaluation.
    int caught = 0;
    const int eval_episodes = 100;
    for (int e = 0; e < eval_episodes; ++e) {
        tensor::Tensor obs = env.reset();
        bool done = false;
        float reward = 0.0f;
        while (!done) {
            tensor::Tensor in =
                obs.reshaped(tensor::Shape{1, 1, kGrid, kGrid});
            tensor::Tensor head = net.forward(in, false);
            std::int64_t best = 0;
            for (std::int64_t a = 1; a < data::CatchEnv::kActions; ++a)
                if (head.at(a) > head.at(best))
                    best = a;
            auto out =
                env.step(static_cast<data::CatchEnv::Action>(best));
            obs = out.observation;
            reward = out.reward;
            done = out.done;
        }
        caught += reward > 0.0f;
    }
    std::printf("greedy policy catch rate: %d%%\n", caught);
    return caught > 60 ? 0 : 1;
}
