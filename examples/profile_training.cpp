/**
 * @file
 * The "TBD as a profiling tool" workflow (Fig. 3 of the paper): pick a
 * model, framework, GPU and batch sweep from the command line, run the
 * sampling profiler, and print the full analysis — throughput curve,
 * utilization metrics, memory breakdown, and the longest
 * below-average-utilization kernels (the Table 5/6 report).
 *
 * Usage:
 *   profile_training [model] [framework] [gpu]
 *   profile_training "Inception-v3" TensorFlow "TITAN Xp"
 */

#include <cstdio>
#include <iostream>

#include "core/tbd.h"

using namespace tbd;

int
main(int argc, char **argv)
{
    core::BenchmarkRequest request;
    request.model = argc > 1 ? argv[1] : "Inception-v3";
    request.framework = argc > 2 ? argv[2] : "MXNet";
    request.gpu = argc > 3 ? argv[3] : "Quadro P4000";

    const models::ModelDesc &model =
        models::modelByName(request.model);
    std::printf("TBD profile: %s on %s (%s)\n", request.model.c_str(),
                request.framework.c_str(), request.gpu.c_str());
    std::printf("application: %s | dominant layer: %s | dataset: %s\n\n",
                model.application.c_str(), model.dominantLayer.c_str(),
                model.dataset->name.c_str());

    // --- batch sweep -----------------------------------------------------
    util::Table sweep({"mini-batch", "throughput (" +
                                         model.throughputUnit + ")",
                       "GPU util", "FP32 util", "CPU util", "memory"});
    analysis::SampleReport last{};
    bool have_last = false;
    for (std::int64_t batch : model.batchSweep) {
        request.batch = batch;
        auto maybe = core::BenchmarkSuite::runIfFits(request);
        if (!maybe) {
            sweep.addRow({std::to_string(batch), "out of memory", "-",
                          "-", "-", "-"});
            continue;
        }
        const perf::RunResult &r = maybe->result;
        sweep.addRow({std::to_string(batch),
                      util::formatFixed(r.throughputUnits, 1),
                      util::formatPercent(r.gpuUtilization),
                      util::formatPercent(r.fp32Utilization),
                      util::formatPercent(r.cpuUtilization, 2),
                      util::formatBytes(r.memory.total())});
        last = *maybe;
        have_last = true;
    }
    sweep.print(std::cout);

    if (!have_last) {
        std::printf("no feasible batch size on this GPU\n");
        return 1;
    }

    // --- memory breakdown at the largest feasible batch -------------------
    std::printf("\nmemory breakdown at batch %lld:\n",
                static_cast<long long>(last.result.batch));
    for (std::size_t c = 0; c < memprof::kCategoryCount; ++c) {
        const auto cat = static_cast<memprof::MemCategory>(c);
        std::printf("  %-16s %10s  (%s)\n", memprof::memCategoryName(cat),
                    util::formatBytes(last.result.memory.of(cat)).c_str(),
                    util::formatPercent(last.result.memory.fraction(cat))
                        .c_str());
    }

    // --- where the GPU time goes (Fathom-style breakdown) ------------------
    std::printf("\nGPU time by kernel category:\n");
    util::Table cats({"category", "share", "time/iter", "launches"});
    for (const auto &c :
         analysis::categoryBreakdown(last.result.kernelTrace)) {
        cats.addRow({gpusim::kernelCategoryName(c.category),
                     util::formatPercent(c.share),
                     util::formatDuration(c.totalUs * 1e-6),
                     std::to_string(c.invocations)});
    }
    cats.print(std::cout);

    // --- kernel hot list ---------------------------------------------------
    std::printf("\nlongest kernels with below-average FP32 utilization "
                "(trace mean %s):\n",
                util::formatPercent(
                    analysis::traceMeanFp32Util(last.result.kernelTrace))
                    .c_str());
    util::Table kernels(
        {"duration share", "FP32 util", "calls", "kernel"});
    for (const auto &agg :
         analysis::longestLowUtilKernels(last.result.kernelTrace, 5)) {
        kernels.addRow({util::formatPercent(agg.durationShare, 2),
                        util::formatPercent(agg.meanFp32Util),
                        std::to_string(agg.invocations), agg.name});
    }
    kernels.print(std::cout);
    return 0;
}
