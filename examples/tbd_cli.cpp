/**
 * @file
 * `tbd` — the command-line front-end of the benchmark suite. Every
 * experiment in the library is reachable from one binary:
 *
 *   tbd_cli list
 *   tbd_cli run <model> <framework> <batch> [gpu]
 *   tbd_cli sweep <model> <framework> [gpu]
 *   tbd_cli memory <model> <framework> <batch>
 *   tbd_cli kernels <model> <framework> <batch>
 *   tbd_cli distributed <model> <machines> <gpus-per-machine> <link>
 *   tbd_cli curve <model>
 *   tbd_cli obs <model> <framework> <batch>
 *
 * where <link> is one of: pcie, ethernet, infiniband. `obs` runs one
 * configuration with tbd::obs collection forced on and prints the
 * trace roll-up (top spans by self time, metric summary) — the
 * interactive face of the TBD_OBS=1 JSONL export.
 */

#include <cstring>
#include <iostream>

#include "core/tbd.h"

using namespace tbd;

namespace {

core::BenchmarkRequest
makeRequest(const std::string &model, const std::string &framework,
            const std::string &gpu, std::int64_t batch)
{
    core::BenchmarkRequest req;
    req.model = model;
    req.framework = framework;
    req.gpu = gpu;
    req.batch = batch;
    return req;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  tbd_cli list\n"
        "  tbd_cli run <model> <framework> <batch> [gpu]\n"
        "  tbd_cli sweep <model> <framework> [gpu]\n"
        "  tbd_cli memory <model> <framework> <batch>\n"
        "  tbd_cli kernels <model> <framework> <batch>\n"
        "  tbd_cli distributed <model> <machines> <gpus> "
        "<pcie|ethernet|infiniband>\n"
        "  tbd_cli curve <model>\n"
        "  tbd_cli trace <model> <framework> <batch> <out.json>\n"
        "  tbd_cli layers <model> <framework> <batch>\n"
        "  tbd_cli obs <model> <framework> <batch>\n");
    return 2;
}

int
cmdList()
{
    core::BenchmarkSuite::table2Overview().print(std::cout);
    std::cout << "\nextensions beyond Table 2:\n";
    for (const auto *m : models::extensionModels())
        std::cout << "  " << m->name << " (" << m->application << ")\n";
    std::cout << "\nGPUs: Quadro P4000, TITAN Xp\n";
    return 0;
}

int
cmdRun(const std::string &model, const std::string &framework,
       std::int64_t batch, const std::string &gpu)
{
    const core::BenchmarkRequest req =
        makeRequest(model, framework, gpu, batch);
    const auto report = core::BenchmarkSuite::run(req);
    const auto &r = report.result;
    std::printf("%s / %s / %s, batch %lld\n", model.c_str(),
                framework.c_str(), gpu.c_str(),
                static_cast<long long>(batch));
    std::printf("  throughput        %.1f %s\n", r.throughputUnits,
                models::modelByName(model).throughputUnit.c_str());
    std::printf("  iteration         %s\n",
                util::formatDuration(r.iterationUs * 1e-6).c_str());
    std::printf("  GPU utilization   %s\n",
                util::formatPercent(r.gpuUtilization).c_str());
    std::printf("  FP32 utilization  %s\n",
                util::formatPercent(r.fp32Utilization).c_str());
    std::printf("  CPU utilization   %s\n",
                util::formatPercent(r.cpuUtilization, 2).c_str());
    std::printf("  memory            %s (feature maps %s)\n",
                util::formatBytes(r.memory.total()).c_str(),
                util::formatPercent(
                    r.memory.fraction(memprof::MemCategory::FeatureMaps))
                    .c_str());
    return 0;
}

int
cmdSweep(const std::string &model, const std::string &framework,
         const std::string &gpu)
{
    const auto &m = models::modelByName(model);
    util::Table t({"batch", "throughput", "GPU util", "FP32 util",
                   "memory"});
    for (std::int64_t batch : m.batchSweep) {
        const core::BenchmarkRequest req =
            makeRequest(model, framework, gpu, batch);
        auto maybe = core::BenchmarkSuite::runIfFits(req);
        if (!maybe) {
            t.addRow({std::to_string(batch), "OOM", "-", "-", "-"});
            continue;
        }
        const auto &r = maybe->result;
        t.addRow({std::to_string(batch),
                  util::formatFixed(r.throughputUnits, 1),
                  util::formatPercent(r.gpuUtilization),
                  util::formatPercent(r.fp32Utilization),
                  util::formatBytes(r.memory.total())});
    }
    t.print(std::cout);
    return 0;
}

int
cmdMemory(const std::string &model, const std::string &framework,
          std::int64_t batch)
{
    const core::BenchmarkRequest req =
        makeRequest(model, framework, "Quadro P4000", batch);
    const auto r = core::BenchmarkSuite::run(req).result;
    util::Table t({"category", "bytes", "share"});
    for (std::size_t c = 0; c < memprof::kCategoryCount; ++c) {
        const auto cat = static_cast<memprof::MemCategory>(c);
        t.addRow({memprof::memCategoryName(cat),
                  util::formatBytes(r.memory.of(cat)),
                  util::formatPercent(r.memory.fraction(cat))});
    }
    t.addRow({"total", util::formatBytes(r.memory.total()), "100%"});
    t.print(std::cout);
    return 0;
}

int
cmdKernels(const std::string &model, const std::string &framework,
           std::int64_t batch)
{
    const core::BenchmarkRequest req =
        makeRequest(model, framework, "Quadro P4000", batch);
    const auto r = core::BenchmarkSuite::run(req).result;
    std::printf("GPU time by category:\n");
    util::Table cats({"category", "share", "launches"});
    for (const auto &c : analysis::categoryBreakdown(r.kernelTrace))
        cats.addRow({gpusim::kernelCategoryName(c.category),
                     util::formatPercent(c.share),
                     std::to_string(c.invocations)});
    cats.print(std::cout);

    std::printf("\nlongest below-average-FP32 kernels:\n");
    util::Table low({"duration", "FP32 util", "kernel"});
    for (const auto &agg :
         analysis::longestLowUtilKernels(r.kernelTrace, 5))
        low.addRow({util::formatPercent(agg.durationShare, 2),
                    util::formatPercent(agg.meanFp32Util), agg.name});
    low.print(std::cout);
    return 0;
}

int
cmdDistributed(const std::string &model, int machines, int gpus,
               const std::string &link_name)
{
    dist::LinkSpec link;
    if (link_name == "pcie")
        link = dist::pcie3x16();
    else if (link_name == "ethernet")
        link = dist::ethernet1G();
    else if (link_name == "infiniband")
        link = dist::infiniband100G();
    else
        return usage();

    const auto &m = models::modelByName(model);
    dist::ClusterConfig cluster;
    cluster.machines = machines;
    cluster.gpusPerMachine = gpus;
    cluster.network = link;
    const auto r = dist::simulateDataParallel(
        m, m.frameworks.front(), gpusim::quadroP4000(),
        m.batchSweep.back(), cluster);
    std::printf("%s on %s: %.1f samples/s across %d GPUs "
                "(%.0f%% scaling efficiency, %s exposed comm)\n",
                model.c_str(), r.label.c_str(), r.throughputSamples,
                r.totalGpus, r.scalingEfficiency * 100.0,
                util::formatDuration(r.exposedCommUs * 1e-6).c_str());
    return 0;
}

int
cmdLayers(const std::string &model, const std::string &framework,
          std::int64_t batch)
{
    const core::BenchmarkRequest req =
        makeRequest(model, framework, "Quadro P4000", batch);
    const auto r = core::BenchmarkSuite::run(req).result;
    util::Table t({"layer", "GPU time share", "time/iter", "kernels"});
    for (const auto &l : analysis::layerBreakdown(r.kernelTrace, 15)) {
        t.addRow({l.layer, util::formatPercent(l.share),
                  util::formatDuration(l.totalUs * 1e-6),
                  std::to_string(l.kernels)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdTrace(const std::string &model, const std::string &framework,
         std::int64_t batch, const std::string &path)
{
    const core::BenchmarkRequest req =
        makeRequest(model, framework, "Quadro P4000", batch);
    const auto r = core::BenchmarkSuite::run(req).result;
    analysis::exportChromeTrace(r.kernelTrace, path,
                                model + " / " + framework + " / batch " +
                                    std::to_string(batch));
    std::printf("wrote %zu kernel events to %s "
                "(open in chrome://tracing or ui.perfetto.dev)\n",
                r.kernelTrace.size(), path.c_str());
    return 0;
}

int
cmdObs(const std::string &model, const std::string &framework,
       std::int64_t batch)
{
    obs::setEnabled(true);
    obs::resetAll();
    const core::BenchmarkRequest req =
        makeRequest(model, framework, "Quadro P4000", batch);
    (void)core::BenchmarkSuite::run(req);
    const auto report = analysis::buildObsReport(obs::dumpTrace());
    std::printf("top spans by self time:\n");
    report.spanTable(15).print(std::cout);
    std::printf("\nmetrics:\n");
    report.metricTable().print(std::cout);
    return 0;
}

int
cmdCurve(const std::string &model)
{
    const auto &m = models::modelByName(model);
    const auto &spec = analysis::convergenceSpec(model);
    const core::BenchmarkRequest req = makeRequest(
        model, frameworks::frameworkName(m.frameworks.front()),
        "Quadro P4000", m.batchSweep.back());
    const auto r = core::BenchmarkSuite::run(req).result;
    util::Table t({spec.metric, "training time"});
    for (const auto &pt :
         analysis::trainingCurve(spec, r.throughputUnits, 10)) {
        t.addRow({util::formatFixed(pt.metric, 2),
                  pt.timeHours > 48.0
                      ? util::formatFixed(pt.timeHours / 24.0, 1) +
                            " days"
                      : util::formatFixed(pt.timeHours, 1) + " h"});
    }
    t.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "run" && argc >= 5)
            return cmdRun(argv[2], argv[3], std::atoll(argv[4]),
                          argc > 5 ? argv[5] : "Quadro P4000");
        if (cmd == "sweep" && argc >= 4)
            return cmdSweep(argv[2], argv[3],
                            argc > 4 ? argv[4] : "Quadro P4000");
        if (cmd == "memory" && argc >= 5)
            return cmdMemory(argv[2], argv[3], std::atoll(argv[4]));
        if (cmd == "kernels" && argc >= 5)
            return cmdKernels(argv[2], argv[3], std::atoll(argv[4]));
        if (cmd == "distributed" && argc >= 6)
            return cmdDistributed(argv[2], std::atoi(argv[3]),
                                  std::atoi(argv[4]), argv[5]);
        if (cmd == "curve" && argc >= 3)
            return cmdCurve(argv[2]);
        if (cmd == "trace" && argc >= 6)
            return cmdTrace(argv[2], argv[3], std::atoll(argv[4]),
                            argv[5]);
        if (cmd == "layers" && argc >= 5)
            return cmdLayers(argv[2], argv[3], std::atoll(argv[4]));
        if (cmd == "obs" && argc >= 5)
            return cmdObs(argv[2], argv[3], std::atoll(argv[4]));
    } catch (const util::FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
