/**
 * @file
 * TBD quickstart: the two things this library does, in ~100 lines.
 *
 *  1. Functional engine — really train a small residual CNN on a
 *     synthetic image stream (forward/backward/SGD are real FP32 math).
 *  2. Benchmark suite — simulate a paper configuration (ResNet-50 on
 *     MXNet, Quadro P4000, batch 32) and print the paper's metrics:
 *     throughput, GPU/FP32/CPU utilization and the memory breakdown.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/tbd.h"

using namespace tbd;

namespace {

void
trainFunctionalModel()
{
    std::printf("== 1. Functional engine: training a tiny ResNet ==\n");
    util::Rng rng(7);
    engine::Network net = models::buildTinyResNet(rng, /*classes=*/4,
                                                  /*channels=*/1,
                                                  /*imageSize=*/8);
    std::printf("model '%s': %lld parameters\n", net.name().c_str(),
                static_cast<long long>(net.paramCount()));

    engine::Adam opt(0.01f);
    engine::Session session(net, opt);
    data::SyntheticImages stream(4, 1, 8, /*seed=*/11);
    layers::SoftmaxCrossEntropy loss;

    for (int i = 0; i < 60; ++i) {
        auto batch = stream.nextBatch(16);
        auto res = session.step(
            batch.images,
            [&](const tensor::Tensor &out, engine::StepResult &r) {
                r.loss = loss.forward(out, batch.labels);
                r.metric = loss.accuracy();
                return loss.backward();
            });
        if (i % 15 == 0 || i == 59) {
            std::printf("  iter %3d  loss %.3f  accuracy %.0f%%\n", i,
                        res.loss, res.metric * 100.0);
        }
    }
}

void
simulateBenchmark()
{
    std::printf("\n== 2. Benchmark suite: ResNet-50 / MXNet / P4000 ==\n");
    core::BenchmarkRequest request;
    request.model = "ResNet-50";
    request.framework = "MXNet";
    request.gpu = "Quadro P4000";
    request.batch = 32;

    const analysis::SampleReport report = core::BenchmarkSuite::run(request);
    const perf::RunResult &r = report.result;
    std::printf("  throughput        %.1f samples/s\n",
                r.throughputSamples);
    std::printf("  GPU utilization   %s\n",
                util::formatPercent(r.gpuUtilization).c_str());
    std::printf("  FP32 utilization  %s\n",
                util::formatPercent(r.fp32Utilization).c_str());
    std::printf("  CPU utilization   %s (28-core host)\n",
                util::formatPercent(r.cpuUtilization, 2).c_str());
    std::printf("  kernels/iteration %lld\n",
                static_cast<long long>(r.kernelsPerIteration));
    std::printf("  stable after      %lld warm-up iterations (cv %.3f)\n",
                static_cast<long long>(report.stableAfter),
                report.throughputCv);

    std::printf("  memory breakdown (%s total):\n",
                util::formatBytes(r.memory.total()).c_str());
    for (std::size_t c = 0; c < memprof::kCategoryCount; ++c) {
        const auto cat = static_cast<memprof::MemCategory>(c);
        std::printf("    %-16s %10s  (%s)\n", memprof::memCategoryName(cat),
                    util::formatBytes(r.memory.of(cat)).c_str(),
                    util::formatPercent(r.memory.fraction(cat)).c_str());
    }
}

} // namespace

int
main()
{
    trainFunctionalModel();
    simulateBenchmark();
    return 0;
}
