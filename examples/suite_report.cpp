/**
 * @file
 * Full suite sweep: run every (model, framework) implementation at
 * every mini-batch of its paper sweep on a chosen GPU and emit one
 * combined report — the "nightly benchmark run" a team adopting TBD
 * would schedule. Optionally writes the rows as CSV for plotting.
 *
 * Usage:
 *   suite_report ["Quadro P4000"|"TITAN Xp"] [output.csv]
 */

#include <fstream>
#include <iostream>

#include "core/tbd.h"

using namespace tbd;

int
main(int argc, char **argv)
{
    const std::string gpu_name = argc > 1 ? argv[1] : "Quadro P4000";
    const std::string csv_path = argc > 2 ? argv[2] : "";
    (void)core::BenchmarkSuite::gpuByName(gpu_name); // validate early

    std::printf("TBD suite report on %s\n\n", gpu_name.c_str());

    util::Table t({"model", "framework", "batch", "throughput", "unit",
                   "GPU util", "FP32 util", "CPU util", "memory",
                   "feature maps", "kernels/iter"});
    int configs = 0, ooms = 0;
    for (const auto *model : core::BenchmarkSuite::models()) {
        for (auto fw : model->frameworks) {
            for (std::int64_t batch : model->batchSweep) {
                core::BenchmarkRequest req;
                req.model = model->name;
                req.framework = frameworks::frameworkName(fw);
                req.gpu = gpu_name;
                req.batch = batch;
                ++configs;
                auto maybe = core::BenchmarkSuite::runIfFits(req);
                if (!maybe) {
                    ++ooms;
                    t.addRow({model->name, req.framework,
                              std::to_string(batch), "OOM", "-", "-",
                              "-", "-", "-", "-", "-"});
                    continue;
                }
                const auto &r = maybe->result;
                t.addRow(
                    {model->name, req.framework, std::to_string(batch),
                     util::formatFixed(r.throughputUnits, 1),
                     model->throughputUnit,
                     util::formatPercent(r.gpuUtilization),
                     util::formatPercent(r.fp32Utilization),
                     util::formatPercent(r.cpuUtilization, 2),
                     util::formatBytes(r.memory.total()),
                     util::formatPercent(r.memory.fraction(
                         memprof::MemCategory::FeatureMaps)),
                     std::to_string(r.kernelsPerIteration)});
            }
        }
    }
    t.print(std::cout);
    std::printf("\n%d configurations, %d out-of-memory cells (the "
                "paper's truncated sweeps)\n",
                configs, ooms);

    if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
            return 1;
        }
        t.printCsv(out);
        std::printf("CSV written to %s\n", csv_path.c_str());
    }
    return 0;
}
