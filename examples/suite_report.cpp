/**
 * @file
 * Full suite sweep: run every (model, framework) implementation at
 * every mini-batch of its paper sweep on a chosen GPU and emit one
 * combined report — the "nightly benchmark run" a team adopting TBD
 * would schedule. Optionally writes the rows as CSV for plotting.
 *
 * Usage:
 *   suite_report ["Quadro P4000"|"TITAN Xp"] [output.csv]
 */

#include <fstream>
#include <iostream>

#include "core/tbd.h"

using namespace tbd;

int
main(int argc, char **argv)
{
    const std::string gpu_name = argc > 1 ? argv[1] : "Quadro P4000";
    const std::string csv_path = argc > 2 ? argv[2] : "";
    if (!core::BenchmarkSuite::findGpu(gpu_name)) {
        std::fprintf(stderr, "unknown GPU '%s' (valid:", gpu_name.c_str());
        for (const auto &name : core::BenchmarkSuite::gpuNames())
            std::fprintf(stderr, " '%s'", name.c_str());
        std::fprintf(stderr, ")\n");
        return 1;
    }

    std::printf("TBD suite report on %s\n\n", gpu_name.c_str());

    // The spec's defaults are exactly this report: every model, each
    // model's implementing frameworks, the paper batch sweeps.
    const auto cells =
        core::SweepSpec().gpu(gpu_name).requests();
    const auto results = core::BenchmarkSuite::runSweep(cells);

    util::Table t({"model", "framework", "batch", "throughput", "unit",
                   "GPU util", "FP32 util", "CPU util", "memory",
                   "feature maps", "kernels/iter"});
    int ooms = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &req = cells[i];
        const auto &maybe = results[i];
        if (!maybe) {
            ++ooms;
            t.addRow({req.model, req.framework,
                      std::to_string(req.batch), "OOM", "-", "-", "-",
                      "-", "-", "-", "-"});
            continue;
        }
        const auto &r = *maybe;
        t.addRow({req.model, req.framework, std::to_string(req.batch),
                  util::formatFixed(r.throughputUnits, 1),
                  core::findModelDesc(req.model)->throughputUnit,
                  util::formatPercent(r.gpuUtilization),
                  util::formatPercent(r.fp32Utilization),
                  util::formatPercent(r.cpuUtilization, 2),
                  util::formatBytes(r.memory.total()),
                  util::formatPercent(r.memory.fraction(
                      memprof::MemCategory::FeatureMaps)),
                  std::to_string(r.kernelsPerIteration)});
    }
    t.print(std::cout);
    std::printf("\n%zu configurations, %d out-of-memory cells (the "
                "paper's truncated sweeps)\n",
                cells.size(), ooms);

    if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
            return 1;
        }
        t.printCsv(out);
        std::printf("CSV written to %s\n", csv_path.c_str());
    }
    return 0;
}
