/**
 * @file
 * Ablation: sequence bucketing. The Seq2Seq implementations the paper
 * profiles bucket variable-length sentences; this harness quantifies
 * why — padding everything to the longest sample wastes GPU work on
 * pad tokens, and the waste converts one-to-one into lost effective
 * throughput for a saturated model.
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

void
printFigure()
{
    benchutil::banner("Ablation - sequence bucketing vs pad-to-max",
                      "Sec. 3.4.3 / the Seq2Seq implementations' "
                      "bucketing");

    struct Dataset
    {
        const char *name;
        double mean, cv;
        std::int64_t lo, hi;
        std::vector<std::int64_t> bounds;
    };
    const std::vector<Dataset> datasets = {
        {"IWSLT15 sentences", 25.0, 0.15, 10, 40,
         {15, 20, 25, 30, 40}},
        {"LibriSpeech utterances (frames)", 1260.0, 0.35, 200, 3000,
         {600, 1000, 1400, 1800, 2400, 3000}},
    };

    for (const auto &ds : datasets) {
        data::LengthSampler sampler(ds.mean, ds.cv, ds.lo, ds.hi, 11);
        const auto lengths = sampler.sample(4096);
        const auto report = data::assignBuckets(lengths, ds.bounds);
        const double naive = data::padToMaxEfficiency(lengths);

        util::Table t({"bucket bound", "samples", "payload tokens",
                       "padded tokens", "efficiency"});
        for (const auto &b : report.buckets) {
            if (b.samples == 0)
                continue;
            t.addRow({std::to_string(b.bound),
                      std::to_string(b.samples),
                      std::to_string(b.realTokens),
                      std::to_string(b.paddedTokens),
                      util::formatPercent(b.efficiency())});
        }
        std::cout << ds.name << " (4096 sampled lengths):\n";
        t.print(std::cout);
        std::cout << "bucketed efficiency "
                  << util::formatPercent(report.overallEfficiency())
                  << " vs pad-to-max " << util::formatPercent(naive)
                  << " -> effective-throughput gain "
                  << util::formatFixed(report.overallEfficiency() / naive,
                                       2)
                  << "x for a compute-saturated model\n\n";
    }
    std::cout << "Bucketing is why the paper can treat Seq2Seq "
                 "throughput as stable while\ndefining Deep Speech 2 "
                 "throughput in audio seconds (Sec. 3.4.3).\n\n";
}

} // namespace

TBD_BENCH_MAIN(printFigure)
