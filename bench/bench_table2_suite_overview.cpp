/**
 * @file
 * Tables 2 and 3: the TBD benchmark-suite overview — eight models
 * across six application domains with their layer counts, dominant
 * layer types, framework implementations and training datasets.
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

void
printFigure()
{
    benchutil::banner("Tables 2 & 3 - benchmark and dataset overview",
                      "Tables 2-3 / Sec. 3.1");

    std::cout << "Table 2: Overview of Benchmarks\n";
    core::BenchmarkSuite::table2Overview().print(std::cout);

    std::cout << "\nTable 3: Training Datasets\n";
    core::BenchmarkSuite::table3Datasets().print(std::cout);

    std::cout << "\nper-model workload summary at the smallest sweep "
                 "batch:\n";
    util::Table w({"model", "batch", "fwd GFLOPs", "parameters",
                   "stashed activations", "ops"});
    for (const auto *m : core::BenchmarkSuite::models()) {
        const auto b = m->batchSweep.front();
        auto workload = m->describe(b);
        w.addRow({m->name, std::to_string(b),
                  util::formatFixed(workload.totalFwdFlops() / 1e9, 2),
                  util::formatSi(
                      static_cast<double>(workload.totalParams())),
                  util::formatSi(static_cast<double>(
                      workload.totalActivations())),
                  std::to_string(workload.ops.size())});
    }
    w.print(std::cout);
    std::cout << '\n';

    benchmark::RegisterBenchmark(
        "table2/workload_generation", [](benchmark::State &state) {
            for (auto _ : state) {
                auto w = models::resnet50().describe(32);
                benchmark::DoNotOptimize(w.totalFwdFlops());
            }
        });
}

} // namespace

TBD_BENCH_MAIN(printFigure)
