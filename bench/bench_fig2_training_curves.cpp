/**
 * @file
 * Figure 2: model accuracy during training for five representative
 * models on a single Quadro P4000 — top-1 accuracy for Inception-v3
 * and ResNet-50 (days), BLEU for Transformer and Seq2Seq (hours), and
 * the Pong game score for A3C (hours). The time axis is driven by the
 * simulated throughput; the curve shapes come from the literature-
 * derived convergence model (see DESIGN.md).
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

void
printFigure()
{
    benchutil::banner("Figure 2 - model accuracy during training",
                      "Fig. 2 / Sec. 3.3");

    for (const auto &name : analysis::figure2Models()) {
        const auto &model = models::modelByName(name);
        const auto fw = model.frameworks.front();
        const auto r = benchutil::simulate(
            model, fw, gpusim::quadroP4000(), model.batchSweep.back());
        const auto &spec = analysis::convergenceSpec(name);
        auto curve = analysis::trainingCurve(spec, r.throughputUnits, 9);

        util::Table t({"model", spec.metric, "training time"});
        for (const auto &pt : curve) {
            const bool days = pt.timeHours > 48.0 ||
                              curve.back().timeHours > 100.0;
            t.addRow({name, util::formatFixed(pt.metric, 2),
                      days ? util::formatFixed(pt.timeHours / 24.0, 1) +
                                 " days"
                           : util::formatFixed(pt.timeHours, 1) + " h"});
        }
        t.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "Section 3.3 validation targets: top-1 reaches 75-80%, "
                 "BLEU ~20-24,\nPong score 19-20.\n\n";

    benchmark::RegisterBenchmark(
        "fig2/curve_generation", [](benchmark::State &state) {
            const auto &spec = analysis::convergenceSpec("ResNet-50");
            for (auto _ : state) {
                auto curve = analysis::trainingCurve(spec, 80.0, 64);
                benchmark::DoNotOptimize(curve.back().metric);
            }
        });
}

} // namespace

TBD_BENCH_MAIN(printFigure)
