/**
 * @file
 * Ablation: gradient compression over slow networks. Observation 13's
 * remedy list includes "reduce the amount of data sent"; this harness
 * sweeps compression ratios (FP32 -> FP16 -> 8-bit -> 1-bit-SGD-style)
 * for ResNet-50 over the 1 GbE link that collapses in Fig. 10 and
 * reports when two machines become worthwhile again.
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

void
printFigure()
{
    benchutil::banner(
        "Ablation - gradient compression over 1 GbE",
        "Observation 13's 'reduce the amount of data sent'");

    // Single-GPU baseline for the break-even comparison.
    dist::ClusterConfig single{1, 1, dist::infiniband100G()};
    const auto base = dist::simulateDataParallel(
        models::resnet50(), frameworks::FrameworkId::MXNet,
        gpusim::quadroP4000(), 32, single);

    struct Ratio
    {
        double value;
        const char *scheme;
    };
    const std::vector<Ratio> ratios = {{1.0, "FP32 (none)"},
                                       {2.0, "FP16"},
                                       {4.0, "8-bit quantized"},
                                       {32.0, "1-bit SGD"}};

    util::Table t({"scheme", "gradient payload", "2M1G throughput",
                   "vs 1 GPU", "exposed comm"});
    for (const auto &ratio : ratios) {
        dist::ClusterConfig cluster{2, 1, dist::ethernet1G()};
        cluster.gradientCompression = ratio.value;
        const auto r = dist::simulateDataParallel(
            models::resnet50(), frameworks::FrameworkId::MXNet,
            gpusim::quadroP4000(), 32, cluster);
        t.addRow({ratio.scheme,
                  util::formatBytes(static_cast<std::uint64_t>(
                      models::resnet50().describe(32).totalParams() *
                      4.0 / ratio.value)),
                  util::formatFixed(r.throughputSamples, 1),
                  util::formatFixed(r.throughputSamples /
                                        base.throughputSamples,
                                    2) +
                      "x",
                  util::formatDuration(r.exposedCommUs * 1e-6)});
    }
    t.print(std::cout);
    std::cout << "\n1 GbE needs ~1-bit-SGD-level compression before two "
                 "machines beat one\nGPU on ResNet-50 — consistent with "
                 "the paper's remark that quantized\ntraining schemes "
                 "exist precisely for this regime (Section 5), at an\n"
                 "accuracy cost this performance model does not capture."
                 "\n\n";
}

} // namespace

TBD_BENCH_MAIN(printFigure)
