/**
 * @file
 * Ablation: gradient compression over slow networks. Observation 13's
 * remedy list includes "reduce the amount of data sent"; this harness
 * sweeps compression ratios (FP32 -> FP16 -> 8-bit -> 1-bit-SGD-style)
 * as a declarative `distCompressions` axis for ResNet-50 over the
 * 1 GbE shape that collapses in Fig. 10, and reports when two
 * machines become worthwhile again.
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

void
printFigure()
{
    benchutil::banner(
        "Ablation - gradient compression over 1 GbE",
        "Observation 13's 'reduce the amount of data sent'");

    // Single-GPU baseline for the break-even comparison.
    core::BenchmarkRequest single;
    single.model = models::resnet50().name;
    single.framework = "MXNet";
    single.batch = 32;
    single.distTopology = "paper-1m1g";
    const auto base_cells =
        core::BenchmarkSuite::runDistSweep({single});
    const dist::DistResult &base = *base_cells[0];

    struct Ratio
    {
        double value;
        const char *scheme;
    };
    const std::vector<Ratio> ratios = {{1.0, "FP32 (none)"},
                                       {2.0, "FP16"},
                                       {4.0, "8-bit quantized"},
                                       {32.0, "1-bit SGD"}};

    // The compression schemes are one sweep axis on the paper's
    // 2-machine Ethernet shape.
    std::vector<double> values;
    for (const auto &ratio : ratios)
        values.push_back(ratio.value);
    const auto results = core::BenchmarkSuite::runDistSweep(
        core::SweepSpec()
            .model(models::resnet50().name)
            .framework("MXNet")
            .batches({32})
            .distTopologies({"paper-2m1g-eth"})
            .distCompressions(values));

    util::Table t({"scheme", "gradient payload", "2M1G throughput",
                   "vs 1 GPU", "exposed comm"});
    for (std::size_t i = 0; i < ratios.size(); ++i) {
        const dist::DistResult &r = *results[i];
        t.addRow({ratios[i].scheme,
                  util::formatBytes(
                      static_cast<std::uint64_t>(r.gradBytes)),
                  util::formatFixed(r.throughputSamples, 1),
                  util::formatFixed(r.throughputSamples /
                                        base.throughputSamples,
                                    2) +
                      "x",
                  util::formatDuration(r.exposedCommUs * 1e-6)});
    }
    t.print(std::cout);
    std::cout << "\n1 GbE needs ~1-bit-SGD-level compression before two "
                 "machines beat one\nGPU on ResNet-50 — consistent with "
                 "the paper's remark that quantized\ntraining schemes "
                 "exist precisely for this regime (Section 5), at an\n"
                 "accuracy cost this performance model does not capture."
                 "\n\n";
}

} // namespace

TBD_BENCH_MAIN(printFigure)
