/**
 * @file
 * Ablation: what would a fused (cuDNN-style) RNN implementation buy
 * the LSTM models? Observations 5 and 7 call for "further research on
 * efficient RNN layer implementations"; this harness answers by
 * re-running the RNN workloads under a modified framework personality
 * with fused cells (no per-step pointwise kernels, reduced per-step
 * dispatch) and higher recurrent-GEMM efficiency.
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

/** PerfSimulator run under an ad-hoc framework profile. */
perf::RunResult
runWithProfile(const models::ModelDesc &model,
               const frameworks::FrameworkProfile &profile,
               std::int64_t batch)
{
    // The simulator resolves profiles by id, so splice the modified
    // lowering directly: lower + replay on a timeline, mirroring
    // PerfSimulator's pipeline for the GPU-side metrics.
    const auto workload = model.describe(batch);
    const auto iter = perf::lowerIteration(workload, profile);
    gpusim::GpuTimeline tl(gpusim::quadroP4000());
    tl.hostCompute(profile.perIterationHostUs);
    for (const auto &item : iter.items)
        tl.launch(item.kernel,
                  profile.launchOverheadUs + item.extraHostUs);
    tl.sync();
    const auto stats = tl.stats();

    perf::RunResult r;
    r.modelName = model.name;
    r.batch = batch;
    r.iterationUs = stats.elapsedUs;
    r.throughputSamples =
        static_cast<double>(batch) / (stats.elapsedUs * 1e-6);
    r.throughputUnits = r.throughputSamples * model.unitsPerSample;
    r.gpuUtilization = stats.gpuUtilization();
    r.fp32Utilization = stats.fp32Utilization(tl.gpu());
    r.kernelsPerIteration = static_cast<std::int64_t>(iter.items.size());
    return r;
}

void
printFigure()
{
    benchutil::banner("Ablation - fused cuDNN-style RNN cells",
                      "research direction of Observations 5 and 7");

    struct Case
    {
        const models::ModelDesc *model;
        frameworks::FrameworkId framework;
        std::int64_t batch;
    };
    const std::vector<Case> cases = {
        {&models::seq2seqNmt(), frameworks::FrameworkId::TensorFlow, 128},
        {&models::sockeye(), frameworks::FrameworkId::MXNet, 64},
        {&models::deepSpeech2(), frameworks::FrameworkId::MXNet, 4},
    };

    util::Table t({"implementation", "batch", "variant",
                   "throughput", "kernels/iter", "GPU util",
                   "FP32 util", "speedup"});
    for (const auto &c : cases) {
        frameworks::FrameworkProfile base =
            frameworks::profileFor(c.framework);
        frameworks::FrameworkProfile fused = base;
        fused.fusedRnnCells = true;
        fused.rnnStepHostUs = 40.0; // per-chunk dispatch only
        fused.smallGemmEff =
            std::min(0.9, base.smallGemmEff + 0.10); // fused gate math

        const auto before = runWithProfile(*c.model, base, c.batch);
        const auto after = runWithProfile(*c.model, fused, c.batch);
        auto add = [&](const perf::RunResult &r, const char *variant,
                       double speedup) {
            t.addRow({c.model->name + " (" + base.name + ")",
                      std::to_string(c.batch), variant,
                      util::formatFixed(r.throughputUnits, 1),
                      std::to_string(r.kernelsPerIteration),
                      util::formatPercent(r.gpuUtilization),
                      util::formatPercent(r.fp32Utilization),
                      util::formatFixed(speedup, 2) + "x"});
        };
        add(before, "unrolled (shipped)", 1.0);
        add(after, "fused cells",
            after.throughputUnits / before.throughputUnits);
    }
    t.print(std::cout);
    std::cout << "\nFusing the cells removes the per-step pointwise "
                 "kernels and most of the\ndispatch cost — the gap is "
                 "the headroom Observations 5/7 point at.\n\n";
}

} // namespace

TBD_BENCH_MAIN(printFigure)
