/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses.
 *
 * Every binary in bench/ regenerates one table or figure from the
 * paper's evaluation section: it prints the same rows/series the paper
 * reports (who wins, by what factor, where the crossovers fall), and
 * additionally registers google-benchmark cases that time the
 * simulation itself with the reproduced metrics attached as counters.
 */

#ifndef TBD_BENCH_BENCH_UTIL_H
#define TBD_BENCH_BENCH_UTIL_H

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "core/tbd.h"
#include "tensor/simd.h"

namespace tbd::benchutil {

/**
 * Refuse to time a non-Release build, and stamp run provenance.
 *
 * A committed baseline recorded from an unoptimized build poisons
 * every later comparison (BENCH_micro.json once shipped from a debug
 * harness), so the harness hard-fails unless CMake said Release. Set
 * TBD_BENCH_ALLOW_DEBUG=1 to smoke-test a debug harness anyway; the
 * run is still tagged so the JSON can never masquerade as a baseline.
 * Also records the active SIMD tier — a scalar-tier number is not
 * comparable to an AVX2 one.
 *
 * Provenance keys on the `tbd_build_type` stamp this function adds,
 * NOT on google-benchmark's own `library_build_type` context field:
 * that field describes how the *benchmark library* was compiled and
 * says nothing about our TUs (a Release libbenchmark happily links a
 * debug harness and vice versa — exactly the ambiguity behind the
 * original incident). check_bench_regression.py reads only
 * `tbd_build_type`; treat `library_build_type` as noise.
 *
 * @return true when benchmarks may run.
 */
inline bool
guardBuildType()
{
#ifdef TBD_BENCH_BUILD_TYPE
    const std::string build_type = TBD_BENCH_BUILD_TYPE;
#else
    const std::string build_type = "unknown";
#endif
    const bool release = build_type == "Release";
    if (!release) {
        const char *allow = std::getenv("TBD_BENCH_ALLOW_DEBUG");
        if (allow == nullptr || std::strcmp(allow, "1") != 0) {
            std::fprintf(stderr,
                         "error: refusing to benchmark a '%s' build; "
                         "numbers from unoptimized builds are not "
                         "comparable to committed baselines.\n"
                         "Configure with -DCMAKE_BUILD_TYPE=Release, "
                         "or set TBD_BENCH_ALLOW_DEBUG=1 to run "
                         "anyway (tagged, never a baseline).\n",
                         build_type.c_str());
            return false;
        }
        std::fprintf(stderr,
                     "warning: benchmarking a '%s' build "
                     "(TBD_BENCH_ALLOW_DEBUG=1); do not commit these "
                     "numbers.\n",
                     build_type.c_str());
    }
    benchmark::AddCustomContext("tbd_build_type", build_type);
    benchmark::AddCustomContext(
        "tbd_simd_tier",
        tensor::simd::tierName(tensor::simd::activeTier()));
    return true;
}

/** Run one configuration through the performance simulator. */
inline perf::RunResult
simulate(const models::ModelDesc &model, frameworks::FrameworkId fw,
         const gpusim::GpuSpec &gpu, std::int64_t batch,
         bool enforceMemory = true)
{
    perf::PerfSimulator sim;
    perf::RunConfig rc;
    rc.model = &model;
    rc.framework = fw;
    rc.gpu = gpu;
    rc.batch = batch;
    rc.enforceMemory = enforceMemory;
    return sim.run(rc);
}

/** Like simulate(), but nullopt when the batch exceeds GPU memory. */
inline std::optional<perf::RunResult>
simulateIfFits(const models::ModelDesc &model, frameworks::FrameworkId fw,
               const gpusim::GpuSpec &gpu, std::int64_t batch)
{
    try {
        return simulate(model, fw, gpu, batch);
    } catch (const util::FatalError &) {
        return std::nullopt;
    }
}

/** One sweep cell as a BenchmarkSuite request (for runSweep). */
inline core::BenchmarkRequest
requestFor(const models::ModelDesc &model, frameworks::FrameworkId fw,
           const gpusim::GpuSpec &gpu, std::int64_t batch)
{
    core::BenchmarkRequest r;
    r.model = model.name;
    r.framework = frameworks::frameworkName(fw);
    r.gpu = gpu.name;
    r.batch = batch;
    return r;
}

/**
 * Register a google-benchmark case that re-runs the simulation each
 * iteration and attaches the reproduced metrics as counters.
 */
inline void
registerSimCase(const std::string &name, const models::ModelDesc &model,
                frameworks::FrameworkId fw, const gpusim::GpuSpec &gpu,
                std::int64_t batch)
{
    benchmark::RegisterBenchmark(
        name.c_str(),
        [&model, fw, gpu, batch](benchmark::State &state) {
            perf::RunResult result;
            for (auto _ : state) {
                result = simulate(model, fw, gpu, batch);
                benchmark::DoNotOptimize(result.iterationUs);
            }
            state.counters["throughput"] = result.throughputUnits;
            state.counters["gpu_util_pct"] =
                result.gpuUtilization * 100.0;
            state.counters["fp32_util_pct"] =
                result.fp32Utilization * 100.0;
            state.counters["cpu_util_pct"] =
                result.cpuUtilization * 100.0;
            state.counters["mem_GiB"] =
                static_cast<double>(result.memory.total()) /
                (1024.0 * 1024.0 * 1024.0);
        });
}

/** One panel of the Figure 4/5/6 batch sweeps. */
struct SweepPanel
{
    const char *panel;                ///< e.g. "(a) ResNet-50"
    const models::ModelDesc *model;
    frameworks::FrameworkId framework;
};

/** The (model, framework) panels of Figures 4, 5 and 6. */
inline std::vector<SweepPanel>
figure456Panels()
{
    using FI = frameworks::FrameworkId;
    return {
        {"(a) ResNet-50", &models::resnet50(), FI::TensorFlow},
        {"(a) ResNet-50", &models::resnet50(), FI::MXNet},
        {"(a) ResNet-50", &models::resnet50(), FI::CNTK},
        {"(b) Inception-v3", &models::inceptionV3(), FI::MXNet},
        {"(b) Inception-v3", &models::inceptionV3(), FI::TensorFlow},
        {"(b) Inception-v3", &models::inceptionV3(), FI::CNTK},
        {"(c) Seq2Seq", &models::seq2seqNmt(), FI::TensorFlow},
        {"(c) Seq2Seq", &models::sockeye(), FI::MXNet},
        {"(d) Transformer", &models::transformer(), FI::TensorFlow},
        {"(e) WGAN", &models::wgan(), FI::TensorFlow},
        {"(f) Deep Speech 2", &models::deepSpeech2(), FI::MXNet},
        {"(g) A3C", &models::a3c(), FI::MXNet},
    };
}

/**
 * The sweep cells of one Figure 4/5/6 panel: the panel's model and
 * framework over the model's paper batch sweep on the Quadro P4000.
 * One SweepSpec per panel (rather than one global product) preserves
 * the figures' per-panel framework order.
 */
inline std::vector<core::BenchmarkRequest>
panelCells(const SweepPanel &panel)
{
    return core::SweepSpec()
        .model(panel.model->name)
        .framework(frameworks::frameworkName(panel.framework))
        .requests();
}

/** Print a figure banner. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("================================================\n");
    std::printf("TBD reproduction: %s\n(%s of Zhu et al., "
                "\"TBD: Benchmarking and Analyzing Deep Neural Network "
                "Training\", 2018)\n",
                what, paper_ref);
    std::printf("================================================\n\n");
}

} // namespace tbd::benchutil

/**
 * Standard bench main: print the reproduced figure, then run any
 * registered google-benchmark cases (pass --benchmark_filter=-.* to
 * print the figure only). Under TBD_OBS=1 the whole run sits inside
 * one root span so the exported trace accounts for the harness wall
 * time (the tbd_obs check gate requires >= 95% root coverage).
 */
#define TBD_BENCH_MAIN(printFigureFn)                                      \
    int main(int argc, char **argv)                                       \
    {                                                                      \
        ::tbd::obs::Span bench_span("bench.main");                         \
        {                                                                  \
            ::tbd::obs::Span figure_span("bench.figure",                   \
                                         bench_span.id());                 \
            printFigureFn();                                               \
        }                                                                  \
        ::tbd::obs::Span gbench_span("bench.benchmark",                    \
                                     bench_span.id());                     \
        ::benchmark::Initialize(&argc, argv);                              \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))          \
            return 1;                                                      \
        if (!::tbd::benchutil::guardBuildType())                           \
            return 2;                                                      \
        ::benchmark::RunSpecifiedBenchmarks();                             \
        ::benchmark::Shutdown();                                           \
        return 0;                                                          \
    }

#endif // TBD_BENCH_BENCH_UTIL_H
