/**
 * @file
 * Figure 8: hardware sensitivity — Quadro P4000 vs TITAN Xp on
 * ResNet-50, Inception-v3 and the Seq2Seq models. The paper's point
 * (Observation 10): the wider GPU is faster in absolute terms but
 * achieves *lower* GPU and FP32 utilization.
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

struct Fig8Config
{
    const models::ModelDesc *model;
    frameworks::FrameworkId framework;
    std::int64_t batch;
    double paperP4000; ///< paper throughput on P4000
    double paperXp;    ///< paper throughput on TITAN Xp
};

void
printFigure()
{
    benchutil::banner("Figure 8 - P4000 vs TITAN Xp",
                      "Fig. 8 / Observation 10");

    using FI = frameworks::FrameworkId;
    const std::vector<Fig8Config> configs = {
        {&models::resnet50(), FI::MXNet, 32, 89, 184},
        {&models::inceptionV3(), FI::MXNet, 32, 61, 124},
        {&models::sockeye(), FI::MXNet, 64, 229, 232},
        {&models::resnet50(), FI::TensorFlow, 32, 71, 102},
        {&models::inceptionV3(), FI::TensorFlow, 32, 42, 61},
        {&models::seq2seqNmt(), FI::TensorFlow, 128, 365, 530},
    };

    // Both GPUs of every config are independent cells: one sweep over
    // the pool, then consume pairwise in config order. The spec's GPU
    // axis expands before batches, so each config yields its P4000
    // cell followed by its TITAN Xp cell.
    std::vector<core::BenchmarkRequest> cells;
    for (const auto &cfg : configs) {
        const auto pair =
            core::SweepSpec()
                .model(cfg.model->name)
                .framework(frameworks::frameworkName(cfg.framework))
                .gpus({gpusim::quadroP4000().name,
                       gpusim::titanXp().name})
                .batches({cfg.batch})
                .requests();
        cells.insert(cells.end(), pair.begin(), pair.end());
    }
    const auto results = core::BenchmarkSuite::runSweep(cells);

    util::Table t({"implementation", "batch", "GPU", "throughput",
                   "normalized", "GPU util", "FP32 util",
                   "paper throughput"});
    std::size_t cell = 0;
    for (const auto &cfg : configs) {
        const auto p4 = results[cell++].value();
        const auto xp = results[cell++].value();
        auto add = [&](const perf::RunResult &r, double norm,
                       double paper_thr) {
            t.addRow({cfg.model->name + " (" +
                          frameworks::frameworkName(cfg.framework) + ")",
                      std::to_string(cfg.batch), r.gpuName,
                      util::formatFixed(r.throughputUnits, 0),
                      util::formatPercent(norm, 0),
                      util::formatPercent(r.gpuUtilization),
                      util::formatPercent(r.fp32Utilization),
                      util::formatFixed(paper_thr, 0)});
        };
        add(p4, 1.0, cfg.paperP4000);
        add(xp, xp.throughputUnits / p4.throughputUnits, cfg.paperXp);
    }
    t.print(std::cout);
    std::cout << "\nObservation 10: TITAN Xp raises throughput but its "
                 "compute resources are\nutilized less efficiently than "
                 "the P4000's.\n\n";

    benchutil::registerSimCase("fig8/ResNet-50/P4000",
                               models::resnet50(), FI::MXNet,
                               gpusim::quadroP4000(), 32);
    benchutil::registerSimCase("fig8/ResNet-50/TITANXp",
                               models::resnet50(), FI::MXNet,
                               gpusim::titanXp(), 32);
}

} // namespace

TBD_BENCH_MAIN(printFigure)
