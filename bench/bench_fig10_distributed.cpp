/**
 * @file
 * Figure 10: ResNet-50 on MXNet with multiple GPUs and machines,
 * per-GPU mini-batches 8/16/32, across the paper's five cluster
 * configurations — 1M1G, 2M1G over Ethernet, 2M1G over InfiniBand,
 * 1M2G and 1M4G (Observation 13).
 *
 * Two sections: the historical closed-form table through the
 * deprecated ClusterConfig shim (kept bitwise-frozen as the
 * compatibility reference), then the same five shapes as a
 * declarative SweepSpec over the dist:: topology registry, costed by
 * the graph engine. The two models agree on the *ordering* (which is
 * what the figure shows) while differing in the exact microseconds —
 * the graph engine routes and contends instead of charging one
 * representative link.
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

void
printFigure()
{
    benchutil::banner(
        "Figure 10 - ResNet-50/MXNet multi-GPU and multi-machine",
        "Fig. 10 / Observation 13");

    const std::vector<dist::ClusterConfig> clusters = {
        {1, 1, dist::infiniband100G()},
        {2, 1, dist::ethernet1G()},
        {2, 1, dist::infiniband100G()},
        {1, 2, dist::infiniband100G()},
        {1, 4, dist::infiniband100G()},
    };

    // The per-GPU batch axis comes from a SweepSpec so the figure
    // shares its cell construction (and name resolution) with the
    // single-GPU sweeps.
    const auto batch_cells = core::SweepSpec()
                                 .model(models::resnet50().name)
                                 .framework("MXNet")
                                 .batches({8, 16, 32})
                                 .requests();

    util::Table t({"configuration", "per-GPU batch",
                   "throughput (samples/s)", "exposed comm",
                   "scaling efficiency"});
    for (const auto &cluster : clusters) {
        for (const auto &cell : batch_cells) {
            const std::int64_t batch = cell.batch;
            auto r = dist::simulateDataParallel(
                *core::findModelDesc(cell.model),
                *core::BenchmarkSuite::findFramework(cell.framework),
                *core::BenchmarkSuite::findGpu(cell.gpu), batch,
                cluster);
            t.addRow({r.label, std::to_string(batch),
                      util::formatFixed(r.throughputSamples, 1),
                      util::formatDuration(r.exposedCommUs * 1e-6),
                      util::formatPercent(r.scalingEfficiency)});
        }
    }
    t.print(std::cout);
    std::cout << "\nObservation 13: gradient exchange over slow Ethernet "
                 "drops below the\nsingle-GPU baseline; InfiniBand and "
                 "intra-machine PCIe scale nearly\nlinearly.\n\n";

    // ---- Section 2: the same figure as a declarative sweep over the
    // topology registry, costed on the graph engine. distWorkers stays
    // unset so every pinned paper shape runs at its fixedWorkers.
    std::cout << "Same five shapes on the topology-graph engine "
                 "(ring collective):\n";
    const core::SweepSpec graph_spec =
        core::SweepSpec()
            .model(models::resnet50().name)
            .framework("MXNet")
            .batches({8, 16, 32})
            .distTopologies({"paper-1m1g", "paper-2m1g-eth",
                             "paper-2m1g-ib", "paper-1m2g",
                             "paper-1m4g"});
    const auto graph_cells = graph_spec.requests();
    const auto graph_results =
        core::BenchmarkSuite::runDistSweep(graph_spec);
    util::Table g({"configuration", "per-GPU batch",
                   "throughput (samples/s)", "exposed comm",
                   "scaling efficiency", "busiest link"});
    for (std::size_t i = 0; i < graph_results.size(); ++i) {
        const auto &r = graph_results[i];
        if (!r.has_value())
            continue;
        g.addRow({r->label, std::to_string(graph_cells[i].batch),
                  util::formatFixed(r->throughputSamples, 1),
                  util::formatDuration(r->exposedCommUs * 1e-6),
                  util::formatPercent(r->scalingEfficiency),
                  r->busiestEdge.empty() ? "-" : r->busiestEdge});
    }
    g.print(std::cout);
    std::cout << "\nThe graph engine reproduces the figure's ordering "
                 "(Ethernet collapses,\nInfiniBand and PCIe scale) and "
                 "additionally names the bottleneck link\nper cell.\n\n";

    benchmark::RegisterBenchmark(
        "fig10/2M1G_ethernet", [](benchmark::State &state) {
            dist::ClusterConfig cluster{2, 1, dist::ethernet1G()};
            dist::ScalingResult r;
            for (auto _ : state) {
                r = dist::simulateDataParallel(
                    models::resnet50(), frameworks::FrameworkId::MXNet,
                    gpusim::quadroP4000(), 32, cluster);
                benchmark::DoNotOptimize(r.iterationUs);
            }
            state.counters["throughput"] = r.throughputSamples;
            state.counters["scaling_eff_pct"] =
                r.scalingEfficiency * 100.0;
        });
}

} // namespace

TBD_BENCH_MAIN(printFigure)
