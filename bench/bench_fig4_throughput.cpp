/**
 * @file
 * Figure 4: DNN training throughput for different models across
 * mini-batch sizes on the Quadro P4000 (plus the Faster R-CNN single
 * number quoted in Section 4.2.1: ~2.3 images/s on both frameworks).
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

void
printFigure()
{
    benchutil::banner("Figure 4 - training throughput vs mini-batch size",
                      "Fig. 4 + Sec. 4.2.1");

    // Every (panel, batch) cell is independent: fan the whole figure
    // out over the thread pool in one runSweep, then render in order.
    const auto panels = benchutil::figure456Panels();
    std::vector<core::BenchmarkRequest> cells;
    for (const auto &panel : panels) {
        const auto panel_cells = benchutil::panelCells(panel);
        cells.insert(cells.end(), panel_cells.begin(),
                     panel_cells.end());
    }
    const auto results = core::BenchmarkSuite::runSweep(cells);

    std::size_t cell = 0;
    for (const auto &panel : panels) {
        const auto &model = *panel.model;
        util::Table t({"panel", "implementation", "mini-batch",
                       "throughput (" + model.throughputUnit + ")"});
        for (std::int64_t batch : model.batchSweep) {
            const auto &r = results[cell++];
            t.addRow({panel.panel,
                      model.name + " (" +
                          frameworks::frameworkName(panel.framework) +
                          ")",
                      std::to_string(batch),
                      r ? util::formatFixed(r->throughputUnits, 1)
                        : "OOM"});
        }
        t.print(std::cout);
        std::cout << '\n';

        benchutil::registerSimCase(
            "fig4/" + model.name + "/" +
                frameworks::frameworkName(panel.framework),
            model, panel.framework, gpusim::quadroP4000(),
            model.batchSweep.back());
    }

    // ASCII renditions of the two most-cited panels.
    auto panel_chart = [](const models::ModelDesc &model,
                          std::vector<frameworks::FrameworkId> fws,
                          const char *title) {
        std::vector<double> xs(model.batchSweep.begin(),
                               model.batchSweep.end());
        std::vector<std::string> fw_names;
        for (auto fw : fws)
            fw_names.push_back(frameworks::frameworkName(fw));
        // Framework-major order: the spec expands frameworks before
        // batches, matching the per-series consumption below.
        const auto rs = core::BenchmarkSuite::runSweep(
            core::SweepSpec().model(model.name).frameworks(fw_names));
        std::vector<util::Series> series;
        std::size_t k = 0;
        for (auto fw : fws) {
            util::Series s;
            s.label = model.name + " (" +
                      frameworks::frameworkName(fw) + ")";
            for (std::size_t bi = 0; bi < model.batchSweep.size(); ++bi) {
                const auto &r = rs[k++];
                s.ys.push_back(r ? r->throughputUnits : 0.0);
            }
            series.push_back(std::move(s));
        }
        util::ChartOptions opt;
        opt.xLabel = "mini-batch";
        opt.yLabel = title;
        opt.logX = true;
        std::cout << util::asciiChart(xs, series, opt) << '\n';
    };
    using FI = frameworks::FrameworkId;
    panel_chart(models::resnet50(),
                {FI::TensorFlow, FI::MXNet, FI::CNTK},
                "Fig 4a  ResNet-50 throughput (samples/s)");
    panel_chart(models::seq2seqNmt(), {FI::TensorFlow},
                "Fig 4c  Seq2Seq throughput (samples/s), NMT");
    panel_chart(models::sockeye(), {FI::MXNet},
                "Fig 4c  Seq2Seq throughput (samples/s), Sockeye");

    // Faster R-CNN: fixed single-image batches.
    util::Table frcnn({"model", "implementation",
                       "throughput (images/s)"});
    const auto frcnn_cells = core::SweepSpec()
                                 .model(models::fasterRcnn().name)
                                 .batches({1})
                                 .requests();
    const auto frcnn_rs = core::BenchmarkSuite::runSweep(frcnn_cells);
    for (std::size_t i = 0; i < frcnn_cells.size(); ++i) {
        frcnn.addRow({"Faster R-CNN", frcnn_cells[i].framework,
                      util::formatFixed(
                          frcnn_rs[i].value().throughputSamples, 1)});
    }
    frcnn.print(std::cout);
    std::cout << "(paper: 2.3 images/s on both implementations)\n\n";
}

} // namespace

TBD_BENCH_MAIN(printFigure)
