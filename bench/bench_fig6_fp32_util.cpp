/**
 * @file
 * Figure 6: GPU FP32 utilization (Eq. 2 — executed FP32 instructions
 * against the peak over GPU-active time) across mini-batch sizes, plus
 * Faster R-CNN's single numbers (Sec. 4.2.3: 70.9% MXNet, 58.9% TF in
 * the paper).
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

void
printFigure()
{
    benchutil::banner("Figure 6 - FP32 utilization vs mini-batch size",
                      "Fig. 6 + Sec. 4.2.3");

    // All cells fan out over the thread pool in one ordered sweep.
    const auto panels = benchutil::figure456Panels();
    std::vector<core::BenchmarkRequest> cells;
    for (const auto &panel : panels) {
        const auto panel_cells = benchutil::panelCells(panel);
        cells.insert(cells.end(), panel_cells.begin(),
                     panel_cells.end());
    }
    const auto frcnn_cells = core::SweepSpec()
                                 .model(models::fasterRcnn().name)
                                 .batches({1})
                                 .requests();
    cells.insert(cells.end(), frcnn_cells.begin(), frcnn_cells.end());
    const auto results = core::BenchmarkSuite::runSweep(cells);

    std::size_t cell = 0;
    for (const auto &panel : panels) {
        const auto &model = *panel.model;
        util::Table t({"panel", "implementation", "mini-batch",
                       "FP32 utilization"});
        for (std::int64_t batch : model.batchSweep) {
            const auto &r = results[cell++];
            t.addRow({panel.panel,
                      model.name + " (" +
                          frameworks::frameworkName(panel.framework) +
                          ")",
                      std::to_string(batch),
                      r ? util::formatPercent(r->fp32Utilization)
                        : "OOM"});
        }
        t.print(std::cout);
        std::cout << '\n';
    }

    util::Table frcnn({"model", "implementation", "FP32 utilization"});
    for (auto fw : models::fasterRcnn().frameworks) {
        const auto &r = results[cell++];
        frcnn.addRow({"Faster R-CNN", frameworks::frameworkName(fw),
                      util::formatPercent(r.value().fp32Utilization)});
    }
    frcnn.print(std::cout);
    std::cout << "(paper: 70.9% MXNet, 58.9% TensorFlow)\n\n";

    benchutil::registerSimCase("fig6/ResNet-50/MXNet",
                               models::resnet50(),
                               frameworks::FrameworkId::MXNet,
                               gpusim::quadroP4000(), 32);
    benchutil::registerSimCase("fig6/NMT/TensorFlow",
                               models::seq2seqNmt(),
                               frameworks::FrameworkId::TensorFlow,
                               gpusim::quadroP4000(), 128);
}

} // namespace

TBD_BENCH_MAIN(printFigure)
