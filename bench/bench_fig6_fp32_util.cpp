/**
 * @file
 * Figure 6: GPU FP32 utilization (Eq. 2 — executed FP32 instructions
 * against the peak over GPU-active time) across mini-batch sizes, plus
 * Faster R-CNN's single numbers (Sec. 4.2.3: 70.9% MXNet, 58.9% TF in
 * the paper).
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

void
printFigure()
{
    benchutil::banner("Figure 6 - FP32 utilization vs mini-batch size",
                      "Fig. 6 + Sec. 4.2.3");

    for (const auto &panel : benchutil::figure456Panels()) {
        const auto &model = *panel.model;
        util::Table t({"panel", "implementation", "mini-batch",
                       "FP32 utilization"});
        for (std::int64_t batch : model.batchSweep) {
            auto r = benchutil::simulateIfFits(
                model, panel.framework, gpusim::quadroP4000(), batch);
            t.addRow({panel.panel,
                      model.name + " (" +
                          frameworks::frameworkName(panel.framework) +
                          ")",
                      std::to_string(batch),
                      r ? util::formatPercent(r->fp32Utilization)
                        : "OOM"});
        }
        t.print(std::cout);
        std::cout << '\n';
    }

    util::Table frcnn({"model", "implementation", "FP32 utilization"});
    for (auto fw : models::fasterRcnn().frameworks) {
        auto r = benchutil::simulate(models::fasterRcnn(), fw,
                                     gpusim::quadroP4000(), 1);
        frcnn.addRow({"Faster R-CNN", frameworks::frameworkName(fw),
                      util::formatPercent(r.fp32Utilization)});
    }
    frcnn.print(std::cout);
    std::cout << "(paper: 70.9% MXNet, 58.9% TensorFlow)\n\n";

    benchutil::registerSimCase("fig6/ResNet-50/MXNet",
                               models::resnet50(),
                               frameworks::FrameworkId::MXNet,
                               gpusim::quadroP4000(), 32);
    benchutil::registerSimCase("fig6/NMT/TensorFlow",
                               models::seq2seqNmt(),
                               frameworks::FrameworkId::TensorFlow,
                               gpusim::quadroP4000(), 128);
}

} // namespace

TBD_BENCH_MAIN(printFigure)
