/**
 * @file
 * Table 6: the five longest-running kernels with below-average FP32
 * utilization for ResNet-50 on MXNet at mini-batch 32. The paper's
 * rows are the cuDNN batch-norm pair, the cuDNN activation pair and
 * MXNet's generic elementwise kernel; batch norm heads the list on
 * both frameworks (Observation 8).
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

void
printFigure()
{
    benchutil::banner(
        "Table 6 - longest low-FP32-utilization kernels "
        "(ResNet-50, batch 32, MXNet)",
        "Table 6 / Observation 8");

    const auto r = benchutil::simulate(models::resnet50(),
                                       frameworks::FrameworkId::MXNet,
                                       gpusim::quadroP4000(), 32);
    std::cout << "trace mean FP32 utilization: "
              << util::formatPercent(
                     analysis::traceMeanFp32Util(r.kernelTrace))
              << "\n\n";

    util::Table t({"Duration", "Utilization", "Kernel Name"});
    for (const auto &agg :
         analysis::longestLowUtilKernels(r.kernelTrace, 5)) {
        t.addRow({util::formatPercent(agg.durationShare, 2),
                  util::formatPercent(agg.meanFp32Util),
                  agg.name + "..."});
    }
    t.print(std::cout);
    std::cout << "\npaper's Table 6 rows: cudnn bn_bw_1C11 "
                 "(9.43%/30.0%), cudnn bn_fw_tr_1C11 (7.96%/42.3%),\n"
                 "cudnn activation_bw_4d (5.14%/46.3%), cudnn "
                 "activation_fw_4d (3.52%/20.0%),\n"
                 "mxnet_generic_kernel (2.85%/40.0%)\n\n";

    benchutil::registerSimCase("table6/ResNet-50/MXNet",
                               models::resnet50(),
                               frameworks::FrameworkId::MXNet,
                               gpusim::quadroP4000(), 32);
}

} // namespace

TBD_BENCH_MAIN(printFigure)
