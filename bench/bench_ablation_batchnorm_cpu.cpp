/**
 * @file
 * Ablation: Observation 9 suggests idle CPUs "can be used to compute
 * layers that cannot benefit from the massive GPU compute power, such
 * as batch normalization". This harness tests that recommendation
 * quantitatively: it moves the batch-norm kernels of ResNet-50 off
 * the GPU stream onto the 28-core host and compares iteration times —
 * accounting for the extra PCIe round trip of the activations the CPU
 * would need.
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

/** Effective FP32 rate of the 28-core Xeon for streaming kernels. */
constexpr double kCpuFlopsEffective = 28 * 2.9e9 * 8 * 0.35; // AVX FMA

void
printFigure()
{
    benchutil::banner(
        "Ablation - batch norm on the CPU",
        "recommendation of Observation 9");

    util::Table t({"variant", "GPU time/iter", "BN-on-CPU cost",
                   "PCIe round trip", "iteration", "throughput",
                   "verdict"});

    const auto &model = models::resnet50();
    const auto &fw = frameworks::mxnet();
    const std::int64_t batch = 32;
    const auto workload = model.describe(batch);
    const auto iter = perf::lowerIteration(workload, fw);

    // Baseline: everything on the GPU.
    gpusim::GpuTimeline base_tl(gpusim::quadroP4000());
    for (const auto &item : iter.items)
        base_tl.launch(item.kernel, fw.launchOverheadUs + item.extraHostUs);
    base_tl.sync();
    const double base_us = base_tl.stats().elapsedUs;

    // Variant: strip batch-norm kernels from the GPU stream; compute
    // their FLOPs on the host and ship the activations both ways.
    gpusim::GpuTimeline cpu_tl(gpusim::quadroP4000());
    double bn_flops = 0.0, bn_bytes = 0.0;
    for (const auto &item : iter.items) {
        if (item.kernel.category == gpusim::KernelCategory::BatchNorm) {
            bn_flops += item.kernel.flops;
            bn_bytes += item.kernel.bytes;
            continue;
        }
        cpu_tl.launch(item.kernel, fw.launchOverheadUs + item.extraHostUs);
    }
    // CPU compute is serial with the dependent GPU stream (each BN sits
    // between two convolutions).
    const double cpu_compute_us = bn_flops / kCpuFlopsEffective * 1e6;
    const double pcie_us =
        2.0 * bn_bytes / (gpusim::kPcie3GBs * 1e9) * 1e6;
    cpu_tl.hostCompute(cpu_compute_us + pcie_us);
    cpu_tl.sync();
    const double cpu_us = cpu_tl.stats().elapsedUs;

    auto row = [&](const char *variant, double gpu_us, double cpu_cost,
                   double pcie, double total) {
        t.addRow({variant, util::formatDuration(gpu_us * 1e-6),
                  util::formatDuration(cpu_cost * 1e-6),
                  util::formatDuration(pcie * 1e-6),
                  util::formatDuration(total * 1e-6),
                  util::formatFixed(batch / (total * 1e-6), 1) +
                      " samples/s",
                  total == base_us ? "baseline"
                  : total < base_us ? "faster"
                                    : "slower"});
    };
    row("all on GPU (baseline)", base_us, 0.0, 0.0, base_us);
    row("batch norm on 28-core CPU", cpu_tl.stats().gpuBusyUs,
        cpu_compute_us, pcie_us, cpu_us);
    t.print(std::cout);

    std::cout << "\nVerdict: shipping the activations across PCIe costs "
                 "more than the GPU\nspends on the batch-norm kernels — "
                 "the recommendation only pays off if\nBN fuses with an "
                 "op that already lives on the CPU, or with a faster\n"
                 "host link.\n\n";
}

} // namespace

TBD_BENCH_MAIN(printFigure)
