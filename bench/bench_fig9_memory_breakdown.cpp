/**
 * @file
 * Figure 9: GPU memory usage breakdown (weights / weight gradients /
 * feature maps / workspace / dynamic) per model and mini-batch — the
 * output of the paper's memory-profiler contribution. Feature maps
 * dominating the footprint is Observation 11; their linear growth with
 * batch is the premise of Observation 12.
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

void
printFigure()
{
    benchutil::banner("Figure 9 - memory breakdown by data structure",
                      "Fig. 9 / Observations 11-12");

    struct Panel
    {
        const models::ModelDesc *model;
        frameworks::FrameworkId framework;
        std::vector<std::int64_t> batches;
    };
    using FI = frameworks::FrameworkId;
    const std::vector<Panel> panels = {
        {&models::resnet50(), FI::MXNet, {8, 16, 32}},
        {&models::resnet50(), FI::TensorFlow, {8, 16, 32}},
        {&models::resnet50(), FI::CNTK, {16, 32, 64}},
        {&models::wgan(), FI::TensorFlow, {16, 32, 64}},
        {&models::inceptionV3(), FI::MXNet, {8, 16, 32}},
        {&models::inceptionV3(), FI::TensorFlow, {8, 16, 32}},
        {&models::inceptionV3(), FI::CNTK, {16, 32, 64}},
        {&models::deepSpeech2(), FI::MXNet, {1, 2, 3, 4}},
        {&models::sockeye(), FI::MXNet, {16, 32, 64}},
        {&models::seq2seqNmt(), FI::TensorFlow, {32, 64, 128}},
        {&models::transformer(), FI::TensorFlow, {512, 1024, 2048}},
        {&models::a3c(), FI::MXNet, {32, 64, 128}},
    };

    // Fan every (panel, batch) cell over the thread pool at once.
    std::vector<core::BenchmarkRequest> cells;
    for (const auto &panel : panels) {
        const auto panel_cells =
            core::SweepSpec()
                .model(panel.model->name)
                .framework(frameworks::frameworkName(panel.framework))
                .batches(panel.batches)
                .requests();
        cells.insert(cells.end(), panel_cells.begin(),
                     panel_cells.end());
    }
    const auto results = core::BenchmarkSuite::runSweep(cells);

    std::size_t cell = 0;
    for (const auto &panel : panels) {
        util::Table t({"implementation", "batch", "feature maps",
                       "weights", "weight grads", "dynamic", "workspace",
                       "total", "fm share"});
        for (std::int64_t batch : panel.batches) {
            const auto &r = results[cell++];
            if (!r) {
                t.addRow({panel.model->name, std::to_string(batch), "OOM",
                          "-", "-", "-", "-", "-", "-"});
                continue;
            }
            const auto &m = r->memory;
            using MC = memprof::MemCategory;
            t.addRow(
                {panel.model->name + " (" +
                     frameworks::frameworkName(panel.framework) + ")",
                 std::to_string(batch),
                 util::formatBytes(m.of(MC::FeatureMaps)),
                 util::formatBytes(m.of(MC::Weights)),
                 util::formatBytes(m.of(MC::WeightGradients)),
                 util::formatBytes(m.of(MC::Dynamic)),
                 util::formatBytes(m.of(MC::Workspace)),
                 util::formatBytes(m.total()),
                 util::formatPercent(m.fraction(MC::FeatureMaps))});
        }
        t.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "Observation 11: feature maps dominate every model's "
                 "footprint\n(62-89% in the paper; weights dominate only "
                 "inference).\n\n";

    benchutil::registerSimCase("fig9/Sockeye/64", models::sockeye(),
                               FI::MXNet, gpusim::quadroP4000(), 64);
}

} // namespace

TBD_BENCH_MAIN(printFigure)
