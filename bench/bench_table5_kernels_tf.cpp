/**
 * @file
 * Table 5: the five longest-running kernels with below-average FP32
 * utilization for ResNet-50 on TensorFlow at mini-batch 32 — the
 * paper's "top candidates for acceleration" (Observation 8). The
 * reproduced report surfaces the same kernel families the paper's
 * nvprof run does: the cuDNN batch-norm pair, magma/sgemm, Eigen
 * elementwise kernels and the TensorFlow bias kernel.
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

void
printFigure()
{
    benchutil::banner(
        "Table 5 - longest low-FP32-utilization kernels "
        "(ResNet-50, batch 32, TensorFlow)",
        "Table 5 / Observation 8");

    const auto r = benchutil::simulate(models::resnet50(),
                                       frameworks::FrameworkId::TensorFlow,
                                       gpusim::quadroP4000(), 32);
    std::cout << "trace mean FP32 utilization: "
              << util::formatPercent(
                     analysis::traceMeanFp32Util(r.kernelTrace))
              << "\n\n";

    util::Table t({"Duration", "Utilization", "Kernel Name"});
    for (const auto &agg :
         analysis::longestLowUtilKernels(r.kernelTrace, 5)) {
        t.addRow({util::formatPercent(agg.durationShare, 2),
                  util::formatPercent(agg.meanFp32Util),
                  agg.name + "..."});
    }
    t.print(std::cout);
    std::cout << "\npaper's Table 5 rows: magma_lds128_sgemm_kernel "
                 "(8.36%/30.0%),\ncudnn bn_bw_1C11 (5.53%/42.3%), cudnn "
                 "bn_fw_tr_1C11 (4.65%/46.3%),\nEigenMetaKernel "
                 "(3.12%/20.0%), BiasNHWCKernel (2.48%/40.0%)\n\n";

    benchutil::registerSimCase("table5/ResNet-50/TensorFlow",
                               models::resnet50(),
                               frameworks::FrameworkId::TensorFlow,
                               gpusim::quadroP4000(), 32);
}

} // namespace

TBD_BENCH_MAIN(printFigure)
