/**
 * @file
 * Figure 7: average CPU utilization (Eq. 3 — busy core time over 28
 * cores) for every model/framework implementation, at each model's
 * largest feasible batch. The paper's reference values appear in the
 * last column so the shape comparison is immediate.
 */

#include <iostream>
#include <map>

#include "bench_util.h"

using namespace tbd;

namespace {

void
printFigure()
{
    benchutil::banner("Figure 7 - average CPU utilization",
                      "Fig. 7 / Observation 9");

    using FI = frameworks::FrameworkId;
    // The paper's measured values, for the paper-vs-measured column.
    const std::map<std::pair<std::string, FI>, double> paper = {
        {{"ResNet-50", FI::MXNet}, 5.21},
        {{"ResNet-50", FI::TensorFlow}, 5.58},
        {{"ResNet-50", FI::CNTK}, 0.08},
        {{"Inception-v3", FI::MXNet}, 5.20},
        {{"Inception-v3", FI::TensorFlow}, 8.01},
        {{"Inception-v3", FI::CNTK}, 0.05},
        {{"NMT", FI::TensorFlow}, 5.30},
        {{"Sockeye", FI::MXNet}, 6.10},
        {{"Transformer", FI::TensorFlow}, 1.68},
        {{"Faster R-CNN", FI::MXNet}, 3.64},
        {{"Faster R-CNN", FI::TensorFlow}, 13.25},
        {{"WGAN", FI::TensorFlow}, 1.78},
        {{"Deep Speech 2", FI::MXNet}, 4.35},
        {{"A3C", FI::MXNet}, 28.75},
    };

    util::Table t({"implementation", "mini-batch", "CPU utilization",
                   "paper"});
    for (const auto *model : models::allModels()) {
        for (auto fw : model->frameworks) {
            // Largest batch that fits, from the paper's sweep.
            std::optional<perf::RunResult> best;
            std::int64_t best_batch = 0;
            for (std::int64_t b : model->batchSweep) {
                auto r = benchutil::simulateIfFits(
                    *model, fw, gpusim::quadroP4000(), b);
                if (r) {
                    best = r;
                    best_batch = b;
                }
            }
            if (!best)
                continue;
            const auto key = std::make_pair(model->name, fw);
            const auto it = paper.find(key);
            t.addRow({model->name + " (" + frameworks::frameworkName(fw) +
                          ")",
                      std::to_string(best_batch),
                      util::formatPercent(best->cpuUtilization, 2),
                      it != paper.end()
                          ? util::formatFixed(it->second, 2) + "%"
                          : "-"});
        }
    }
    t.print(std::cout);
    std::cout << "\nObservation 9: CPU utilization is low everywhere; "
                 "CNTK is near zero,\nA3C (Atari emulation) is the "
                 "outlier.\n\n";

    benchutil::registerSimCase("fig7/A3C/MXNet", models::a3c(),
                               FI::MXNet, gpusim::quadroP4000(), 128);
    benchutil::registerSimCase("fig7/ResNet-50/CNTK", models::resnet50(),
                               FI::CNTK, gpusim::quadroP4000(), 32);
}

} // namespace

TBD_BENCH_MAIN(printFigure)
