/**
 * @file
 * Ablation: how much network bandwidth does distributed training
 * actually need? Observation 13 says bandwidth governs multi-machine
 * scaling; this harness registers one throwaway topology per swept
 * link speed (1 to 100 Gb/s between two single-GPU machines — the
 * `registerTopology` extension point working as intended), runs the
 * grid as a declarative SweepSpec through the graph engine, and
 * locates the break-even point where two machines beat one GPU and
 * the point where scaling efficiency crosses 90% — for a
 * communication-heavy model (ResNet-50, ~98 MiB of gradients) and a
 * light one (A3C, ~5 MiB).
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

const std::vector<double> kGbits = {1, 2, 5, 10, 25, 50, 100};

/** Registry slug for one swept link speed. */
std::string
sweptName(double gb)
{
    return "swept-" + util::formatFixed(gb, 0) + "gbs";
}

/** Register a 2-machine, 1-GPU-per-machine shape per link speed. */
std::vector<std::string>
registerSweptTopologies()
{
    std::vector<std::string> names;
    for (double gb : kGbits) {
        dist::LinkSpec link;
        link.name = util::formatFixed(gb, 0) + " Gb/s";
        link.bandwidthGBs = gb / 8.0 * 0.9; // 90% payload efficiency
        link.latencyUs = 20.0;

        dist::TopologySpec spec;
        spec.name = sweptName(gb);
        spec.description = "2x1 GPU machines over a " + link.name +
                           " link (interconnect ablation)";
        spec.gpuHourUsd = 2.0;
        spec.hostHourUsd = 0.6;
        spec.fixedWorkers = 2;
        spec.build = [link](int workers) {
            TBD_CHECK(workers == 2,
                      "swept ablation shape is pinned to 2 workers");
            return dist::builders::paperCluster(2, 1, link);
        };
        dist::registerTopology(spec);
        names.push_back(spec.name);
    }
    return names;
}

void
printFigure()
{
    benchutil::banner("Ablation - interconnect bandwidth sweep",
                      "extension of Observation 13 / Fig. 10");

    struct Case
    {
        const models::ModelDesc *model;
        const char *framework;
        std::int64_t batch;
    };
    const std::vector<Case> cases = {
        {&models::resnet50(), "MXNet", 32},
        {&models::a3c(), "MXNet", 64},
    };
    const auto swept = registerSweptTopologies();

    for (const auto &c : cases) {
        // Single-GPU baseline for the break-even comparison.
        core::BenchmarkRequest single;
        single.model = c.model->name;
        single.framework = c.framework;
        single.batch = c.batch;
        single.distTopology = "paper-1m1g";
        const auto base_cells =
            core::BenchmarkSuite::runDistSweep({single});
        const dist::DistResult &base = *base_cells[0];

        // The bandwidth axis is just the topology axis of a sweep.
        const auto results = core::BenchmarkSuite::runDistSweep(
            core::SweepSpec()
                .model(c.model->name)
                .framework(c.framework)
                .batches({c.batch})
                .distTopologies(swept));

        util::Table t({"model", "link", "2M1G throughput", "vs 1 GPU",
                       "scaling efficiency"});
        double break_even = -1.0, ninety = -1.0;
        for (std::size_t i = 0; i < kGbits.size(); ++i) {
            const double gb = kGbits[i];
            const dist::DistResult &r = *results[i];
            if (break_even < 0 &&
                r.throughputSamples > base.throughputSamples)
                break_even = gb;
            if (ninety < 0 && r.scalingEfficiency > 0.9)
                ninety = gb;
            t.addRow({c.model->name,
                      util::formatFixed(gb, 0) + " Gb/s",
                      util::formatFixed(r.throughputSamples, 1),
                      util::formatFixed(r.throughputSamples /
                                            base.throughputSamples,
                                        2) +
                          "x",
                      util::formatPercent(r.scalingEfficiency)});
        }
        t.print(std::cout);
        std::cout << c.model->name << ": beats one GPU from ~"
                  << (break_even < 0 ? std::string("> 100")
                                     : util::formatFixed(break_even, 0))
                  << " Gb/s; >90% efficiency from ~"
                  << (ninety < 0 ? std::string("> 100")
                                 : util::formatFixed(ninety, 0))
                  << " Gb/s\n\n";
    }
    std::cout << "Small models tolerate slow links; gradient-heavy CNNs "
                 "need the fast\nfabric — the quantitative form of "
                 "Observation 13.\n\n";
}

} // namespace

TBD_BENCH_MAIN(printFigure)
