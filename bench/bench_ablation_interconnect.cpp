/**
 * @file
 * Ablation: how much network bandwidth does distributed training
 * actually need? Observation 13 says bandwidth governs multi-machine
 * scaling; this harness sweeps the inter-machine link from 1 to
 * 100 Gb/s and locates the break-even point where two machines beat
 * one GPU, and the point where scaling efficiency crosses 90% — for a
 * communication-heavy model (ResNet-50, ~98 MiB of gradients) and a
 * light one (A3C, ~5 MiB).
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

void
printFigure()
{
    benchutil::banner("Ablation - interconnect bandwidth sweep",
                      "extension of Observation 13 / Fig. 10");

    struct Case
    {
        const models::ModelDesc *model;
        frameworks::FrameworkId framework;
        std::int64_t batch;
    };
    const std::vector<Case> cases = {
        {&models::resnet50(), frameworks::FrameworkId::MXNet, 32},
        {&models::a3c(), frameworks::FrameworkId::MXNet, 64},
    };
    const std::vector<double> gbits = {1, 2, 5, 10, 25, 50, 100};

    for (const auto &c : cases) {
        // Single-GPU baseline.
        dist::ClusterConfig single{1, 1, dist::infiniband100G()};
        const auto base = dist::simulateDataParallel(
            *c.model, c.framework, gpusim::quadroP4000(), c.batch,
            single);

        util::Table t({"model", "link", "2M1G throughput",
                       "vs 1 GPU", "scaling efficiency"});
        double break_even = -1.0, ninety = -1.0;
        for (double gb : gbits) {
            dist::ClusterConfig cluster{2, 1,
                                        dist::LinkSpec{
                                            util::formatFixed(gb, 0) +
                                                " Gb/s",
                                            gb / 8.0 * 0.9, 20.0}};
            const auto r = dist::simulateDataParallel(
                *c.model, c.framework, gpusim::quadroP4000(), c.batch,
                cluster);
            if (break_even < 0 &&
                r.throughputSamples > base.throughputSamples)
                break_even = gb;
            if (ninety < 0 && r.scalingEfficiency > 0.9)
                ninety = gb;
            t.addRow({c.model->name, cluster.network.name,
                      util::formatFixed(r.throughputSamples, 1),
                      util::formatFixed(r.throughputSamples /
                                            base.throughputSamples,
                                        2) +
                          "x",
                      util::formatPercent(r.scalingEfficiency)});
        }
        t.print(std::cout);
        std::cout << c.model->name << ": beats one GPU from ~"
                  << (break_even < 0 ? std::string("> 100")
                                     : util::formatFixed(break_even, 0))
                  << " Gb/s; >90% efficiency from ~"
                  << (ninety < 0 ? std::string("> 100")
                                 : util::formatFixed(ninety, 0))
                  << " Gb/s\n\n";
    }
    std::cout << "Small models tolerate slow links; gradient-heavy CNNs "
                 "need the fast\nfabric — the quantitative form of "
                 "Observation 13.\n\n";
}

} // namespace

TBD_BENCH_MAIN(printFigure)
