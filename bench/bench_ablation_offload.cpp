/**
 * @file
 * Ablation: vDNN-style feature-map offload (the memory optimization
 * Observation 11 motivates — feature maps are 62-89% of the training
 * footprint, so moving them to host memory between forward and
 * backward frees most of the device).
 *
 * For each model: baseline vs offloaded footprint and maximum feasible
 * batch on the 8 GiB P4000, plus the PCIe traffic the policy costs and
 * how much of it the compute can hide.
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

void
printFigure()
{
    benchutil::banner(
        "Ablation - vDNN-style feature-map offload (Rhu et al.)",
        "research direction of Observation 11");

    util::Table t({"implementation", "batch", "baseline mem",
                   "offloaded mem", "PCIe traffic/iter",
                   "exposed transfer", "max batch: base -> offload"});
    for (const auto *model : models::allModels()) {
        const auto fw_id = model->frameworks.front();
        const auto &fw = frameworks::profileFor(fw_id);
        const auto batch = model->batchSweep.back();
        const auto workload = model->describe(batch);

        const auto base = perf::simulateIterationMemory(
            *model, workload, fw, perf::OptimizerSpec{}, 0);
        const auto off = perf::simulateIterationMemory(
            *model, workload, fw, perf::OptimizerSpec{}, 0,
            perf::MemoryOptimization::OffloadFeatureMaps);
        const auto cost = perf::offloadCost(*model, workload, fw);

        // How much of the transfer hides behind compute: the paper's
        // vDNN premise is that PCIe runs concurrently with kernels.
        const auto run = benchutil::simulate(*model, fw_id,
                                             gpusim::quadroP4000(), batch,
                                             /*enforceMemory=*/false);
        const double exposed_us =
            std::max(0.0, cost.transferUs - run.iterationUs);

        const auto cap = gpusim::quadroP4000().memoryBytes();
        const auto base_max = perf::maxFeasibleBatch(*model, fw, cap);
        const auto off_max = perf::maxFeasibleBatch(
            *model, fw, cap,
            perf::MemoryOptimization::OffloadFeatureMaps);

        t.addRow({model->name + " (" + fw.name + ")",
                  std::to_string(batch),
                  util::formatBytes(base.total()),
                  util::formatBytes(off.total()),
                  util::formatBytes(cost.trafficBytes),
                  util::formatDuration(exposed_us * 1e-6),
                  std::to_string(base_max) + " -> " +
                      std::to_string(off_max)});
    }
    t.print(std::cout);
    std::cout << "\nOffload shrinks the footprint by the feature-map "
                 "share (Obs. 11) and\nraises every batch ceiling; the "
                 "exposed-transfer column shows where the\nPCIe bill "
                 "stops being free.\n\n";

    benchutil::registerSimCase("ablation_offload/Sockeye/base",
                               models::sockeye(),
                               frameworks::FrameworkId::MXNet,
                               gpusim::quadroP4000(), 64);
}

} // namespace

TBD_BENCH_MAIN(printFigure)
