/**
 * @file
 * Figure 5: GPU compute utilization (Eq. 1 — fraction of wall time
 * with at least one kernel active) across mini-batch sizes, plus the
 * Faster R-CNN utilizations of Section 4.2.2 (~89-90%).
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

void
printFigure()
{
    benchutil::banner(
        "Figure 5 - GPU compute utilization vs mini-batch size",
        "Fig. 5 + Sec. 4.2.2");

    // All cells fan out over the thread pool in one ordered sweep.
    const auto panels = benchutil::figure456Panels();
    std::vector<core::BenchmarkRequest> cells;
    for (const auto &panel : panels) {
        const auto panel_cells = benchutil::panelCells(panel);
        cells.insert(cells.end(), panel_cells.begin(),
                     panel_cells.end());
    }
    const auto frcnn_cells = core::SweepSpec()
                                 .model(models::fasterRcnn().name)
                                 .batches({1})
                                 .requests();
    cells.insert(cells.end(), frcnn_cells.begin(), frcnn_cells.end());
    const auto results = core::BenchmarkSuite::runSweep(cells);

    std::size_t cell = 0;
    for (const auto &panel : panels) {
        const auto &model = *panel.model;
        util::Table t({"panel", "implementation", "mini-batch",
                       "GPU compute utilization"});
        for (std::int64_t batch : model.batchSweep) {
            const auto &r = results[cell++];
            t.addRow({panel.panel,
                      model.name + " (" +
                          frameworks::frameworkName(panel.framework) +
                          ")",
                      std::to_string(batch),
                      r ? util::formatPercent(r->gpuUtilization) : "OOM"});
        }
        t.print(std::cout);
        std::cout << '\n';
    }

    util::Table frcnn({"model", "implementation", "GPU utilization"});
    for (auto fw : models::fasterRcnn().frameworks) {
        const auto &r = results[cell++];
        frcnn.addRow({"Faster R-CNN", frameworks::frameworkName(fw),
                      util::formatPercent(r.value().gpuUtilization)});
    }
    frcnn.print(std::cout);
    std::cout << "(paper: 89.4% TensorFlow, 90.3% MXNet)\n\n";

    benchutil::registerSimCase("fig5/Sockeye/small_batch",
                               models::sockeye(),
                               frameworks::FrameworkId::MXNet,
                               gpusim::quadroP4000(), 4);
    benchutil::registerSimCase("fig5/Sockeye/large_batch",
                               models::sockeye(),
                               frameworks::FrameworkId::MXNet,
                               gpusim::quadroP4000(), 64);
}

} // namespace

TBD_BENCH_MAIN(printFigure)
