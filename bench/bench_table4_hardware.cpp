/**
 * @file
 * Table 4: hardware specifications of the evaluation platform — the
 * two GPU device models and the host CPU — plus derived roofline
 * quantities the timing model exposes (peak FP32, saturation
 * parallelism).
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

void
printFigure()
{
    benchutil::banner("Table 4 - hardware specifications",
                      "Table 4 / Sec. 4.1");

    core::BenchmarkSuite::table4Hardware().print(std::cout);

    std::cout << "\nderived timing-model quantities:\n";
    util::Table t({"GPU", "peak FP32", "saturation threads",
                   "roofline ridge (FLOP/byte)"});
    for (const auto *gpu : {&gpusim::quadroP4000(), &gpusim::titanXp()}) {
        t.addRow({gpu->name,
                  util::formatSi(gpu->peakFlops()) + "FLOPS",
                  util::formatSi(gpu->saturationThreads()),
                  util::formatFixed(gpu->peakFlops() /
                                        (gpu->memoryBwGBs * 1e9),
                                    1)});
    }
    t.print(std::cout);
    std::cout << '\n';

    // Time a representative kernel on both devices.
    for (const auto *gpu : {&gpusim::quadroP4000(), &gpusim::titanXp()}) {
        benchmark::RegisterBenchmark(
            ("table4/timeKernel/" + gpu->name).c_str(),
            [gpu](benchmark::State &state) {
                gpusim::KernelDesc k;
                k.name = "sgemm";
                k.category = gpusim::KernelCategory::Gemm;
                k.flops = 1e9;
                k.bytes = 1e7;
                k.parallelism = 1e6;
                k.computeEff = 0.6;
                for (auto _ : state) {
                    auto t = gpusim::timeKernel(*gpu, k);
                    benchmark::DoNotOptimize(t.durationUs);
                }
            });
    }
}

} // namespace

TBD_BENCH_MAIN(printFigure)
