/**
 * @file
 * Deterministic replay load harness for `tbd::serve` — the PR's
 * headline gate, not a timing benchmark.
 *
 *   bench_serve_load [--queries N] [--clients N] [--seed S]
 *                    [--coalesce-rounds N]
 *
 * The harness starts an in-process Server, precomputes a baseline
 * answer for every unique config with simulateDirect() (the oneshot
 * library path), then fires a seeded mixed workload — hot repeats,
 * batch-sweep bursts, malformed lines, unknown names, a quota-bound
 * tenant flood and barrier-synchronized coalescing rounds — from N
 * client threads over real sockets, and asserts:
 *
 *   - every served simulation is BITWISE-identical to its baseline
 *     (ResultSummary operator==, FNV-1a fingerprints included);
 *   - error statuses match the baseline's statuses;
 *   - request coalescing happened (cache stats, ≥1 piggyback);
 *   - the flood tenant saw explicit 429 rejections;
 *   - malformed lines answered 400, unknown names 404, and the
 *     server survived all of it with queueDepth() back at zero;
 *   - (store enabled) a RESTARTED server with an empty in-memory
 *     cache answers every unique config from the persistent store —
 *     bitwise-identical, response.cached, Stats::diskHits > 0 —
 *     the DESIGN.md §16 cross-process warm path over real sockets.
 *
 * Exit status is the gate: 0 only when every assertion holds. Run
 * under TBD_OBS=1 to export the serve counters for `tbd_obs check
 * --require-counter serve.cache.hit`.
 */

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "serve/protocol.h"
#include "serve/server.h"
#include "store/store.h"
#include "util/logging.h"

using namespace tbd;

namespace {

/** Valid (model, framework, base batch) combos, goldens' coverage. */
struct Combo
{
    const char *model;
    const char *framework;
    std::int64_t baseBatch;
};

const Combo kCombos[] = {
    {"ResNet-50", "TensorFlow", 4},
    {"Inception-v3", "TensorFlow", 4},
    {"NMT", "TensorFlow", 4},
    {"Transformer", "TensorFlow", 64},
    {"Faster R-CNN", "TensorFlow", 1},
    {"WGAN", "TensorFlow", 4},
    {"Sockeye", "MXNet", 4},
    {"Deep Speech 2", "MXNet", 1},
    {"A3C", "MXNet", 8},
};
constexpr std::int64_t kSweep[] = {1, 2, 4}; // batch multipliers

/** Raw lines the protocol must reject with 400, never crash on. */
const char *const kMalformed[] = {
    "this is not json",
    "{\"id\":\"x\"",
    "{\"id\":\"x\",\"bogus_field\":true,\"model\":\"ResNet-50\"}",
    "[1,2,3]",
    "{\"id\":\"x\",\"model\":\"ResNet-50\",\"batch\":\"twelve\"}",
};

struct Op
{
    enum Kind { Query, Malformed, Unknown } kind = Query;
    std::size_t index = 0; ///< unique config / malformed variant
};

/** Reusable N-thread rendezvous (std::barrier is C++20). */
class Barrier
{
  public:
    explicit Barrier(std::size_t parties) : parties_(parties) {}

    void arriveAndWait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        const std::size_t generation = generation_;
        if (++waiting_ == parties_) {
            waiting_ = 0;
            ++generation_;
            cv_.notify_all();
        } else {
            cv_.wait(lock, [&] { return generation_ != generation; });
        }
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    std::size_t parties_;
    std::size_t waiting_ = 0;
    std::size_t generation_ = 0;
};

struct ThreadStats
{
    std::int64_t sent = 0;
    std::int64_t ok = 0;
    std::int64_t cachedSeen = 0;
    std::int64_t coalescedSeen = 0;
    std::int64_t badRequest = 0;
    std::int64_t unknownName = 0;
    std::int64_t otherStatus = 0;
    std::int64_t mismatches = 0;
    std::string firstMismatch;
};

serve::Request
uniqueRequest(std::size_t unique, const std::string &id,
              const std::string &tenant)
{
    const Combo &combo = kCombos[unique / 3];
    serve::Request request;
    request.id = id;
    request.tenant = tenant;
    request.model = combo.model;
    request.framework = combo.framework;
    request.batch = combo.baseBatch * kSweep[unique % 3];
    return request;
}

void
noteMismatch(ThreadStats &stats, const std::string &what)
{
    if (stats.mismatches++ == 0)
        stats.firstMismatch = what;
}

/** Compare one served answer against its oneshot baseline. */
void
checkAgainstBaseline(const serve::Response &served,
                     const serve::Response &baseline,
                     const serve::Request &request,
                     ThreadStats &stats)
{
    if (served.status != baseline.status) {
        noteMismatch(stats,
                     "status " +
                         std::to_string(statusCode(served.status)) +
                         " vs baseline " +
                         std::to_string(statusCode(baseline.status)) +
                         " for " + request.model + " b" +
                         std::to_string(request.batch));
        return;
    }
    if (served.status == serve::Status::Ok &&
        served.result != baseline.result) {
        char fp[64];
        std::snprintf(fp, sizeof fp, "%016llx vs %016llx",
                      static_cast<unsigned long long>(
                          served.result.fingerprint),
                      static_cast<unsigned long long>(
                          baseline.result.fingerprint));
        noteMismatch(stats, "BITWISE DIVERGENCE for " + request.model +
                                " b" + std::to_string(request.batch) +
                                " (fingerprints " + fp + ")");
    }
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: bench_serve_load [--queries N] [--clients N]"
                 " [--seed S] [--coalesce-rounds N]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::int64_t total_queries = 2400;
    std::size_t clients = 4;
    std::uint64_t seed = 20180923; // iiswc'18
    int max_coalesce_rounds = 10;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const bool has_value = i + 1 < argc;
        if (flag == "--queries" && has_value)
            total_queries = std::stoll(argv[++i]);
        else if (flag == "--clients" && has_value)
            clients = static_cast<std::size_t>(std::stoul(argv[++i]));
        else if (flag == "--seed" && has_value)
            seed = std::stoull(argv[++i]);
        else if (flag == "--coalesce-rounds" && has_value)
            max_coalesce_rounds = std::stoi(argv[++i]);
        else
            return usage();
    }
    TBD_CHECK(clients >= 1, "need at least one client");

    const std::size_t uniques =
        std::size(kCombos) * std::size(kSweep);

    // ---- Persistent store: pin a fresh directory so the restart
    // phase replays entries THIS run recorded (ambient .tbd-store
    // state must not leak into the gate). TBD_STORE=off or
    // TBD_NOCACHE=1 skip the restart phase entirely — the rest of
    // the harness still runs and still gates.
    const bool store_phase = store::storeEnabled();
    std::string store_dir;
    if (store_phase) {
        store_dir = (std::filesystem::temp_directory_path() /
                     ("tbd-store-serveload-" +
                      std::to_string(::getpid())))
                        .string();
        std::filesystem::remove_all(store_dir);
        store::setStoreDir(store_dir);
        std::printf("store: %s (restart phase on)\n",
                    store_dir.c_str());
    } else {
        std::printf("store: disabled (restart phase skipped)\n");
    }

    // ---- Baseline: every unique config through the oneshot path,
    // single-threaded, before the server exists.
    std::printf("baseline: %zu unique configs via simulateDirect\n",
                uniques);
    std::vector<serve::Response> baseline;
    baseline.reserve(uniques);
    for (std::size_t u = 0; u < uniques; ++u)
        baseline.push_back(
            serve::simulateDirect(uniqueRequest(u, "base", "base")));

    // ---- Pre-generate the per-thread scripts from one seeded rng so
    // the workload is a pure function of --seed.
    std::mt19937_64 rng(seed);
    const std::int64_t per_thread =
        (total_queries + static_cast<std::int64_t>(clients) - 1) /
        static_cast<std::int64_t>(clients);
    std::vector<std::vector<Op>> scripts(clients);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::uniform_int_distribution<std::size_t> any_unique(
        0, uniques - 1);
    std::uniform_int_distribution<std::size_t> hot_unique(
        0, std::min<std::size_t>(5, uniques - 1));
    std::uniform_int_distribution<std::size_t> any_malformed(
        0, std::size(kMalformed) - 1);
    std::uniform_int_distribution<std::size_t> any_combo(
        0, std::size(kCombos) - 1);
    for (auto &script : scripts) {
        while (script.size() < static_cast<std::size_t>(per_thread)) {
            const double toss = coin(rng);
            if (toss < 0.02) {
                script.push_back(
                    {Op::Malformed, any_malformed(rng)});
            } else if (toss < 0.04) {
                script.push_back({Op::Unknown, 0});
            } else if (toss < 0.09) {
                // Sweep burst: the full batch sweep of one combo.
                const std::size_t combo = any_combo(rng);
                for (std::size_t s = 0; s < std::size(kSweep); ++s)
                    script.push_back({Op::Query, combo * 3 + s});
            } else if (toss < 0.72) {
                script.push_back({Op::Query, hot_unique(rng)});
            } else {
                script.push_back({Op::Query, any_unique(rng)});
            }
        }
        script.resize(static_cast<std::size_t>(per_thread));
    }

    // ---- Server up. Default quota unlimited; the flood tenant gets
    // a burst-4, zero-refill bucket so its rejections are exact.
    serve::ServerOptions options;
    options.threads = 4;
    options.maxInflight = 256;
    serve::Server server(options);
    server.setTenantQuota("flood", {4.0, 0.0});
    server.start();
    std::printf("server on 127.0.0.1:%d, %zu clients x %lld queries\n",
                server.port(), clients,
                static_cast<long long>(per_thread));

    // ---- Main phase: N socket clients replaying their scripts.
    std::vector<ThreadStats> stats(clients);
    {
        std::vector<std::thread> threads;
        for (std::size_t t = 0; t < clients; ++t) {
            threads.emplace_back([&, t] {
                serve::Client client(server.port());
                const std::string tenant =
                    "client-" + std::to_string(t);
                ThreadStats &my = stats[t];
                std::int64_t n = 0;
                for (const Op &op : scripts[t]) {
                    const std::string id =
                        tenant + "/" + std::to_string(n++);
                    serve::Response response;
                    switch (op.kind) {
                      case Op::Malformed:
                        response =
                            client.callLine(kMalformed[op.index]);
                        if (response.status !=
                            serve::Status::BadRequest)
                            noteMismatch(my,
                                         "malformed line not 400");
                        else
                            ++my.badRequest;
                        break;
                      case Op::Unknown: {
                        serve::Request request =
                            uniqueRequest(0, id, tenant);
                        request.model = "NoSuchNet";
                        response = client.call(request);
                        if (response.status !=
                            serve::Status::UnknownName)
                            noteMismatch(my,
                                         "unknown model not 404");
                        else
                            ++my.unknownName;
                        break;
                      }
                      case Op::Query: {
                        const serve::Request request =
                            uniqueRequest(op.index, id, tenant);
                        response = client.call(request);
                        checkAgainstBaseline(response,
                                             baseline[op.index],
                                             request, my);
                        if (response.status == serve::Status::Ok)
                            ++my.ok;
                        else if (response.status ==
                                 serve::Status::SimulationError)
                            ++my.otherStatus;
                        else
                            ++my.otherStatus;
                        break;
                      }
                    }
                    ++my.sent;
                    my.cachedSeen += response.cached ? 1 : 0;
                    my.coalescedSeen += response.coalesced ? 1 : 0;
                }
            });
        }
        for (auto &thread : threads)
            thread.join();
    }

    // ---- Flood phase: burst 4 + zero refill ⇒ exactly 4 admitted.
    std::int64_t flood_rejected = 0;
    std::int64_t flood_admitted = 0;
    {
        serve::Client client(server.port());
        for (int i = 0; i < 12; ++i) {
            serve::Request request = uniqueRequest(
                0, "flood/" + std::to_string(i), "flood");
            const serve::Response response = client.call(request);
            if (response.status == serve::Status::RejectedQuota)
                ++flood_rejected;
            else
                ++flood_admitted;
        }
    }

    // ---- Coalescing rounds: all clients fire one identical COLD
    // config behind a barrier. Length variation with a fresh seed
    // per round defeats every process-global fast path (lowering
    // cache, steady-state replay), so the leader pays a full
    // hundreds-of-ms simulation — a coalescing window orders of
    // magnitude wider than the barrier's release skew. The oneshot
    // baseline is deliberately computed AFTER the round: running it
    // first would warm those caches and shrink the window.
    std::int64_t coalesced_total = 0;
    int coalesce_round = 0;
    ThreadStats coalesce_stats;
    std::mutex coalesce_mutex;
    for (; coalesce_round < max_coalesce_rounds; ++coalesce_round) {
        serve::Request request;
        request.id = "co/" + std::to_string(coalesce_round);
        request.tenant = "coalesce";
        request.model = "Deep Speech 2"; // slowest cold simulation
        request.framework = "MXNet";
        request.batch = 1;
        request.lengthCv = 0.5;
        request.lengthSeed =
            1000 + static_cast<std::uint64_t>(coalesce_round);
        const std::int64_t before =
            server.cache().stats().coalesced;
        Barrier barrier(clients);
        std::vector<serve::Response> answers(clients);
        std::vector<std::thread> threads;
        for (std::size_t t = 0; t < clients; ++t) {
            threads.emplace_back([&, t] {
                serve::Client client(server.port());
                barrier.arriveAndWait();
                answers[t] = client.call(request);
            });
        }
        for (auto &thread : threads)
            thread.join();
        const serve::Response direct =
            serve::simulateDirect(request);
        for (const auto &answer : answers) {
            std::lock_guard<std::mutex> lock(coalesce_mutex);
            checkAgainstBaseline(answer, direct, request,
                                 coalesce_stats);
        }
        coalesced_total =
            server.cache().stats().coalesced - before;
        if (coalesced_total > 0)
            break;
    }

    const auto cache_stats = server.cache().stats();
    const auto admission_stats = server.admission().stats();
    const std::int64_t queue_depth = server.admission().queueDepth();
    server.stop();

    // ---- Warm-restart phase: a second Server with a brand-new
    // (empty) in-memory ResultCache, standing in for a restarted
    // process. Every unique config must come back from the
    // persistent store's disk tier — never recomputed, bitwise
    // against the same oneshot baseline as the live phases.
    std::int64_t restart_disk_hits = 0;
    std::int64_t restart_uncached = 0;
    ThreadStats restart_stats;
    if (store_phase) {
        serve::Server second(options);
        second.start();
        std::printf("restarted server on 127.0.0.1:%d, replaying "
                    "%zu unique configs\n",
                    second.port(), uniques);
        serve::Client client(second.port());
        for (std::size_t u = 0; u < uniques; ++u) {
            const serve::Request request = uniqueRequest(
                u, "restart/" + std::to_string(u), "restart");
            const serve::Response response = client.call(request);
            checkAgainstBaseline(response, baseline[u], request,
                                 restart_stats);
            if (response.status == serve::Status::Ok &&
                !response.cached)
                ++restart_uncached;
        }
        restart_disk_hits = second.cache().stats().diskHits;
        second.stop();
        std::printf("restart: %lld disk hits, %lld uncached, "
                    "%lld mismatches\n",
                    static_cast<long long>(restart_disk_hits),
                    static_cast<long long>(restart_uncached),
                    static_cast<long long>(restart_stats.mismatches));
    }

    // ---- Verdict.
    ThreadStats total;
    for (const auto &s : stats) {
        total.sent += s.sent;
        total.ok += s.ok;
        total.cachedSeen += s.cachedSeen;
        total.coalescedSeen += s.coalescedSeen;
        total.badRequest += s.badRequest;
        total.unknownName += s.unknownName;
        total.otherStatus += s.otherStatus;
        if (s.mismatches > 0 && total.firstMismatch.empty())
            total.firstMismatch = s.firstMismatch;
        total.mismatches += s.mismatches;
    }
    total.mismatches += coalesce_stats.mismatches;
    if (total.firstMismatch.empty())
        total.firstMismatch = coalesce_stats.firstMismatch;

    std::printf(
        "\nreplayed %lld queries: %lld ok, %lld cached, "
        "%lld coalesced (client-side), %lld bad-request, "
        "%lld unknown-name, %lld other\n",
        static_cast<long long>(total.sent),
        static_cast<long long>(total.ok),
        static_cast<long long>(total.cachedSeen),
        static_cast<long long>(total.coalescedSeen),
        static_cast<long long>(total.badRequest),
        static_cast<long long>(total.unknownName),
        static_cast<long long>(total.otherStatus));
    std::printf("cache: %lld hits, %lld misses, %lld coalesced; "
                "admission: %lld admitted, %lld quota-rejected, "
                "%lld queue-rejected; flood: %lld admitted, "
                "%lld rejected; coalesce rounds used: %d\n",
                static_cast<long long>(cache_stats.hits),
                static_cast<long long>(cache_stats.misses),
                static_cast<long long>(cache_stats.coalesced),
                static_cast<long long>(admission_stats.admitted),
                static_cast<long long>(admission_stats.rejectedQuota),
                static_cast<long long>(
                    admission_stats.rejectedQueueFull),
                static_cast<long long>(flood_admitted),
                static_cast<long long>(flood_rejected),
                coalesce_round + 1);

    int failures = 0;
    const auto expect = [&failures](bool ok, const char *what) {
        if (!ok) {
            std::fprintf(stderr, "FAIL: %s\n", what);
            ++failures;
        }
    };
    expect(total.mismatches == 0, "served answers diverged");
    if (total.mismatches > 0)
        std::fprintf(stderr, "      first: %s\n",
                     total.firstMismatch.c_str());
    expect(total.ok > 0, "no successful simulations at all");
    expect(total.cachedSeen > 0, "hot repeats never hit the cache");
    expect(cache_stats.hits > 0, "server cache counted no hits");
    expect(coalesced_total > 0, "no request coalescing observed");
    expect(flood_rejected >= 1, "flood tenant never saw a 429");
    expect(flood_admitted == 4,
           "flood admits != burst (token bucket drifted)");
    expect(admission_stats.rejectedQuota >= 1,
           "admission counted no quota rejections");
    expect(queue_depth == 0, "queue slots leaked");
    expect(total.badRequest > 0, "workload fired no malformed lines");
    expect(total.unknownName > 0, "workload fired no unknown names");
    if (store_phase) {
        expect(restart_stats.mismatches == 0,
               "restarted server diverged from the baseline");
        if (restart_stats.mismatches > 0)
            std::fprintf(stderr, "      first: %s\n",
                         restart_stats.firstMismatch.c_str());
        expect(restart_disk_hits > 0,
               "restarted server never hit the persistent store");
        expect(restart_uncached == 0,
               "restarted server recomputed instead of replaying");
        std::filesystem::remove_all(store_dir);
    }

    if (failures == 0)
        std::printf("PASS: 100%% bitwise agreement with the oneshot "
                    "baseline\n");
    return failures == 0 ? 0 : 1;
}
