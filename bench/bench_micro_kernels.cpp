/**
 * @file
 * Micro-benchmarks of the functional engine's real CPU kernels — the
 * DeepBench-style layer-below view the paper contrasts TBD with
 * (Section 5): per-op timings of GEMM, convolution, batch norm, LSTM
 * steps, attention and CTC on actual FP32 math. Counters report
 * achieved FLOP rates so the functional substrate's costs are visible
 * next to the simulated GPU numbers.
 */

#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench_util.h"
#include "core/sweep_spec.h"
#include "core/tbd.h"
#include "dist/sim_cache.h"
#include "engine/fusion.h"
#include "perf/lowering_cache.h"
#include "store/store.h"
#include "tensor/simd.h"

using namespace tbd;

namespace {

tensor::Tensor
randn(tensor::Shape shape, std::uint64_t seed)
{
    util::Rng rng(seed);
    tensor::Tensor t(std::move(shape));
    t.fillNormal(rng, 0.0f, 1.0f);
    return t;
}

// The serial/threaded pairs below run the *same* kernels: the threaded
// variants use the process-wide pool (TBD_THREADS), the serial ones pin
// a one-thread pool for the scope of the run. Outputs are
// bitwise-identical either way (see DESIGN.md "Threading model"); only
// the FLOPS counters should move.

void
matmulBody(benchmark::State &state)
{
    const auto n = state.range(0);
    tensor::Tensor a = randn(tensor::Shape{n, n}, 1);
    tensor::Tensor b = randn(tensor::Shape{n, n}, 2);
    for (auto _ : state) {
        tensor::Tensor c = tensor::matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.counters["FLOPS"] = benchmark::Counter(
        2.0 * n * n * n, benchmark::Counter::kIsIterationInvariantRate);
}

void
BM_Matmul(benchmark::State &state)
{
    matmulBody(state);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void
BM_MatmulSerial(benchmark::State &state)
{
    util::ThreadPool serial(1);
    util::ThreadPool::Scope scope(serial);
    matmulBody(state);
}
BENCHMARK(BM_MatmulSerial)->Arg(256)->Arg(512);

// The scalar reference oracle (TBD_SIMD=off path). BM_Matmul over
// BM_MatmulScalar is the vectorization speedup the fast-path work is
// judged by; check_bench_regression.py holds BM_Matmul against the
// committed Release baseline.
void
BM_MatmulScalar(benchmark::State &state)
{
    tensor::simd::setSimdEnabled(false);
    matmulBody(state);
    tensor::simd::setSimdEnabled(std::nullopt);
}
BENCHMARK(BM_MatmulScalar)->Arg(256)->Arg(512);

void
conv2dForwardBody(benchmark::State &state)
{
    const auto c = state.range(0);
    util::Rng rng(3);
    layers::Conv2d conv("conv", c, c, 3, 1, 1, rng);
    tensor::Tensor x = randn(tensor::Shape{4, c, 16, 16}, 4);
    for (auto _ : state) {
        tensor::Tensor y = conv.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
    state.counters["FLOPS"] = benchmark::Counter(
        2.0 * 4 * c * 16 * 16 * c * 9,
        benchmark::Counter::kIsIterationInvariantRate);
}

void
BM_Conv2dForward(benchmark::State &state)
{
    conv2dForwardBody(state);
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_Conv2dForwardSerial(benchmark::State &state)
{
    util::ThreadPool serial(1);
    util::ThreadPool::Scope scope(serial);
    conv2dForwardBody(state);
}
BENCHMARK(BM_Conv2dForwardSerial)->Arg(32)->Arg(64);

void
BM_Conv2dTrainStep(benchmark::State &state)
{
    util::Rng rng(5);
    layers::Conv2d conv("conv", 16, 16, 3, 1, 1, rng);
    tensor::Tensor x = randn(tensor::Shape{4, 16, 16, 16}, 6);
    tensor::Tensor dy = randn(tensor::Shape{4, 16, 16, 16}, 7);
    for (auto _ : state) {
        conv.zeroGrads();
        tensor::Tensor y = conv.forward(x, true);
        tensor::Tensor dx = conv.backward(dy);
        benchmark::DoNotOptimize(dx.data());
    }
}
BENCHMARK(BM_Conv2dTrainStep);

void
BM_BatchNormForward(benchmark::State &state)
{
    layers::BatchNorm2d bn("bn", 32);
    tensor::Tensor x = randn(tensor::Shape{8, 32, 16, 16}, 8);
    for (auto _ : state) {
        tensor::Tensor y = bn.forward(x, true);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_BatchNormForward);

void
BM_ElementwiseRelu(benchmark::State &state)
{
    const auto n = state.range(0);
    layers::Activation relu("relu", layers::ActKind::ReLU);
    tensor::Tensor x = randn(tensor::Shape{n}, 41);
    for (auto _ : state) {
        tensor::Tensor y = relu.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ElementwiseRelu)->Arg(1 << 16)->Arg(1 << 20);

// Fused-vs-unfused pairs: the same Network, the same bitwise outputs
// (tests/engine/fusion_test.cpp holds that line); only the number of
// memory passes over the activations differs.

engine::Network
denseReluNet(util::Rng &rng)
{
    engine::Network net("dense-relu");
    net.add(std::make_unique<layers::FullyConnected>("fc1", 256, 256,
                                                     rng));
    net.add(std::make_unique<layers::Activation>(
        "relu1", layers::ActKind::ReLU));
    net.add(std::make_unique<layers::FullyConnected>("fc2", 256, 256,
                                                     rng));
    net.add(std::make_unique<layers::Activation>(
        "relu2", layers::ActKind::ReLU));
    return net;
}

engine::Network
convBnReluNet(util::Rng &rng)
{
    engine::Network net("conv-bn-relu");
    net.add(std::make_unique<layers::Conv2d>("conv", 16, 16, 3, 1, 1,
                                             rng, /*useBias=*/true));
    net.add(std::make_unique<layers::BatchNorm2d>("bn", 16));
    net.add(std::make_unique<layers::Activation>(
        "relu", layers::ActKind::ReLU));
    return net;
}

void
trainStepBody(benchmark::State &state, engine::Network &net,
              const tensor::Tensor &x, const tensor::Tensor &dy,
              bool fused)
{
    engine::setFusionEnabled(fused);
    for (auto _ : state) {
        net.zeroGrads();
        tensor::Tensor y = net.forward(x, true);
        tensor::Tensor dx = net.backward(dy);
        benchmark::DoNotOptimize(dx.data());
    }
    engine::setFusionEnabled(std::nullopt);
}

void
denseTrainStepBody(benchmark::State &state, bool fused)
{
    util::Rng rng(42);
    engine::Network net = denseReluNet(rng);
    tensor::Tensor x = randn(tensor::Shape{64, 256}, 43);
    tensor::Tensor dy = randn(tensor::Shape{64, 256}, 44);
    trainStepBody(state, net, x, dy, fused);
}

void
BM_DenseReluTrainStepFused(benchmark::State &state)
{
    denseTrainStepBody(state, /*fused=*/true);
}
BENCHMARK(BM_DenseReluTrainStepFused);

void
BM_DenseReluTrainStepUnfused(benchmark::State &state)
{
    denseTrainStepBody(state, /*fused=*/false);
}
BENCHMARK(BM_DenseReluTrainStepUnfused);

void
convBnTrainStepBody(benchmark::State &state, bool fused)
{
    util::Rng rng(45);
    engine::Network net = convBnReluNet(rng);
    tensor::Tensor x = randn(tensor::Shape{4, 16, 16, 16}, 46);
    tensor::Tensor dy = randn(tensor::Shape{4, 16, 16, 16}, 47);
    trainStepBody(state, net, x, dy, fused);
}

void
BM_ConvBnReluTrainStepFused(benchmark::State &state)
{
    convBnTrainStepBody(state, /*fused=*/true);
}
BENCHMARK(BM_ConvBnReluTrainStepFused);

void
BM_ConvBnReluTrainStepUnfused(benchmark::State &state)
{
    convBnTrainStepBody(state, /*fused=*/false);
}
BENCHMARK(BM_ConvBnReluTrainStepUnfused);

// Inference is where conv+BN fusion pays most: the BN fold rides the
// conv epilogue and the BN layer never touches memory.
void
convBnInferenceBody(benchmark::State &state, bool fused)
{
    util::Rng rng(48);
    engine::Network net = convBnReluNet(rng);
    tensor::Tensor x = randn(tensor::Shape{4, 16, 16, 16}, 49);
    tensor::Tensor warm = net.forward(x, true); // real running stats
    benchmark::DoNotOptimize(warm.data());
    engine::setFusionEnabled(fused);
    for (auto _ : state) {
        tensor::Tensor y = net.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
    engine::setFusionEnabled(std::nullopt);
}

void
BM_ConvBnReluInferenceFused(benchmark::State &state)
{
    convBnInferenceBody(state, /*fused=*/true);
}
BENCHMARK(BM_ConvBnReluInferenceFused);

void
BM_ConvBnReluInferenceUnfused(benchmark::State &state)
{
    convBnInferenceBody(state, /*fused=*/false);
}
BENCHMARK(BM_ConvBnReluInferenceUnfused);

void
BM_LstmSequence(benchmark::State &state)
{
    const auto steps = state.range(0);
    util::Rng rng(9);
    layers::Recurrent lstm("lstm", layers::CellKind::Lstm, 32, 64, rng);
    tensor::Tensor x = randn(tensor::Shape{4, steps, 32}, 10);
    for (auto _ : state) {
        tensor::Tensor y = lstm.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
    state.counters["steps/s"] = benchmark::Counter(
        static_cast<double>(steps),
        benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_LstmSequence)->Arg(8)->Arg(16)->Arg(32);

void
BM_GruSequence(benchmark::State &state)
{
    util::Rng rng(11);
    layers::Recurrent gru("gru", layers::CellKind::Gru, 32, 64, rng);
    tensor::Tensor x = randn(tensor::Shape{4, 16, 32}, 12);
    for (auto _ : state) {
        tensor::Tensor y = gru.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_GruSequence);

void
BM_AttentionForward(benchmark::State &state)
{
    const auto t_len = state.range(0);
    util::Rng rng(13);
    layers::MultiHeadAttention mha("mha", 32, 4, rng);
    tensor::Tensor x = randn(tensor::Shape{2, t_len, 32}, 14);
    for (auto _ : state) {
        tensor::Tensor y = mha.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_AttentionForward)->Arg(8)->Arg(32);

void
BM_SoftmaxCrossEntropy(benchmark::State &state)
{
    tensor::Tensor logits = randn(tensor::Shape{64, 1000}, 15);
    std::vector<std::int64_t> labels(64, 7);
    layers::SoftmaxCrossEntropy ce;
    for (auto _ : state) {
        const double loss = ce.forward(logits, labels);
        benchmark::DoNotOptimize(loss);
    }
}
BENCHMARK(BM_SoftmaxCrossEntropy);

void
BM_CtcLoss(benchmark::State &state)
{
    tensor::Tensor logits = randn(tensor::Shape{4, 40, 29}, 16);
    std::vector<std::vector<std::int64_t>> targets = {
        {1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}, {13, 14, 15, 16}};
    layers::CtcLoss ctc;
    for (auto _ : state) {
        const double loss = ctc.forward(logits, targets);
        benchmark::DoNotOptimize(loss);
    }
}
BENCHMARK(BM_CtcLoss);

void
BM_OptimizerStep(benchmark::State &state)
{
    util::Rng rng(17);
    engine::Network net = models::buildTinyResNet(rng, 10, 3, 16);
    engine::Adam opt(0.001f);
    for (auto *p : net.params())
        p->grad.fill(0.01f);
    for (auto _ : state)
        opt.step(net.params());
    state.counters["params"] =
        static_cast<double>(net.paramCount());
}
BENCHMARK(BM_OptimizerStep);

void
BM_SimulateResNetIteration(benchmark::State &state)
{
    // The performance-model path itself: lower + timeline for one
    // ResNet-50 iteration.
    const auto workload = models::resnet50().describe(32);
    const auto &fw = frameworks::mxnet();
    for (auto _ : state) {
        auto iter = perf::lowerIteration(workload, fw);
        gpusim::GpuTimeline tl(gpusim::quadroP4000());
        for (const auto &item : iter.items)
            tl.launch(item.kernel, fw.launchOverheadUs + item.extraHostUs);
        tl.sync();
        benchmark::DoNotOptimize(tl.stats().elapsedUs);
    }
}
BENCHMARK(BM_SimulateResNetIteration);

// End-to-end simulator wall time, fast paths on vs off. The paired
// NoCache variants are the TBD_NOCACHE=1 baseline the fast paths are
// judged against; simulated numbers are bitwise-identical across the
// pair (tests/perf/fast_path_test.cpp holds that line).

void
perfSimulatorRunBody(benchmark::State &state, bool fastPaths)
{
    perf::setFastPathsEnabled(fastPaths);
    perf::RunConfig rc;
    rc.model = &models::resnet50();
    rc.framework = frameworks::FrameworkId::MXNet;
    rc.gpu = gpusim::quadroP4000();
    rc.batch = 32;
    const perf::PerfSimulator sim;
    for (auto _ : state) {
        const perf::RunResult result = sim.run(rc);
        benchmark::DoNotOptimize(result.iterationUs);
    }
    perf::setFastPathsEnabled(std::nullopt);
}

void
BM_PerfSimulatorRun(benchmark::State &state)
{
    perfSimulatorRunBody(state, /*fastPaths=*/true);
}
BENCHMARK(BM_PerfSimulatorRun);

void
BM_PerfSimulatorRunNoCache(benchmark::State &state)
{
    perfSimulatorRunBody(state, /*fastPaths=*/false);
}
BENCHMARK(BM_PerfSimulatorRunNoCache);

void
runSweepBody(benchmark::State &state, bool fastPaths)
{
    perf::setFastPathsEnabled(fastPaths);
    // A Fig. 8-style grid: three models, both GPUs, the first three
    // points of each model's own batch sweep — the workload shape
    // runSweep sees when the figure harnesses fan out on the pool.
    const std::pair<const models::ModelDesc *, const char *> lines[] = {
        {&models::resnet50(), "MXNet"},
        {&models::seq2seqNmt(), "TensorFlow"},
        {&models::transformer(), "TensorFlow"},
    };
    std::vector<core::BenchmarkRequest> cells;
    for (const char *gpu : {"Quadro P4000", "TITAN Xp"}) {
        for (const auto &[model, framework] : lines) {
            const std::size_t points =
                std::min<std::size_t>(3, model->batchSweep.size());
            for (std::size_t i = 0; i < points; ++i) {
                core::BenchmarkRequest cell;
                cell.model = model->name;
                cell.framework = framework;
                cell.gpu = gpu;
                cell.batch = model->batchSweep[i];
                cells.push_back(cell);
            }
        }
    }
    for (auto _ : state) {
        const auto results = core::BenchmarkSuite::runSweep(cells);
        benchmark::DoNotOptimize(results.size());
    }
    state.counters["cells"] = static_cast<double>(cells.size());
    perf::setFastPathsEnabled(std::nullopt);
}

void
BM_RunSweep(benchmark::State &state)
{
    runSweepBody(state, /*fastPaths=*/true);
}
BENCHMARK(BM_RunSweep);

void
BM_RunSweepNoCache(benchmark::State &state)
{
    runSweepBody(state, /*fastPaths=*/false);
}
BENCHMARK(BM_RunSweepNoCache);

// Persistent-store A/B (DESIGN.md §16): the full figure sweep set,
// cold (simulate + record) vs warm (served from disk). Between timed
// iterations the in-process lowering cache and dist memos are cleared,
// so each iteration prices what a *fresh process* pays — the store's
// actual scenario, a re-run of a figure harness. The StoreWarm /
// StoreCold pairs are the headline: check_bench_regression.py gates
// warm-over-cold speedup (--min-warm-speedup) and the warm hit rate
// (--min-warm-hit-rate, from the store_hit_rate counter).

/** A fresh, enabled store under a temp dir; restores gating on exit. */
struct StoreBenchDir
{
    std::string dir;

    StoreBenchDir()
    {
        static int seq = 0;
        dir = (std::filesystem::temp_directory_path() /
               ("tbd-store-bench-" + std::to_string(++seq)))
                  .string();
        std::filesystem::remove_all(dir);
        store::setStoreEnabled(true);
        store::setStoreDir(dir);
        store::resetCounters();
    }

    ~StoreBenchDir()
    {
        store::setStoreEnabled(false);
        store::setStoreDir(std::nullopt);
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }
};

/**
 * The Figure 4/5/6 sweep cells on both Table 4 GPUs — the same cells
 * Figures 8 (utilization) and 9 (memory) read, so warming this set
 * warms the whole single-GPU evaluation section.
 */
std::vector<core::BenchmarkRequest>
figSweepCells()
{
    std::vector<core::BenchmarkRequest> cells;
    for (const char *gpu : {"Quadro P4000", "TITAN Xp"}) {
        for (const auto &panel : benchutil::figure456Panels()) {
            for (auto &request :
                 core::SweepSpec()
                     .model(panel.model->name)
                     .framework(
                         frameworks::frameworkName(panel.framework))
                     .gpu(gpu)
                     .requests())
                cells.push_back(std::move(request));
        }
    }
    return cells;
}

void
freshProcessCaches()
{
    // What a process restart costs: in-memory fast paths are gone;
    // only the on-disk store survives.
    perf::LoweringCache::global().clear();
    dist::clearDistMemos();
}

void
figSweepStoreBody(benchmark::State &state, bool warm)
{
    StoreBenchDir store_dir;
    const auto cells = figSweepCells();
    if (warm)
        (void)core::BenchmarkSuite::runSweep(cells); // record once
    store::resetCounters();
    for (auto _ : state) {
        state.PauseTiming();
        if (!warm)
            store::clearStore(store_dir.dir);
        freshProcessCaches();
        state.ResumeTiming();
        const auto results = core::BenchmarkSuite::runSweep(cells);
        benchmark::DoNotOptimize(results.size());
    }
    state.counters["cells"] = static_cast<double>(cells.size());
    const auto counters = store::counters();
    const std::int64_t probes = counters.hits + counters.misses;
    state.counters["store_hit_rate"] =
        probes > 0 ? static_cast<double>(counters.hits) /
                         static_cast<double>(probes)
                   : 0.0;
}

void
BM_FigSweepStoreCold(benchmark::State &state)
{
    figSweepStoreBody(state, /*warm=*/false);
}
BENCHMARK(BM_FigSweepStoreCold)->Unit(benchmark::kMillisecond);

void
BM_FigSweepStoreWarm(benchmark::State &state)
{
    figSweepStoreBody(state, /*warm=*/true);
}
BENCHMARK(BM_FigSweepStoreWarm)->Unit(benchmark::kMillisecond);

/** A Fig. 10-style distributed grid over models, scales and fabrics. */
std::vector<core::BenchmarkRequest>
distSweepCells()
{
    // One line per model at its paper base batch (token-batched
    // models cannot share an image-batch axis), swept over scales,
    // fabrics and collectives.
    const std::pair<const models::ModelDesc *, const char *> lines[] = {
        {&models::resnet50(), "MXNet"},
        {&models::transformer(), "TensorFlow"},
        {&models::deepSpeech2(), "MXNet"},
    };
    std::vector<core::BenchmarkRequest> cells;
    for (const auto &[model, framework] : lines) {
        for (auto &request :
             core::SweepSpec()
                 .model(model->name)
                 .framework(framework)
                 .batches({model->batchSweep.front()})
                 .distWorkers({4, 8, 16})
                 .distTopologies({"nvlink-island", "fat-tree"})
                 .distCollectives({"ring", "hierarchical"})
                 .requests())
            cells.push_back(std::move(request));
    }
    return cells;
}

void
distSweepStoreBody(benchmark::State &state, bool warm)
{
    StoreBenchDir store_dir;
    const auto cells = distSweepCells();
    if (warm)
        (void)core::BenchmarkSuite::runDistSweep(cells); // record once
    store::resetCounters();
    for (auto _ : state) {
        state.PauseTiming();
        if (!warm)
            store::clearStore(store_dir.dir);
        freshProcessCaches();
        state.ResumeTiming();
        const auto results = core::BenchmarkSuite::runDistSweep(cells);
        benchmark::DoNotOptimize(results.size());
    }
    state.counters["cells"] = static_cast<double>(cells.size());
    const auto counters = store::counters();
    const std::int64_t probes = counters.hits + counters.misses;
    state.counters["store_hit_rate"] =
        probes > 0 ? static_cast<double>(counters.hits) /
                         static_cast<double>(probes)
                   : 0.0;
}

void
BM_DistSweepStoreCold(benchmark::State &state)
{
    distSweepStoreBody(state, /*warm=*/false);
}
BENCHMARK(BM_DistSweepStoreCold)->Unit(benchmark::kMillisecond);

void
BM_DistSweepStoreWarm(benchmark::State &state)
{
    distSweepStoreBody(state, /*warm=*/true);
}
BENCHMARK(BM_DistSweepStoreWarm)->Unit(benchmark::kMillisecond);

} // namespace

// Not BENCHMARK_MAIN(): committed-baseline provenance requires the
// Release guard (see benchutil::guardBuildType).
int
main(int argc, char **argv)
{
    // The persistent store must not color the non-store benchmarks
    // (a workspace .tbd-store would turn BM_PerfSimulatorRun into a
    // disk read). The Store benchmarks opt back in on their own temp
    // directories via StoreBenchDir.
    tbd::store::setStoreEnabled(false);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    if (!tbd::benchutil::guardBuildType())
        return 2;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
