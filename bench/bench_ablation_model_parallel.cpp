/**
 * @file
 * Ablation: data vs model parallelism at equal GPU count — the
 * quantitative backing for Section 2.2's choice ("data parallelism is
 * simpler to get right and is the predominant method"). Naive model
 * parallelism serializes the stages; GPipe-style pipelining recovers
 * some of the loss; data parallelism wins for every suite model that
 * fits a single GPU.
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

void
printFigure()
{
    benchutil::banner("Ablation - data vs model parallelism (4 GPUs)",
                      "Section 2.2");

    util::Table t({"model", "strategy", "throughput (samples/s)",
                   "GPU efficiency", "stage balance", "cut traffic"});
    for (const auto *m : {&models::resnet50(), &models::inceptionV3(),
                          &models::seq2seqNmt()}) {
        const auto fw = m->frameworks.front();
        const std::int64_t per_gpu = 16;

        dist::ClusterConfig dp{1, 4, dist::infiniband100G()};
        const auto data = dist::simulateDataParallel(
            *m, fw, gpusim::quadroP4000(), per_gpu, dp);

        dist::ModelParallelConfig naive;
        naive.stages = 4;
        const auto mp_naive = dist::simulateModelParallel(
            *m, fw, gpusim::quadroP4000(), per_gpu * 4, naive);

        dist::ModelParallelConfig piped = naive;
        piped.pipelined = true;
        piped.microBatches = 8;
        const auto mp_piped = dist::simulateModelParallel(
            *m, fw, gpusim::quadroP4000(), per_gpu * 4, piped);

        t.addRow({m->name, "data parallel (1M4G)",
                  util::formatFixed(data.throughputSamples, 1),
                  util::formatPercent(data.scalingEfficiency), "-",
                  util::formatBytes(static_cast<std::uint64_t>(
                      2.0 * m->describe(per_gpu).totalParams() * 4.0))});
        t.addRow({m->name, "model parallel, naive",
                  util::formatFixed(mp_naive.throughputSamples, 1),
                  util::formatPercent(mp_naive.gpuEfficiency),
                  util::formatFixed(mp_naive.balanceRatio, 2),
                  util::formatBytes(static_cast<std::uint64_t>(
                      mp_naive.transferBytes))});
        t.addRow({m->name, "model parallel, pipelined",
                  util::formatFixed(mp_piped.throughputSamples, 1),
                  util::formatPercent(mp_piped.gpuEfficiency),
                  util::formatFixed(mp_piped.balanceRatio, 2),
                  util::formatBytes(static_cast<std::uint64_t>(
                      mp_piped.transferBytes))});
    }
    t.print(std::cout);
    std::cout << "\nNaive model parallelism idles all but one GPU; "
                 "pipelining narrows but\ndoes not close the gap — data "
                 "parallelism stays ahead whenever the model\nfits one "
                 "device, which is why the paper studies only data "
                 "parallelism.\n\n";
}

} // namespace

TBD_BENCH_MAIN(printFigure)
