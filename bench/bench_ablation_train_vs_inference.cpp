/**
 * @file
 * Training vs inference — the contrast that motivates the whole paper
 * (Section 1): training stashes feature maps for the backward pass and
 * runs ~3x the compute, so its memory footprint is dominated by
 * activations and measured in gigabytes, while inference is dominated
 * by the weights and fits in tens-to-hundreds of megabytes. This
 * harness quantifies the gap for every suite model.
 */

#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

void
printFigure()
{
    benchutil::banner("Ablation - training vs inference",
                      "Section 1 / Challenge 1");

    util::Table t({"model", "batch", "train memory", "fm share",
                   "inference memory", "weights share", "memory ratio",
                   "train kernels", "infer kernels", "compute ratio"});
    for (const auto *model : models::allModels()) {
        const auto fw_id = model->frameworks.front();
        const auto &fw = frameworks::profileFor(fw_id);
        const auto batch = model->batchSweep.back();
        const auto workload = model->describe(batch);

        const auto train = perf::simulateIterationMemory(
            *model, workload, fw, perf::OptimizerSpec{}, 0);
        const auto infer =
            perf::simulateInferenceMemory(*model, workload, fw);

        const auto train_iter = perf::lowerIteration(workload, fw);
        const auto infer_iter = perf::lowerInference(workload, fw);

        t.addRow(
            {model->name, std::to_string(batch),
             util::formatBytes(train.total()),
             util::formatPercent(
                 train.fraction(memprof::MemCategory::FeatureMaps)),
             util::formatBytes(infer.total()),
             util::formatPercent(
                 infer.fraction(memprof::MemCategory::Weights)),
             util::formatFixed(static_cast<double>(train.total()) /
                                   static_cast<double>(infer.total()),
                               1) +
                 "x",
             std::to_string(train_iter.items.size()),
             std::to_string(infer_iter.items.size()),
             util::formatFixed(train_iter.totalFlops() /
                                   infer_iter.totalFlops(),
                               2) +
                 "x"});
    }
    t.print(std::cout);
    std::cout << "\nTraining needs the feature maps (62-97% of its "
                 "footprint) and ~3x the\ncompute; inference is weights"
                 "-dominated and an order of magnitude\nsmaller — the "
                 "paper's Challenge 1 in numbers.\n\n";
}

} // namespace

TBD_BENCH_MAIN(printFigure)
