/**
 * @file
 * Distributed scaling study on the topology-graph engine: every suite
 * model at 8-64 workers, across four cluster shapes and three
 * collectives, with the TCO layer attached — the "what would the
 * paper's Fig. 10 look like at today's scales and prices" experiment.
 *
 * Unlike the figure harnesses this one *asserts* its observations
 * (TBD_CHECK, so a violated observation fails the run):
 *
 *   1. Exposed-communication share grows with the worker count on the
 *      slow fabric (ring steps multiply, compute per GPU does not).
 *   2. Observation 13's remedies work: at equal scale, InfiniBand
 *      never scales worse than 1 GbE, and 1-bit-SGD-style compression
 *      never lowers throughput on 1 GbE.
 *   3. Every model has a cheapest configuration hitting half of its
 *      best observed throughput (the TCO planner's query is total).
 */

#include <algorithm>
#include <iostream>

#include "bench_util.h"

using namespace tbd;

namespace {

const std::vector<std::string> kTopologies = {
    "ethernet-flat", "infiniband-flat", "nvlink-island", "fat-tree"};
const std::vector<int> kWorkers = {8, 16, 32, 64};
const std::vector<std::string> kCollectives = {"ring", "tree",
                                               "hierarchical"};

/** Cells per model: the full shape x scale x collective grid plus one
 *  compressed cell on the slow fabric. */
constexpr std::size_t kGridPerModel = 4 * 4 * 3;
constexpr std::size_t kCellsPerModel = kGridPerModel + 1;

std::size_t
cellIndex(std::size_t model, std::size_t topo, std::size_t workers,
          std::size_t coll)
{
    return model * kCellsPerModel + (topo * kWorkers.size() + workers) *
                                        kCollectives.size() +
           coll;
}

std::vector<core::BenchmarkRequest>
buildRequests()
{
    std::vector<core::BenchmarkRequest> requests;
    for (const auto *model : models::allModels()) {
        core::BenchmarkRequest base;
        base.model = model->name;
        base.framework =
            frameworks::frameworkName(model->frameworks.front());
        base.batch = model->batchSweep.front();
        for (const auto &topo : kTopologies) {
            for (int workers : kWorkers) {
                for (const auto &coll : kCollectives) {
                    core::BenchmarkRequest r = base;
                    r.distTopology = topo;
                    r.distWorkers = workers;
                    r.distCollective = coll;
                    requests.push_back(r);
                }
            }
        }
        // Observation 13's other remedy: 1-bit-SGD-style compression
        // on the fabric that collapses.
        core::BenchmarkRequest packed = base;
        packed.distTopology = "ethernet-flat";
        packed.distWorkers = 8;
        packed.distCollective = "ring";
        packed.distCompression = 32.0;
        requests.push_back(packed);
    }
    return requests;
}

void
printFigure()
{
    benchutil::banner(
        "Distributed scaling - 9 models x 8-64 workers x shapes x "
        "collectives",
        "extension of Fig. 10 / Observation 13");

    const auto &all_models = models::allModels();
    const auto requests = buildRequests();
    const auto results = core::BenchmarkSuite::runDistSweep(requests);
    TBD_CHECK(results.size() == all_models.size() * kCellsPerModel,
              "unexpected sweep size ", results.size());
    for (const auto &cell : results)
        TBD_CHECK(cell.has_value(),
                  "no cell may OOM at the smallest sweep batch");

    auto at = [&](std::size_t m, std::size_t t, std::size_t w,
                  std::size_t c) -> const dist::DistResult & {
        return *results[cellIndex(m, t, w, c)];
    };
    auto packedAt = [&](std::size_t m) -> const dist::DistResult & {
        return *results[m * kCellsPerModel + kGridPerModel];
    };

    // ---- The scaling picture: best collective per shape at 64 GPUs.
    util::Table summary({"model", "topology", "best collective",
                         "throughput (samples/s)", "scaling eff",
                         "comm share"});
    for (std::size_t m = 0; m < all_models.size(); ++m) {
        for (std::size_t t = 0; t < kTopologies.size(); ++t) {
            std::size_t best = 0;
            for (std::size_t c = 1; c < kCollectives.size(); ++c)
                if (at(m, t, 3, c).throughputSamples >
                    at(m, t, 3, best).throughputSamples)
                    best = c;
            const auto &r = at(m, t, 3, best);
            summary.addRow({all_models[m]->name, kTopologies[t],
                            kCollectives[best],
                            util::formatFixed(r.throughputSamples, 1),
                            util::formatPercent(r.scalingEfficiency),
                            util::formatPercent(r.commShare)});
        }
    }
    summary.print(std::cout);

    // ---- Observation 1: comm share grows with scale on 1 GbE.
    std::cout << "\nExposed-communication share on ethernet-flat "
                 "(ring), 8 -> 64 workers:\n";
    util::Table growth({"model", "x8", "x16", "x32", "x64"});
    for (std::size_t m = 0; m < all_models.size(); ++m) {
        std::vector<std::string> row = {all_models[m]->name};
        double prev = -1.0;
        for (std::size_t w = 0; w < kWorkers.size(); ++w) {
            const auto &r = at(m, 0, w, 0);
            TBD_CHECK(r.commShare >= prev - 1e-12,
                      all_models[m]->name,
                      ": comm share must not shrink with scale on a "
                      "slow fabric (x",
                      kWorkers[w], ")");
            prev = r.commShare;
            row.push_back(util::formatPercent(r.commShare));
        }
        growth.addRow(row);
    }
    growth.print(std::cout);

    // ---- Observation 2: the paper's remedies, asserted per model.
    for (std::size_t m = 0; m < all_models.size(); ++m) {
        const auto &eth = at(m, 0, 0, 0); // ethernet-flat ring x8
        const auto &ib = at(m, 1, 0, 0);  // infiniband-flat ring x8
        const auto &packed = packedAt(m); // ethernet ring x8, /32
        TBD_CHECK(ib.scalingEfficiency >=
                      eth.scalingEfficiency - 1e-12,
                  all_models[m]->name,
                  ": InfiniBand must not scale worse than 1 GbE");
        TBD_CHECK(packed.throughputSamples >=
                      eth.throughputSamples - 1e-9,
                  all_models[m]->name,
                  ": compression must not lower 1 GbE throughput");
        TBD_CHECK(std::max(ib.scalingEfficiency,
                           packed.scalingEfficiency) >
                      eth.scalingEfficiency ||
                      eth.scalingEfficiency > 0.9,
                  all_models[m]->name,
                  ": some remedy must help unless 1 GbE already "
                  "scales");
    }
    std::cout << "\nObservation 13 holds on the graph engine: "
                 "InfiniBand and gradient\ncompression recover the "
                 "scaling that 1 GbE destroys, for every model.\n";

    // ---- Observation 3: the TCO planner's question.
    std::cout << "\nCheapest configuration reaching half of each "
                 "model's best observed\nthroughput ($/GPU-hour x "
                 "simulated samples/s):\n";
    util::Table tco({"model", "configuration", "$/hour",
                     "$/Msamples", "throughput (samples/s)"});
    for (std::size_t m = 0; m < all_models.size(); ++m) {
        std::vector<dist::TcoPoint> points;
        double best = 0.0;
        for (std::size_t t = 0; t < kTopologies.size(); ++t) {
            const auto spec = *dist::findTopology(kTopologies[t]);
            for (std::size_t w = 0; w < kWorkers.size(); ++w)
                for (std::size_t c = 0; c < kCollectives.size(); ++c) {
                    points.push_back(
                        dist::priceResult(spec, at(m, t, w, c)));
                    best = std::max(
                        best, points.back().result.throughputSamples);
                }
        }
        const auto pick = dist::cheapestAtTarget(points, best / 2.0);
        TBD_CHECK(pick.has_value(), all_models[m]->name,
                  ": a half-best target must always be reachable");
        tco.addRow({all_models[m]->name, pick->result.label,
                    util::formatFixed(pick->usdPerHour, 2),
                    util::formatFixed(pick->usdPerMSamples, 2),
                    util::formatFixed(pick->result.throughputSamples,
                                      1)});
    }
    tco.print(std::cout);
    std::cout << "\nNVLink islands win the throughput race but the "
                 "commodity shapes often\nwin $/sample — the planner's "
                 "answer depends on the target, which is\nexactly why "
                 "the TCO layer exists.\n\n";

    // Time the whole sweep: 400+ cells against 9 deduplicated
    // single-GPU baselines.
    benchmark::RegisterBenchmark(
        "dist_scaling/full_sweep", [](benchmark::State &state) {
            const auto reqs = buildRequests();
            for (auto _ : state) {
                auto cells = core::BenchmarkSuite::runDistSweep(reqs);
                benchmark::DoNotOptimize(cells.size());
            }
            state.counters["cells"] =
                static_cast<double>(reqs.size());
        });
}

} // namespace

TBD_BENCH_MAIN(printFigure)
